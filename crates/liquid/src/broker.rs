//! A broker host: the cluster's query entry point.
//!
//! "When a broker receives a query from a client, the broker sends
//! sub-queries to the shard hosts to fetch data from them. Answering a
//! query involves one or more communication rounds between the broker and
//! the shards. At the end of each round, the broker accumulates the shards'
//! responses and processes the sub-query results before starting the next
//! round." (§5.1)
//!
//! The broker runs the admission policy under evaluation; a query's broker
//! *processing time* spans all of its rounds, so it includes shard-side
//! queueing — which is why the paper's Figure 13 sees per-type processing
//! time rise with load on the real system but not in the ideal simulator.

use std::collections::HashSet;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bouncer_core::framework::{Gate, GateConfig, ServerStats, TakeOutcome, Ticker};
use bouncer_core::obs::{null_sink, EventSink};
use bouncer_core::policy::{AdmissionPolicy, RejectReason};
use bouncer_core::types::{TypeId, TypeRegistry};
use bouncer_metrics::Clock;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::graph::VertexId;
use crate::query::{Query, QueryKind, SubQuery, SubResponse};
use crate::shard::SubOutcome;
use crate::transport::ShardClient;

/// Builds the type registry for the LIquid workload: `default` plus
/// QT1..QT11 in cost order (ids 1..=11).
pub fn liquid_registry() -> TypeRegistry {
    let mut reg = TypeRegistry::new();
    for kind in QueryKind::ALL {
        reg.register(kind.name());
    }
    reg
}

/// The registered [`TypeId`] of a query kind in [`liquid_registry`] order.
#[inline]
pub fn kind_type_id(kind: QueryKind) -> TypeId {
    TypeId::from_index(kind.index() as u32 + 1)
}

/// Outcome of a client query, as delivered to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientOutcome {
    /// Serviced; scalar result.
    Ok(u64),
    /// Rejected by the broker's admission policy (early rejection, §2).
    Rejected(RejectReason),
    /// A shard rejected one of the query's sub-queries mid-plan.
    ShardRejected,
    /// The query expired in the broker's queue before an engine picked it
    /// up; it was dropped undone (§5.1 expiration enforcement).
    Expired,
    /// Execution failed (transport error, bad vertex).
    Failed,
}

/// Query-plan failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanError {
    ShardRejected,
    ShardFailed,
}

/// How a job's outcome travels back to the submitter.
enum Responder {
    /// Dedicated one-shot channel per query ([`Broker::submit`]).
    Oneshot(Sender<ClientOutcome>),
    /// Shared channel with a caller-chosen token ([`Broker::submit_tagged`]);
    /// lets one collector thread service any number of in-flight queries —
    /// a truly open-loop load generator needs this, since at overload the
    /// in-flight population exceeds any reasonable thread count.
    Tagged(Sender<(u64, ClientOutcome)>, u64),
}

impl Responder {
    fn send(self, outcome: ClientOutcome) {
        match self {
            Responder::Oneshot(tx) => {
                let _ = tx.send(outcome);
            }
            Responder::Tagged(tx, token) => {
                let _ = tx.send((token, outcome));
            }
        }
    }
}

struct Job {
    query: Query,
    respond: Responder,
}

/// Broker configuration.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Engine threads (`|PU|` on the broker).
    pub engines: u32,
    /// `L_limit` on the FIFO queue (the paper uses 800).
    pub max_queue_len: Option<usize>,
    /// Policy maintenance period.
    pub tick_period: Duration,
    /// Per-sub-query wait bound, guarding engines against stuck shards.
    pub subquery_timeout: Duration,
    /// Expiration time given to every admitted query (`None` = queries
    /// never expire — the paper's evaluation uses "generous expiration
    /// times to ensure they do not time out").
    pub query_deadline: Option<Duration>,
    /// Optional observability sink for this host's gate (lifecycle events
    /// with wall-clock timestamps, plus the policy's interval events).
    pub sink: Option<Arc<dyn EventSink>>,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        Self {
            engines: 4,
            max_queue_len: Some(800),
            tick_period: Duration::from_millis(100),
            subquery_timeout: Duration::from_secs(10),
            query_deadline: None,
            sink: None,
        }
    }
}

/// A running broker host.
pub struct Broker {
    gate: Arc<Gate<Job>>,
    /// Engine threads, joined (exactly once) by [`Broker::shutdown`]. Held
    /// behind a mutex so shutdown joins regardless of how many `Arc` clones
    /// of the broker are still alive.
    engines: Mutex<Vec<JoinHandle<()>>>,
    _ticker: Ticker,
    parallelism: u32,
    query_deadline: Option<Duration>,
}

impl Broker {
    /// Spawns a broker over the given shard connections, gating admissions
    /// with `policy` (the policy under evaluation in §5.4).
    pub fn spawn(
        shards: Vec<Arc<dyn ShardClient>>,
        policy: Arc<dyn AdmissionPolicy>,
        clock: Arc<dyn Clock>,
        cfg: BrokerConfig,
    ) -> Arc<Self> {
        assert!(cfg.engines > 0);
        assert!(!shards.is_empty());
        let registry = liquid_registry();
        let gate: Arc<Gate<Job>> = Arc::new(Gate::new_with_sink(
            policy.clone(),
            registry.len(),
            clock.clone(),
            GateConfig {
                max_queue_len: cfg.max_queue_len,
                ..GateConfig::default()
            },
            cfg.sink.clone().unwrap_or_else(null_sink),
        ));
        let shards = Arc::new(shards);
        let engines = (0..cfg.engines)
            .map(|i| {
                let gate = Arc::clone(&gate);
                let shards = Arc::clone(&shards);
                let timeout = cfg.subquery_timeout;
                std::thread::Builder::new()
                    .name(format!("broker-engine{i}"))
                    .spawn(move || engine_loop(&gate, &shards, timeout))
                    .expect("failed to spawn broker engine")
            })
            .collect();
        let ticker = Ticker::spawn(policy, clock, cfg.tick_period);
        Arc::new(Self {
            gate,
            engines: Mutex::new(engines),
            _ticker: ticker,
            parallelism: cfg.engines,
            query_deadline: cfg.query_deadline,
        })
    }

    /// Offers a client query; the returned channel yields its outcome. A
    /// broker-side rejection is delivered immediately.
    pub fn submit(&self, query: Query) -> Receiver<ClientOutcome> {
        let (tx, rx) = bounded(1);
        self.offer(query, Responder::Oneshot(tx));
        rx
    }

    /// Offers a client query whose outcome is delivered on a *shared*
    /// channel as `(token, outcome)`. Rejections are delivered immediately,
    /// like [`Broker::submit`].
    pub fn submit_tagged(&self, query: Query, tx: Sender<(u64, ClientOutcome)>, token: u64) {
        self.offer(query, Responder::Tagged(tx, token));
    }

    fn offer(&self, query: Query, respond: Responder) {
        let ty = kind_type_id(query.kind);
        let deadline = self
            .query_deadline
            .map(|d| self.gate.clock().now() + d.as_nanos() as u64);
        if let Err((reason, job)) =
            self.gate
                .offer_with_deadline(ty, Job { query, respond }, deadline)
        {
            job.respond.send(ClientOutcome::Rejected(reason));
        }
    }

    /// Convenience: submit and wait.
    pub fn execute(&self, query: Query) -> ClientOutcome {
        match self.submit(query).recv() {
            Ok(outcome) => outcome,
            Err(_) => ClientOutcome::Failed,
        }
    }

    /// This broker's statistics (per QT type).
    pub fn stats(&self) -> &Arc<ServerStats> {
        self.gate.stats()
    }

    /// The admission policy behind the gate.
    pub fn policy(&self) -> &Arc<dyn AdmissionPolicy> {
        self.gate.policy()
    }

    /// Engine parallelism (`|PU|`).
    pub fn parallelism(&self) -> u32 {
        self.parallelism
    }

    /// Current FIFO queue length.
    pub fn queue_len(&self) -> usize {
        self.gate.queue_len()
    }

    /// Stops the engines and waits for them to exit.
    ///
    /// Always joins, no matter how many `Arc` clones of the broker are
    /// still held elsewhere (the seed only joined when the caller happened
    /// to hold the last strong reference, silently leaking the engine
    /// threads otherwise). Idempotent: later calls find no handles left.
    pub fn shutdown(&self) {
        self.gate.close();
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.engines.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Number of engine threads not yet joined — 0 after
    /// [`Broker::shutdown`] returns.
    pub fn engines_running(&self) -> usize {
        self.engines.lock().len()
    }
}

fn engine_loop(gate: &Gate<Job>, shards: &[Arc<dyn ShardClient>], timeout: Duration) {
    let ctx = PlanCtx { shards, timeout };
    loop {
        match gate.take(Some(Duration::from_millis(100))) {
            TakeOutcome::Query(admitted) => {
                let outcome = match execute_plan(&ctx, admitted.payload.query) {
                    Ok(value) => ClientOutcome::Ok(value),
                    Err(PlanError::ShardRejected) => ClientOutcome::ShardRejected,
                    Err(PlanError::ShardFailed) => ClientOutcome::Failed,
                };
                gate.complete(admitted.ty, admitted.enqueued_at, admitted.dequeued_at);
                admitted.payload.respond.send(outcome);
            }
            TakeOutcome::Expired(admitted) => {
                // Dropped undone: reply with a timeout error immediately.
                admitted.payload.respond.send(ClientOutcome::Expired);
            }
            TakeOutcome::TimedOut => {}
            TakeOutcome::Closed => return,
        }
    }
}

/// Query-plan caps: bound the fan-out of the expensive templates so costs
/// are heavy-tailed but finite, like production queries with result limits.
const PAGE: usize = 64;
const DEGREE_SAMPLE: usize = 32;
const TWO_HOP_CAP: usize = 192;
const TRIANGLE_CAP: usize = 32;
const COMMON_CAP: usize = 128;
const BFS3_CAP: usize = 512;
const BFS4_CAP: usize = 1024;

struct PlanCtx<'a> {
    shards: &'a [Arc<dyn ShardClient>],
    timeout: Duration,
}

impl PlanCtx<'_> {
    fn owner(&self, v: VertexId) -> &dyn ShardClient {
        &*self.shards[v as usize % self.shards.len()]
    }

    fn wait(&self, rx: Receiver<SubOutcome>) -> Result<SubResponse, PlanError> {
        match rx.recv_timeout(self.timeout) {
            Ok(SubOutcome::Ok(resp)) => Ok(resp),
            Ok(SubOutcome::Rejected) => Err(PlanError::ShardRejected),
            Ok(SubOutcome::Error) | Err(_) => Err(PlanError::ShardFailed),
        }
    }

    fn neighbors(&self, v: VertexId) -> Result<Vec<VertexId>, PlanError> {
        match self.wait(self.owner(v).submit(SubQuery::Neighbors(v)))? {
            SubResponse::Ids(ids) => Ok(ids),
            _ => Err(PlanError::ShardFailed),
        }
    }

    fn degree(&self, v: VertexId) -> Result<u64, PlanError> {
        match self.wait(self.owner(v).submit(SubQuery::Degree(v)))? {
            SubResponse::Count(c) => Ok(c),
            _ => Err(PlanError::ShardFailed),
        }
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> Result<bool, PlanError> {
        match self.wait(self.owner(u).submit(SubQuery::HasEdge(u, v)))? {
            SubResponse::Flag(b) => Ok(b),
            _ => Err(PlanError::ShardFailed),
        }
    }

    /// One communication round: neighbor lists for every frontier vertex,
    /// batched per owning shard and issued in parallel.
    fn neighbors_many(&self, frontier: &[VertexId]) -> Result<Vec<Vec<VertexId>>, PlanError> {
        let n_shards = self.shards.len();
        let mut per_shard: Vec<Vec<VertexId>> = vec![Vec::new(); n_shards];
        for &v in frontier {
            per_shard[v as usize % n_shards].push(v);
        }
        // Fan out...
        let receivers: Vec<(usize, Receiver<SubOutcome>)> = per_shard
            .iter()
            .enumerate()
            .filter(|(_, vs)| !vs.is_empty())
            .map(|(s, vs)| (s, self.shards[s].submit(SubQuery::NeighborsMany(vs.clone()))))
            .collect();
        // ...gather, then reassemble in frontier order.
        let mut per_shard_lists: Vec<Option<Vec<Vec<VertexId>>>> = vec![None; n_shards];
        for (s, rx) in receivers {
            match self.wait(rx)? {
                SubResponse::IdLists(lists) => per_shard_lists[s] = Some(lists),
                _ => return Err(PlanError::ShardFailed),
            }
        }
        let mut cursors = vec![0usize; n_shards];
        let mut out = Vec::with_capacity(frontier.len());
        for &v in frontier {
            let s = v as usize % n_shards;
            let lists = per_shard_lists[s].as_mut().ok_or(PlanError::ShardFailed)?;
            let i = cursors[s];
            cursors[s] += 1;
            out.push(std::mem::take(lists.get_mut(i).ok_or(PlanError::ShardFailed)?));
        }
        Ok(out)
    }

    fn degrees_many(&self, vs: &[VertexId]) -> Result<Vec<u32>, PlanError> {
        let n_shards = self.shards.len();
        let mut per_shard: Vec<Vec<VertexId>> = vec![Vec::new(); n_shards];
        for &v in vs {
            per_shard[v as usize % n_shards].push(v);
        }
        let receivers: Vec<(usize, Receiver<SubOutcome>)> = per_shard
            .iter()
            .enumerate()
            .filter(|(_, vs)| !vs.is_empty())
            .map(|(s, vs)| (s, self.shards[s].submit(SubQuery::DegreeMany(vs.clone()))))
            .collect();
        let mut per_shard_counts: Vec<Option<Vec<u32>>> = vec![None; n_shards];
        for (s, rx) in receivers {
            match self.wait(rx)? {
                SubResponse::Counts(counts) => per_shard_counts[s] = Some(counts),
                _ => return Err(PlanError::ShardFailed),
            }
        }
        let mut cursors = vec![0usize; n_shards];
        let mut out = Vec::with_capacity(vs.len());
        for &v in vs {
            let s = v as usize % n_shards;
            let counts = per_shard_counts[s].as_ref().ok_or(PlanError::ShardFailed)?;
            let i = cursors[s];
            cursors[s] += 1;
            out.push(*counts.get(i).ok_or(PlanError::ShardFailed)?);
        }
        Ok(out)
    }
}

fn execute_plan(ctx: &PlanCtx<'_>, q: Query) -> Result<u64, PlanError> {
    match q.kind {
        QueryKind::Qt1Degree => ctx.degree(q.u),
        QueryKind::Qt2EdgeExists => Ok(ctx.has_edge(q.u, q.v)? as u64),
        QueryKind::Qt3NeighborsPage => {
            let n = ctx.neighbors(q.u)?;
            Ok(n.iter().take(PAGE).count() as u64)
        }
        QueryKind::Qt4NeighborsFull => {
            let n = ctx.neighbors(q.u)?;
            // Broker-side post-processing: checksum the full list.
            let checksum: u64 = n.iter().fold(0u64, |acc, &v| {
                acc.wrapping_mul(31).wrapping_add(v as u64)
            });
            Ok(n.len() as u64 ^ (checksum & 0xFF)) // len dominates; checksum folds in
        }
        QueryKind::Qt5MutualCount => {
            let rx_u = ctx.owner(q.u).submit(SubQuery::Neighbors(q.u));
            let rx_v = ctx.owner(q.v).submit(SubQuery::Neighbors(q.v));
            let nu = match ctx.wait(rx_u)? {
                SubResponse::Ids(ids) => ids,
                _ => return Err(PlanError::ShardFailed),
            };
            let nv = match ctx.wait(rx_v)? {
                SubResponse::Ids(ids) => ids,
                _ => return Err(PlanError::ShardFailed),
            };
            Ok(sorted_intersection_count(&nu, &nv))
        }
        QueryKind::Qt6NeighborDegrees => {
            let n = ctx.neighbors(q.u)?;
            let sample: Vec<VertexId> = n.iter().copied().take(DEGREE_SAMPLE).collect();
            if sample.is_empty() {
                return Ok(0);
            }
            let degrees = ctx.degrees_many(&sample)?;
            Ok(degrees.iter().map(|&d| d as u64).sum())
        }
        QueryKind::Qt7TwoHopCount => {
            let mut frontier = ctx.neighbors(q.u)?;
            frontier.truncate(TWO_HOP_CAP);
            if frontier.is_empty() {
                return Ok(0);
            }
            let lists = ctx.neighbors_many(&frontier)?;
            let mut seen: HashSet<VertexId> = HashSet::with_capacity(1024);
            for list in &lists {
                seen.extend(list.iter().copied());
            }
            seen.remove(&q.u);
            Ok(seen.len() as u64)
        }
        QueryKind::Qt8TriangleCount => {
            let n = ctx.neighbors(q.u)?;
            let sample: Vec<VertexId> = n.iter().copied().take(TRIANGLE_CAP).collect();
            let receivers: Vec<Receiver<SubOutcome>> = sample
                .iter()
                .map(|&w| {
                    ctx.owner(w)
                        .submit(SubQuery::CountIntersect(w, n.clone()))
                })
                .collect();
            let mut total = 0u64;
            for rx in receivers {
                match ctx.wait(rx)? {
                    SubResponse::Count(c) => total += c,
                    _ => return Err(PlanError::ShardFailed),
                }
            }
            Ok(total / 2) // each triangle counted from both endpoints
        }
        QueryKind::Qt9CommonNetwork => {
            let rx_u = ctx.owner(q.u).submit(SubQuery::Neighbors(q.u));
            let rx_v = ctx.owner(q.v).submit(SubQuery::Neighbors(q.v));
            let mut nu = match ctx.wait(rx_u)? {
                SubResponse::Ids(ids) => ids,
                _ => return Err(PlanError::ShardFailed),
            };
            let mut nv = match ctx.wait(rx_v)? {
                SubResponse::Ids(ids) => ids,
                _ => return Err(PlanError::ShardFailed),
            };
            nu.truncate(COMMON_CAP);
            nv.truncate(COMMON_CAP);
            let mut network_u: HashSet<VertexId> = HashSet::with_capacity(2048);
            if !nu.is_empty() {
                for list in ctx.neighbors_many(&nu)? {
                    network_u.extend(list);
                }
            }
            let mut overlap = 0u64;
            let mut network_v: HashSet<VertexId> = HashSet::with_capacity(2048);
            if !nv.is_empty() {
                for list in ctx.neighbors_many(&nv)? {
                    for w in list {
                        if network_v.insert(w) && network_u.contains(&w) {
                            overlap += 1;
                        }
                    }
                }
            }
            Ok(overlap)
        }
        QueryKind::Qt10Distance3 => bfs_distance(ctx, q.u, q.v, 3, BFS3_CAP),
        QueryKind::Qt11Distance4 => bfs_distance(ctx, q.u, q.v, 4, BFS4_CAP),
    }
}

/// Bounded breadth-first distance search: one communication round per hop,
/// exactly the multi-round broker/shard interaction of §5.1.
fn bfs_distance(
    ctx: &PlanCtx<'_>,
    from: VertexId,
    to: VertexId,
    max_hops: u32,
    frontier_cap: usize,
) -> Result<u64, PlanError> {
    if from == to {
        return Ok(0);
    }
    let mut visited: HashSet<VertexId> = HashSet::with_capacity(4096);
    visited.insert(from);
    let mut frontier = vec![from];
    for hop in 1..=max_hops {
        frontier.truncate(frontier_cap);
        let lists = ctx.neighbors_many(&frontier)?;
        let mut next = Vec::with_capacity(1024);
        for list in lists {
            for w in list {
                if w == to {
                    return Ok(hop as u64);
                }
                if visited.insert(w) {
                    next.push(w);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    Ok(u64::MAX)
}

/// `|a ∩ b|` for sorted slices.
fn sorted_intersection_count(a: &[VertexId], b: &[VertexId]) -> u64 {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0u64;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, GraphConfig};
    use crate::shard::{ShardConfig, ShardHost};
    use crate::transport::InProcShardClient;
    use bouncer_core::policy::AlwaysAccept;
    use bouncer_metrics::MonotonicClock;

    fn mini_cluster(n_shards: usize) -> (Graph, Vec<Arc<ShardHost>>, Arc<Broker>) {
        let g = Graph::generate(&GraphConfig {
            vertices: 2_000,
            edges_per_vertex: 4,
            seed: 21,
        });
        let clock: Arc<MonotonicClock> = Arc::new(MonotonicClock::new());
        let hosts: Vec<Arc<ShardHost>> = (0..n_shards)
            .map(|s| {
                ShardHost::spawn(
                    g.shard_slice(s, n_shards),
                    Arc::new(AlwaysAccept::new()),
                    clock.clone(),
                    ShardConfig::default(),
                )
            })
            .collect();
        let clients: Vec<Arc<dyn ShardClient>> = hosts
            .iter()
            .map(|h| Arc::new(InProcShardClient::new(Arc::clone(h))) as Arc<dyn ShardClient>)
            .collect();
        let broker = Broker::spawn(
            clients,
            Arc::new(AlwaysAccept::new()),
            clock,
            BrokerConfig::default(),
        );
        (g, hosts, broker)
    }

    fn teardown(hosts: Vec<Arc<ShardHost>>, broker: Arc<Broker>) {
        broker.shutdown();
        for h in hosts {
            h.shutdown();
        }
    }

    #[test]
    fn degree_and_edge_queries_match_graph() {
        let (g, hosts, broker) = mini_cluster(4);
        for u in [0u32, 7, 100, 999] {
            let got = broker.execute(Query {
                kind: QueryKind::Qt1Degree,
                u,
                v: 0,
            });
            assert_eq!(got, ClientOutcome::Ok(g.degree(u) as u64));
        }
        let u = 10;
        let v = g.neighbors(u)[0];
        assert_eq!(
            broker.execute(Query {
                kind: QueryKind::Qt2EdgeExists,
                u,
                v
            }),
            ClientOutcome::Ok(1)
        );
        teardown(hosts, broker);
    }

    #[test]
    fn mutual_count_matches_bruteforce() {
        let (g, hosts, broker) = mini_cluster(4);
        let u = 5;
        let v = 6;
        let expected = g
            .neighbors(u)
            .iter()
            .filter(|n| g.neighbors(v).binary_search(n).is_ok())
            .count() as u64;
        assert_eq!(
            broker.execute(Query {
                kind: QueryKind::Qt5MutualCount,
                u,
                v
            }),
            ClientOutcome::Ok(expected)
        );
        teardown(hosts, broker);
    }

    #[test]
    fn two_hop_count_matches_bruteforce() {
        let (g, hosts, broker) = mini_cluster(3);
        let u = 50;
        // Brute force with the same cap semantics.
        let frontier: Vec<u32> = g.neighbors(u).iter().copied().take(TWO_HOP_CAP).collect();
        let mut seen: HashSet<u32> = HashSet::new();
        for &w in &frontier {
            seen.extend(g.neighbors(w).iter().copied());
        }
        seen.remove(&u);
        assert_eq!(
            broker.execute(Query {
                kind: QueryKind::Qt7TwoHopCount,
                u,
                v: 0
            }),
            ClientOutcome::Ok(seen.len() as u64)
        );
        teardown(hosts, broker);
    }

    #[test]
    fn bfs_distance_finds_neighbors_at_hop_one() {
        let (g, hosts, broker) = mini_cluster(4);
        let u = 30;
        let v = g.neighbors(u)[0];
        assert_eq!(
            broker.execute(Query {
                kind: QueryKind::Qt10Distance3,
                u,
                v
            }),
            ClientOutcome::Ok(1)
        );
        assert_eq!(
            broker.execute(Query {
                kind: QueryKind::Qt11Distance4,
                u,
                v
            }),
            ClientOutcome::Ok(1)
        );
        teardown(hosts, broker);
    }

    #[test]
    fn bfs_distance_two_for_neighbor_of_neighbor() {
        let (g, hosts, broker) = mini_cluster(2);
        // Find a vertex at exact distance 2 from u: neighbor-of-neighbor
        // that is not a direct neighbor.
        let u = 40;
        let mut target = None;
        'outer: for &w in g.neighbors(u) {
            for &x in g.neighbors(w) {
                if x != u && g.neighbors(u).binary_search(&x).is_err() {
                    target = Some(x);
                    break 'outer;
                }
            }
        }
        let v = target.expect("graph should have a 2-hop vertex");
        assert_eq!(
            broker.execute(Query {
                kind: QueryKind::Qt10Distance3,
                u,
                v
            }),
            ClientOutcome::Ok(2)
        );
        teardown(hosts, broker);
    }

    #[test]
    fn all_query_kinds_execute_successfully() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let (g, hosts, broker) = mini_cluster(4);
        let mut rng = SmallRng::seed_from_u64(77);
        for kind in QueryKind::ALL {
            for _ in 0..5 {
                let q = Query::random(kind, g.vertex_count(), &mut rng);
                match broker.execute(q) {
                    ClientOutcome::Ok(_) => {}
                    other => panic!("{kind:?} -> {other:?}"),
                }
            }
        }
        let snap = broker.stats().snapshot(1, broker.parallelism());
        assert_eq!(
            snap.per_type.iter().map(|t| t.completed).sum::<u64>(),
            55
        );
        teardown(hosts, broker);
    }

    #[test]
    fn broker_rejection_is_early() {
        let (g, hosts, _ignored) = mini_cluster(2);
        let clients: Vec<Arc<dyn ShardClient>> = hosts
            .iter()
            .map(|h| Arc::new(InProcShardClient::new(Arc::clone(h))) as Arc<dyn ShardClient>)
            .collect();
        // A broker whose policy rejects everything after the queue holds 0
        // entries (MaxQL(1) with an engine that we keep busy is racy; use a
        // 0-capacity gate via max_queue_len=0 instead).
        let broker = Broker::spawn(
            clients,
            Arc::new(AlwaysAccept::new()),
            Arc::new(MonotonicClock::new()),
            BrokerConfig {
                engines: 1,
                max_queue_len: Some(0),
                ..BrokerConfig::default()
            },
        );
        // With a zero-length queue every offer is rejected as QueueFull.
        let out = broker.execute(Query {
            kind: QueryKind::Qt1Degree,
            u: 0,
            v: 0,
        });
        assert_eq!(out, ClientOutcome::Rejected(RejectReason::QueueFull));
        let _ = g;
        teardown(hosts, broker);
    }

    #[test]
    fn shutdown_joins_engines_even_with_extra_arc_clones() {
        let (_g, hosts, broker) = mini_cluster(2);
        assert_eq!(
            broker.engines_running(),
            BrokerConfig::default().engines as usize
        );
        // Keep extra strong references alive across shutdown — the seed's
        // `Arc::get_mut` guard silently skipped the joins in this case.
        let extra_broker = Arc::clone(&broker);
        let extra_hosts: Vec<_> = hosts.iter().map(Arc::clone).collect();
        teardown(hosts, broker);
        assert_eq!(extra_broker.engines_running(), 0);
        for h in &extra_hosts {
            assert_eq!(h.engines_running(), 0);
        }
        // Idempotent: a second shutdown finds nothing left to join.
        extra_broker.shutdown();
        assert_eq!(extra_broker.engines_running(), 0);
    }

    #[test]
    fn sorted_intersection_counts() {
        assert_eq!(sorted_intersection_count(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(sorted_intersection_count(&[], &[1]), 0);
        assert_eq!(sorted_intersection_count(&[5], &[5]), 1);
    }

    #[test]
    fn registry_and_type_ids_line_up() {
        let reg = liquid_registry();
        assert_eq!(reg.len(), 12);
        for kind in QueryKind::ALL {
            let ty = kind_type_id(kind);
            assert_eq!(reg.name(ty), kind.name());
        }
    }
}
