//! A broker host: the cluster's query entry point.
//!
//! "When a broker receives a query from a client, the broker sends
//! sub-queries to the shard hosts to fetch data from them. Answering a
//! query involves one or more communication rounds between the broker and
//! the shards. At the end of each round, the broker accumulates the shards'
//! responses and processes the sub-query results before starting the next
//! round." (§5.1)
//!
//! The broker runs the admission policy under evaluation; a query's broker
//! *processing time* spans all of its rounds, so it includes shard-side
//! queueing — which is why the paper's Figure 13 sees per-type processing
//! time rise with load on the real system but not in the ideal simulator.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bouncer_core::framework::{Gate, GateConfig, ServerStats, TakeOutcome, Ticker};
use bouncer_core::obs::{
    new_span_id, null_sink, Event, EventSink, HedgeCounters, QueryTrace, SpanId, SpanKind,
    SpanStatus, TraceContext, Tracer,
};
use bouncer_core::policy::{AdmissionPolicy, RejectReason};
use bouncer_core::types::{TypeId, TypeRegistry};
use bouncer_metrics::spsc::{RingProbe, Waker};
use bouncer_metrics::{Clock, Nanos};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;

use crate::graph::VertexId;
use crate::query::{Query, QueryKind, RepBatch, RepStatus, SubQuery, SubResponse};
use crate::rings::{BrokerEngineRig, BrokerRig, LaneReq, LaneSet, ShardPortRings};
use crate::shard::{ShardHost, SubOutcome};
use crate::transport::{CancelHandle, ShardClient};

/// Builds the type registry for the LIquid workload: `default` plus
/// QT1..QT11 in cost order (ids 1..=11).
pub fn liquid_registry() -> TypeRegistry {
    let mut reg = TypeRegistry::new();
    for kind in QueryKind::ALL {
        reg.register(kind.name());
    }
    reg
}

/// The registered [`TypeId`] of a query kind in [`liquid_registry`] order.
#[inline]
pub fn kind_type_id(kind: QueryKind) -> TypeId {
    TypeId::from_index(kind.index() as u32 + 1)
}

/// Outcome of a client query, as delivered to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientOutcome {
    /// Serviced; scalar result.
    Ok(u64),
    /// Rejected by the broker's admission policy (early rejection, §2).
    Rejected(RejectReason),
    /// A shard rejected one of the query's sub-queries mid-plan.
    ShardRejected,
    /// The query expired in the broker's queue before an engine picked it
    /// up; it was dropped undone (§5.1 expiration enforcement).
    Expired,
    /// Execution failed (transport error, bad vertex).
    Failed,
}

/// Query-plan failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanError {
    ShardRejected,
    ShardFailed,
}

/// How a job's outcome travels back to the submitter.
enum Responder {
    /// Dedicated one-shot channel per query ([`Broker::submit`]).
    Oneshot(Sender<ClientOutcome>),
    /// Shared channel with a caller-chosen token ([`Broker::submit_tagged`]);
    /// lets one collector thread service any number of in-flight queries —
    /// a truly open-loop load generator needs this, since at overload the
    /// in-flight population exceeds any reasonable thread count.
    Tagged(Sender<(u64, ClientOutcome)>, u64),
}

impl Responder {
    fn send(self, outcome: ClientOutcome) {
        match self {
            Responder::Oneshot(tx) => {
                let _ = tx.send(outcome);
            }
            Responder::Tagged(tx, token) => {
                let _ = tx.send((token, outcome));
            }
        }
    }
}

struct Job {
    query: Query,
    respond: Responder,
    /// Buffered trace, present only when the broker has an enabled tracer.
    trace: Option<QueryTrace>,
}

/// How a broker routes each round's per-shard sub-query group among that
/// shard's replicas. With one replica per shard every strategy degenerates
/// to the flat (pre-replication) cluster, and the broker normalizes the
/// strategy to [`RouteStrategy::PrimaryOnly`] so the R=1 data path — and
/// its event stream — is byte-identical to the unreplicated one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouteStrategy {
    /// Always the shard's *primary* replica, `s mod R`. Staggering the
    /// primary across groups spreads distinct shards over distinct replica
    /// groups, so even primary-only routing uses the whole cluster.
    #[default]
    PrimaryOnly,
    /// The replica with the fewest in-flight sub-query groups from this
    /// broker (ties break to the primary). Purely local accounting: no
    /// coordination with other brokers, like the paper's per-broker
    /// admission state.
    LoadBalanced,
    /// Send to the primary; if no reply arrives within a quantile-based
    /// hedge delay, duplicate the group to the next replica and take
    /// whichever reply lands first. The loser is cancelled: a cancel
    /// honored at dequeue refunds its queued demand, so hedging charges
    /// the extra replica's gate only while the duplicate is actually
    /// queued (replication-aware admission).
    Hedged,
}

/// Shared routing state for one broker's engines: the replica layout, the
/// per-replica in-flight counters behind [`RouteStrategy::LoadBalanced`],
/// and the hedge telemetry counters.
struct Router {
    /// Replicas per logical shard (R). Physical index = `s * R + r`.
    replicas: usize,
    strategy: RouteStrategy,
    /// In-flight sub-query groups per *physical* replica, `[s * R + r]`.
    in_flight: Vec<AtomicUsize>,
    hedges: AtomicU64,
    hedge_cancels: AtomicU64,
    /// The gate's sink; routing events ride the same stream as lifecycle
    /// events.
    sink: Arc<dyn EventSink>,
}

impl Router {
    fn new(
        n_shards: usize,
        replicas: usize,
        strategy: RouteStrategy,
        sink: Arc<dyn EventSink>,
    ) -> Self {
        // R=1 makes every strategy PrimaryOnly; normalizing keeps the flat
        // path free of hedge plumbing (and provably event-identical).
        let strategy = if replicas == 1 { RouteStrategy::PrimaryOnly } else { strategy };
        Self {
            replicas,
            strategy,
            in_flight: (0..n_shards * replicas).map(|_| AtomicUsize::new(0)).collect(),
            hedges: AtomicU64::new(0),
            hedge_cancels: AtomicU64::new(0),
            sink,
        }
    }

    /// Shard `s`'s primary replica.
    #[inline]
    fn primary(&self, s: usize) -> usize {
        s % self.replicas
    }

    /// Physical index of `(shard, replica)` in the flattened client/port
    /// vectors.
    #[inline]
    fn phys(&self, s: usize, r: usize) -> usize {
        s * self.replicas + r
    }

    /// Whether this broker races hedged duplicates (R > 1 and hedged).
    #[inline]
    fn hedging(&self) -> bool {
        self.strategy == RouteStrategy::Hedged && self.replicas > 1
    }

    /// The replica the *first* send of a group goes to, per strategy.
    fn pick(&self, s: usize) -> usize {
        match self.strategy {
            RouteStrategy::PrimaryOnly | RouteStrategy::Hedged => self.primary(s),
            RouteStrategy::LoadBalanced => {
                let primary = self.primary(s);
                let mut best = primary;
                let mut best_load = self.in_flight[self.phys(s, primary)].load(Ordering::Relaxed);
                for r in 0..self.replicas {
                    if r == primary {
                        continue;
                    }
                    let load = self.in_flight[self.phys(s, r)].load(Ordering::Relaxed);
                    // Strict `<`: ties (including the all-idle case) keep
                    // the primary.
                    if load < best_load {
                        best = r;
                        best_load = load;
                    }
                }
                best
            }
        }
    }

    #[inline]
    fn begin(&self, s: usize, r: usize) {
        self.in_flight[self.phys(s, r)].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn end(&self, s: usize, r: usize) {
        self.in_flight[self.phys(s, r)].fetch_sub(1, Ordering::Relaxed);
    }

    /// Emits `replica_routed` — only on replicated clusters, so R=1 event
    /// streams stay byte-identical to pre-replication ones (the clock is
    /// not even read on the flat path).
    fn note_routed(&self, clock: &Arc<dyn Clock>, s: usize, r: usize) {
        if self.replicas > 1 && self.sink.enabled() {
            self.sink.emit(&Event::ReplicaRouted {
                at: clock.now(),
                shard: s as u32,
                replica: r as u32,
            });
        }
    }

    fn note_hedge_fired(&self, at: Nanos, s: usize, primary: usize, hedge: usize, delay: Nanos) {
        self.hedges.fetch_add(1, Ordering::Relaxed);
        if self.sink.enabled() {
            self.sink.emit(&Event::HedgeFired {
                at,
                shard: s as u32,
                primary: primary as u32,
                hedge: hedge as u32,
                delay,
            });
        }
    }

    fn note_hedge_cancelled(&self, at: Nanos, s: usize, replica: usize) {
        self.hedge_cancels.fetch_add(1, Ordering::Relaxed);
        if self.sink.enabled() {
            self.sink.emit(&Event::HedgeCancelled {
                at,
                shard: s as u32,
                replica: replica as u32,
            });
        }
    }
}

/// Hedge-delay window size (samples of batch round-trip latency).
const HEDGE_WINDOW: usize = 128;
/// Below this many samples the window is too noisy; use the default delay.
const HEDGE_MIN_SAMPLES: usize = 32;
/// Hedge delay until the window warms up: 1ms.
const HEDGE_DELAY_DEFAULT: Nanos = 1_000_000;
/// Clamp floor: hedging under 200µs would duplicate healthy traffic.
const HEDGE_DELAY_MIN: Nanos = 200_000;
/// Clamp ceiling: past 5ms a straggler is better served by the sub-query
/// timeout machinery than by a duplicate.
const HEDGE_DELAY_MAX: Nanos = 5_000_000;

/// Per-engine estimator of the hedge delay: a ring of recent sub-query
/// batch round-trip latencies whose p95 (clamped to
/// [`HEDGE_DELAY_MIN`], [`HEDGE_DELAY_MAX`]) is the wait before firing a
/// duplicate. Engine-private — no locks on the data path; each engine
/// adapts to the latency it actually observes.
struct HedgeDelay {
    samples: Vec<Nanos>,
    /// Next write slot (ring).
    next: usize,
    /// Lifetime samples recorded (saturating at usize::MAX is fine).
    seen: usize,
    /// Scratch for the quantile sort.
    sorted: Vec<Nanos>,
}

impl Default for HedgeDelay {
    fn default() -> Self {
        Self {
            samples: Vec::with_capacity(HEDGE_WINDOW),
            next: 0,
            seen: 0,
            sorted: Vec::with_capacity(HEDGE_WINDOW),
        }
    }
}

impl HedgeDelay {
    fn record(&mut self, latency: Nanos) {
        if self.samples.len() < HEDGE_WINDOW {
            self.samples.push(latency);
        } else {
            self.samples[self.next] = latency;
        }
        self.next = (self.next + 1) % HEDGE_WINDOW;
        self.seen = self.seen.saturating_add(1);
    }

    /// The current hedge delay.
    fn current(&mut self) -> Duration {
        if self.seen < HEDGE_MIN_SAMPLES {
            return Duration::from_nanos(HEDGE_DELAY_DEFAULT);
        }
        self.sorted.clear();
        self.sorted.extend_from_slice(&self.samples);
        self.sorted.sort_unstable();
        let idx = (self.sorted.len() * 95) / 100;
        let p95 = self.sorted[idx.min(self.sorted.len() - 1)];
        Duration::from_nanos(p95.clamp(HEDGE_DELAY_MIN, HEDGE_DELAY_MAX))
    }
}

/// Broker configuration.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Engine threads (`|PU|` on the broker).
    pub engines: u32,
    /// `L_limit` on the FIFO queue (the paper uses 800).
    pub max_queue_len: Option<usize>,
    /// Policy maintenance period.
    pub tick_period: Duration,
    /// Per-sub-query wait bound, guarding engines against stuck shards.
    pub subquery_timeout: Duration,
    /// Expiration time given to every admitted query (`None` = queries
    /// never expire — the paper's evaluation uses "generous expiration
    /// times to ensure they do not time out").
    pub query_deadline: Option<Duration>,
    /// Optional observability sink for this host's gate (lifecycle events
    /// with wall-clock timestamps, plus the policy's interval events).
    pub sink: Option<Arc<dyn EventSink>>,
    /// Optional distributed tracer. The broker roots a [`QueryTrace`] per
    /// offered query (joining an incoming sampled context when present),
    /// records admission/queue/round/sub-query spans, and finalizes at the
    /// outcome. `None` keeps tracing entirely off the admission path.
    pub tracer: Option<Arc<Tracer>>,
    /// Coalesce each round's sub-queries to one shard into a single batch
    /// (one message, one reply channel, one shard admission decision).
    /// `false` falls back to one message per sub-query — kept for
    /// batched-vs-unbatched equivalence testing and benchmarking.
    pub batch_fanout: bool,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        Self {
            engines: 4,
            max_queue_len: Some(800),
            tick_period: Duration::from_millis(100),
            subquery_timeout: Duration::from_secs(10),
            query_deadline: None,
            sink: None,
            tracer: None,
            batch_fanout: true,
        }
    }
}

/// A running broker host.
pub struct Broker {
    gate: Arc<Gate<Job>>,
    /// Engine threads, joined (exactly once) by [`Broker::shutdown`]. Held
    /// behind a mutex so shutdown joins regardless of how many `Arc` clones
    /// of the broker are still alive.
    engines: Mutex<Vec<JoinHandle<()>>>,
    _ticker: Ticker,
    parallelism: u32,
    query_deadline: Option<Duration>,
    tracer: Option<Arc<Tracer>>,
    /// Replica routing state shared by the engines.
    router: Arc<Router>,
    /// Present iff the broker was spawned in rings mode
    /// ([`Broker::spawn_rings`]): the client-facing lane set plus the
    /// engine stop/wake plumbing. `None` = channel mode.
    rings: Option<RingsFront>,
}

/// Client-side state of a rings-mode broker: submission lanes plus the
/// handles shutdown needs to stop parked engines.
struct RingsFront {
    lanes: Arc<LaneSet>,
    stop: Arc<AtomicBool>,
    wakers: Vec<Arc<Waker>>,
    /// Occupancy probes over the lane request rings (health sampling).
    lane_probes: Vec<RingProbe<LaneReq>>,
}

/// How long a rings-mode client waits for its reply slot before declaring
/// the broker engine dead. Far beyond any plan's worst case (a plan runs at
/// most a handful of rounds, each bounded by `subquery_timeout`); a closed
/// ring returns immediately, so clean shutdown never waits this long.
const RINGS_CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

impl Broker {
    /// Spawns a broker over the given shard connections, gating admissions
    /// with `policy` (the policy under evaluation in §5.4). The flat,
    /// unreplicated entry point: one client per logical shard. Delegates to
    /// [`Broker::spawn_replicated`] with one replica per shard, which is
    /// byte-identical to the pre-replication data path.
    pub fn spawn(
        shards: Vec<Arc<dyn ShardClient>>,
        policy: Arc<dyn AdmissionPolicy>,
        clock: Arc<dyn Clock>,
        cfg: BrokerConfig,
    ) -> Arc<Self> {
        let groups = shards.into_iter().map(|c| vec![c]).collect();
        Self::spawn_replicated(groups, RouteStrategy::PrimaryOnly, policy, clock, cfg)
    }

    /// Spawns a broker over replica groups: `shard_groups[s]` holds the R
    /// clients materializing logical shard `s` (every group the same
    /// length), and `strategy` picks which replica services each round's
    /// per-shard sub-query group.
    pub fn spawn_replicated(
        shard_groups: Vec<Vec<Arc<dyn ShardClient>>>,
        strategy: RouteStrategy,
        policy: Arc<dyn AdmissionPolicy>,
        clock: Arc<dyn Clock>,
        cfg: BrokerConfig,
    ) -> Arc<Self> {
        assert!(cfg.engines > 0);
        assert!(!shard_groups.is_empty());
        let replicas = shard_groups[0].len();
        assert!(replicas > 0, "a shard needs at least one replica");
        assert!(
            shard_groups.iter().all(|g| g.len() == replicas),
            "every logical shard must have the same replica count"
        );
        let n_shards = shard_groups.len();
        let registry = liquid_registry();
        let sink = cfg.sink.clone().unwrap_or_else(null_sink);
        let gate: Arc<Gate<Job>> = Arc::new(Gate::new_with_sink(
            policy.clone(),
            registry.len(),
            clock.clone(),
            GateConfig {
                max_queue_len: cfg.max_queue_len,
                ..GateConfig::default()
            },
            sink.clone(),
        ));
        // Flatten replica-major: physical index `s * R + r`.
        let shards: Vec<Arc<dyn ShardClient>> = shard_groups.into_iter().flatten().collect();
        let shards = Arc::new(shards);
        let router = Arc::new(Router::new(n_shards, replicas, strategy, sink));
        // A tracer whose sink is disabled behaves as no tracer at all.
        let tracer = cfg.tracer.filter(|t| t.enabled());
        let engines = (0..cfg.engines)
            .map(|i| {
                let gate = Arc::clone(&gate);
                let shards = Arc::clone(&shards);
                let router = Arc::clone(&router);
                let timeout = cfg.subquery_timeout;
                let tracer = tracer.clone();
                let batch = cfg.batch_fanout;
                std::thread::Builder::new()
                    .name(format!("broker-engine{i}"))
                    .spawn(move || {
                        engine_loop(&gate, &shards, &router, timeout, batch, tracer.as_deref())
                    })
                    .expect("failed to spawn broker engine")
            })
            .collect();
        let ticker = Ticker::spawn(policy, clock, cfg.tick_period);
        Arc::new(Self {
            gate,
            engines: Mutex::new(engines),
            _ticker: ticker,
            parallelism: cfg.engines,
            query_deadline: cfg.query_deadline,
            tracer,
            router,
            rings: None,
        })
    }

    /// Spawns a broker on the thread-per-core data path: engines service
    /// client *lanes* and talk to the shards over per-engine SPSC ring
    /// pairs instead of channels. `hosts` are the in-process shard hosts
    /// (rings mode has no remote transport), index-aligned with the ring
    /// ports in `rig`; the rig comes from
    /// [`crate::rings::build_topology`] and the matching
    /// [`crate::shard::ShardHost::spawn_rings`] calls.
    ///
    /// The gate still performs admission/accounting exactly as in channel
    /// mode, but in rings mode its FIFO is bypassed: an admitted query is
    /// pushed straight onto a lane's request ring (single producer), and
    /// the servicing engine replays the dequeue against the gate when it
    /// pops. One caveat follows from this: queue-length-based policies see
    /// the (tiny, bounded) ring depth rather than a broker-wide queue
    /// length, so `MaxQL`-style limits are not meaningful in rings mode.
    /// `hosts` are the *physical* in-process shard hosts in replica-major
    /// `[s * replicas + r]` order (matching the rig from
    /// [`crate::rings::build_topology`] with the same `replicas`).
    pub(crate) fn spawn_rings(
        hosts: Vec<Arc<ShardHost>>,
        replicas: usize,
        strategy: RouteStrategy,
        policy: Arc<dyn AdmissionPolicy>,
        clock: Arc<dyn Clock>,
        cfg: BrokerConfig,
        rig: BrokerRig,
    ) -> Arc<Self> {
        assert!(cfg.engines > 0);
        assert!(!hosts.is_empty());
        assert!(replicas > 0);
        assert_eq!(
            hosts.len() % replicas,
            0,
            "physical host count must be a multiple of the replica count"
        );
        assert_eq!(
            rig.engines.len(),
            cfg.engines as usize,
            "ring topology engine count must match BrokerConfig.engines"
        );
        let n_shards = hosts.len() / replicas;
        let registry = liquid_registry();
        let sink = cfg.sink.clone().unwrap_or_else(null_sink);
        let gate: Arc<Gate<Job>> = Arc::new(Gate::new_with_sink(
            policy.clone(),
            registry.len(),
            clock.clone(),
            GateConfig {
                max_queue_len: cfg.max_queue_len,
                ..GateConfig::default()
            },
            sink.clone(),
        ));
        let hosts = Arc::new(hosts);
        let router = Arc::new(Router::new(n_shards, replicas, strategy, sink));
        let tracer = cfg.tracer.filter(|t| t.enabled());
        let stop = Arc::new(AtomicBool::new(false));
        let wakers: Vec<Arc<Waker>> = rig.engines.iter().map(|e| Arc::clone(&e.waker)).collect();
        let lane_probes = rig.lane_probes;
        let engines = rig
            .engines
            .into_iter()
            .enumerate()
            .map(|(i, engine_rig)| {
                let gate = Arc::clone(&gate);
                let hosts = Arc::clone(&hosts);
                let router = Arc::clone(&router);
                let timeout = cfg.subquery_timeout;
                let deadline = cfg.query_deadline;
                let tracer = tracer.clone();
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name(format!("broker-ring{i}"))
                    .spawn(move || {
                        rings_engine_loop(
                            &gate,
                            i as u32,
                            engine_rig,
                            &hosts,
                            &router,
                            timeout,
                            deadline,
                            &stop,
                            tracer.as_deref(),
                        )
                    })
                    .expect("failed to spawn broker ring engine")
            })
            .collect();
        let ticker = Ticker::spawn(policy, clock, cfg.tick_period);
        Arc::new(Self {
            gate,
            engines: Mutex::new(engines),
            _ticker: ticker,
            parallelism: cfg.engines,
            query_deadline: cfg.query_deadline,
            tracer,
            router,
            rings: Some(RingsFront {
                lanes: rig.lanes,
                stop,
                wakers,
                lane_probes,
            }),
        })
    }

    /// Offers a client query; the returned channel yields its outcome. A
    /// broker-side rejection is delivered immediately.
    pub fn submit(&self, query: Query) -> Receiver<ClientOutcome> {
        self.submit_with_ctx(query, None)
    }

    /// Like [`Broker::submit`], joining an incoming trace context (the
    /// front server's path; in-process callers pass `None`).
    pub fn submit_with_ctx(
        &self,
        query: Query,
        ctx: Option<TraceContext>,
    ) -> Receiver<ClientOutcome> {
        let (tx, rx) = bounded(1);
        self.offer(query, Responder::Oneshot(tx), ctx);
        rx
    }

    /// Offers a client query whose outcome is delivered on a *shared*
    /// channel as `(token, outcome)`. Rejections are delivered immediately,
    /// like [`Broker::submit`].
    pub fn submit_tagged(&self, query: Query, tx: Sender<(u64, ClientOutcome)>, token: u64) {
        self.offer(query, Responder::Tagged(tx, token), None);
    }

    /// [`Broker::submit_tagged`] with an incoming trace context.
    pub fn submit_tagged_with_ctx(
        &self,
        query: Query,
        tx: Sender<(u64, ClientOutcome)>,
        token: u64,
        ctx: Option<TraceContext>,
    ) {
        self.offer(query, Responder::Tagged(tx, token), ctx);
    }

    fn offer(&self, query: Query, respond: Responder, ctx: Option<TraceContext>) {
        assert!(
            self.rings.is_none(),
            "channel submission (submit/submit_tagged) is not supported on a \
             rings-mode broker; use execute()"
        );
        let ty = kind_type_id(query.kind);
        let trace = self
            .tracer
            .as_ref()
            .map(|t| t.begin(Some(ty), self.gate.clock().now(), ctx));
        let deadline = self
            .query_deadline
            .map(|d| self.gate.clock().now() + d.as_nanos() as u64);
        if let Err((reason, job)) =
            self.gate
                .offer_with_deadline(ty, Job { query, respond, trace }, deadline)
        {
            if let (Some(tracer), Some(mut qt)) = (self.tracer.as_ref(), job.trace) {
                // Early rejections are always emitted, whatever head
                // sampling decided.
                let now = self.gate.clock().now();
                qt.record_child(SpanKind::Admission, qt.start(), now);
                tracer.finish(qt, SpanStatus::Rejected, now);
            }
            job.respond.send(ClientOutcome::Rejected(reason));
        }
    }

    /// Convenience: submit and wait. In rings mode this is the *only*
    /// submission path: the calling thread claims a lane, performs the
    /// admission decision inline, pushes onto the lane's request ring and
    /// parks on the reply ring — no shared lock anywhere on the round trip.
    pub fn execute(&self, query: Query) -> ClientOutcome {
        if self.rings.is_some() {
            return self.execute_rings(query, None);
        }
        match self.submit(query).recv() {
            Ok(outcome) => outcome,
            Err(_) => ClientOutcome::Failed,
        }
    }

    /// Emits the always-sampled trace of a query rejected before it reached
    /// an engine (mirrors the early-reject arm of [`Broker::offer`]).
    fn trace_early_reject(&self, ty: TypeId, ctx: Option<TraceContext>) {
        if let Some(tracer) = self.tracer.as_ref() {
            let now = self.gate.clock().now();
            let mut qt = tracer.begin(Some(ty), now, ctx);
            qt.record_child(SpanKind::Admission, qt.start(), now);
            tracer.finish(qt, SpanStatus::Rejected, now);
        }
    }

    /// The rings-mode submission path (see [`Broker::execute`]).
    fn execute_rings(&self, query: Query, ctx: Option<TraceContext>) -> ClientOutcome {
        let rings = self.rings.as_ref().expect("broker not in rings mode");
        let ty = kind_type_id(query.kind);
        // Claim the lane *before* admitting so the admission timestamp is
        // taken right next to the ring push it accounts for.
        let mut lane = rings.lanes.claim();
        match self.gate.admit_external(ty) {
            Err(reason) => {
                self.trace_early_reject(ty, ctx);
                ClientOutcome::Rejected(reason)
            }
            Ok(now) => {
                let pushed = lane.req.try_push(|slot| {
                    slot.query = query;
                    slot.enqueued_at = now;
                    slot.ctx = ctx;
                });
                if !pushed {
                    // The bounded ring is the lane's queue; full = QueueFull.
                    self.gate.reject_full_external(ty, now);
                    self.trace_early_reject(ty, ctx);
                    return ClientOutcome::Rejected(RejectReason::QueueFull);
                }
                let depth = lane.req.len();
                self.gate.enqueued_external(ty, now, depth);
                match lane.rep.pop_wait(RINGS_CLIENT_TIMEOUT, |slot| {
                    std::mem::replace(&mut slot.outcome, ClientOutcome::Failed)
                }) {
                    Some(outcome) => outcome,
                    // Ring closed (engine gone) or pathological stall.
                    None => ClientOutcome::Failed,
                }
            }
        }
    }

    /// This broker's statistics (per QT type).
    pub fn stats(&self) -> &Arc<ServerStats> {
        self.gate.stats()
    }

    /// The admission policy behind the gate.
    pub fn policy(&self) -> &Arc<dyn AdmissionPolicy> {
        self.gate.policy()
    }

    /// The distributed tracer, when one was configured with an enabled sink.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// The clock this broker timestamps with.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        self.gate.clock()
    }

    /// Engine parallelism (`|PU|`).
    pub fn parallelism(&self) -> u32 {
        self.parallelism
    }

    /// Replicas per logical shard (R; 1 on a flat broker).
    pub fn replicas(&self) -> usize {
        self.router.replicas
    }

    /// The routing strategy in effect (normalized to
    /// [`RouteStrategy::PrimaryOnly`] at R=1).
    pub fn strategy(&self) -> RouteStrategy {
        self.router.strategy
    }

    /// Hedge telemetry: duplicates fired and losers cancelled by this
    /// broker's engines since spawn.
    pub fn hedge_counters(&self) -> HedgeCounters {
        HedgeCounters {
            hedges: self.router.hedges.load(Ordering::Relaxed),
            cancels: self.router.hedge_cancels.load(Ordering::Relaxed),
        }
    }

    /// Current FIFO queue length.
    pub fn queue_len(&self) -> usize {
        self.gate.queue_len()
    }

    /// Total occupancy across this broker's lane request rings — the
    /// rings-mode analogue of [`Broker::queue_len`], read lock-free off
    /// the rings' own indices. `None` on a channel-mode broker.
    pub fn ring_occupancy(&self) -> Option<u64> {
        self.rings
            .as_ref()
            .map(|r| r.lane_probes.iter().map(|p| p.len() as u64).sum())
    }

    /// Stops the engines and waits for them to exit.
    ///
    /// Always joins, no matter how many `Arc` clones of the broker are
    /// still held elsewhere (the seed only joined when the caller happened
    /// to hold the last strong reference, silently leaking the engine
    /// threads otherwise). Idempotent: later calls find no handles left.
    pub fn shutdown(&self) {
        self.gate.close();
        if let Some(rings) = self.rings.as_ref() {
            rings.stop.store(true, Ordering::Release);
            for waker in &rings.wakers {
                waker.wake();
            }
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.engines.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Number of engine threads not yet joined — 0 after
    /// [`Broker::shutdown`] returns.
    pub fn engines_running(&self) -> usize {
        self.engines.lock().len()
    }
}

fn engine_loop(
    gate: &Gate<Job>,
    shards: &[Arc<dyn ShardClient>],
    router: &Arc<Router>,
    timeout: Duration,
    batch: bool,
    tracer: Option<&Tracer>,
) {
    // One executor per engine thread: its scratch buffers (sub-query
    // batches, reply accumulators, plan frontiers) live for the thread's
    // lifetime and are reused across queries.
    let n_shards = shards.len() / router.replicas;
    let mut exec = Exec::new(
        Port::Channels(shards),
        n_shards,
        router,
        timeout,
        batch,
        gate.clock(),
    );
    loop {
        match gate.take(Some(Duration::from_millis(100))) {
            TakeOutcome::Query(admitted) => {
                let (ty, enqueued_at, dequeued_at) =
                    (admitted.ty, admitted.enqueued_at, admitted.dequeued_at);
                let Job { query, respond, trace } = admitted.payload;
                if let Some(mut qt) = trace {
                    // The admission span covers the gate offer; the queue
                    // span covers enqueue→engine pickup. Both timestamps
                    // come from the gate's own bookkeeping.
                    qt.record_child(SpanKind::Admission, qt.start(), enqueued_at);
                    qt.record_child(SpanKind::BrokerQueue, enqueued_at, dequeued_at);
                    exec.trace = Some(PlanTrace::new(qt, dequeued_at));
                }
                let result = execute_plan(&mut exec, query);
                gate.complete(ty, enqueued_at, dequeued_at);
                if let Some(pt) = exec.trace.take() {
                    if let Some(tracer) = tracer {
                        pt.finish(tracer, plan_status(&result), gate.clock().now());
                    }
                }
                respond.send(plan_outcome(result));
            }
            TakeOutcome::Expired(admitted) => {
                // Dropped undone: reply with a timeout error immediately.
                let enqueued_at = admitted.enqueued_at;
                let Job { respond, trace, .. } = admitted.payload;
                if let (Some(tracer), Some(mut qt)) = (tracer, trace) {
                    let now = gate.clock().now();
                    qt.record_child(SpanKind::Admission, qt.start(), enqueued_at);
                    qt.record_child(SpanKind::BrokerQueue, enqueued_at, now);
                    tracer.finish(qt, SpanStatus::Expired, now);
                }
                respond.send(ClientOutcome::Expired);
            }
            TakeOutcome::TimedOut => {}
            TakeOutcome::Closed => return,
        }
    }
}

fn plan_status(result: &Result<u64, PlanError>) -> SpanStatus {
    match result {
        Ok(_) => SpanStatus::Ok,
        Err(PlanError::ShardRejected) => SpanStatus::Rejected,
        Err(PlanError::ShardFailed) => SpanStatus::Failed,
    }
}

fn plan_outcome(result: Result<u64, PlanError>) -> ClientOutcome {
    match result {
        Ok(value) => ClientOutcome::Ok(value),
        Err(PlanError::ShardRejected) => ClientOutcome::ShardRejected,
        Err(PlanError::ShardFailed) => ClientOutcome::Failed,
    }
}

/// The rings-mode engine loop: sweeps this engine's client lanes for
/// requests, replays each dequeue against the gate, runs the plan over
/// the engine's private shard ring ports, and pushes the outcome back on
/// the lane's reply ring. Between requests the engine parks on its waker
/// (woken by lane pushes and shard replies), so an idle cluster burns no
/// CPU while a loaded one runs lock-free.
#[allow(clippy::too_many_arguments)]
fn rings_engine_loop(
    gate: &Gate<Job>,
    engine: u32,
    rig: BrokerEngineRig,
    hosts: &[Arc<ShardHost>],
    router: &Arc<Router>,
    timeout: Duration,
    query_deadline: Option<Duration>,
    stop: &AtomicBool,
    tracer: Option<&Tracer>,
) {
    let BrokerEngineRig {
        mut lane_reqs,
        mut lane_reps,
        ports,
        waker,
    } = rig;
    waker.register_current();
    assert_eq!(ports.len(), hosts.len(), "one ring port per physical shard host");
    let mut ports: Vec<RingPort> = ports
        .into_iter()
        .zip(hosts.iter())
        .map(|(rings, host)| RingPort {
            rings,
            host: Arc::clone(host),
            poisoned: false,
        })
        .collect();
    let n_shards = ports.len() / router.replicas;
    // Rings mode is always batched: the ring slot carries the whole
    // per-shard group.
    let mut exec = Exec::new(
        Port::Rings(&mut ports),
        n_shards,
        router,
        timeout,
        true,
        gate.clock(),
    );
    // Flight-recorder breadcrumb state: emit `engine_state` only on
    // park/resume *transitions* (a 1ms park timeout re-park is not one),
    // so an idle cluster leaves two records, not a 1kHz stream.
    let mut idle = false;
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let mut worked = false;
        for l in 0..lane_reqs.len() {
            let Some((query, enqueued_at, ctx)) =
                lane_reqs[l].try_pop(|slot| (slot.query, slot.enqueued_at, slot.ctx))
            else {
                continue;
            };
            worked = true;
            let ty = kind_type_id(query.kind);
            let deadline = query_deadline.map(|d| enqueued_at + d.as_nanos() as u64);
            let (dequeued_at, expired) = gate.dequeued_external(ty, enqueued_at, deadline);
            let outcome = if expired {
                if let Some(tracer) = tracer {
                    let mut qt = tracer.begin(Some(ty), enqueued_at, ctx);
                    qt.record_child(SpanKind::Admission, qt.start(), enqueued_at);
                    qt.record_child(SpanKind::BrokerQueue, enqueued_at, dequeued_at);
                    tracer.finish(qt, SpanStatus::Expired, dequeued_at);
                }
                ClientOutcome::Expired
            } else {
                if let Some(tracer) = tracer {
                    // The trace roots engine-side (a QueryTrace cannot
                    // cross the ring); admission + queue spans are rebuilt
                    // from the gate's timestamps, like channel mode.
                    let mut qt = tracer.begin(Some(ty), enqueued_at, ctx);
                    qt.record_child(SpanKind::Admission, qt.start(), enqueued_at);
                    qt.record_child(SpanKind::BrokerQueue, enqueued_at, dequeued_at);
                    exec.trace = Some(PlanTrace::new(qt, dequeued_at));
                }
                let result = execute_plan(&mut exec, query);
                gate.complete(ty, enqueued_at, dequeued_at);
                if let Some(pt) = exec.trace.take() {
                    if let Some(tracer) = tracer {
                        pt.finish(tracer, plan_status(&result), gate.clock().now());
                    }
                }
                plan_outcome(result)
            };
            // The lane protocol allows one outstanding request per lane, so
            // the reply slot is always free.
            let pushed = lane_reps[l].try_push(|slot| slot.outcome = outcome);
            assert!(pushed, "lane reply ring full (protocol violation)");
        }
        if worked {
            if idle {
                idle = false;
                engine_state(gate, engine, false);
            }
            continue;
        }
        waker.prepare_park();
        if stop.load(Ordering::Acquire) || lane_reqs.iter().any(|r| !r.is_empty()) {
            waker.cancel_park();
            continue;
        }
        if !idle {
            idle = true;
            engine_state(gate, engine, true);
        }
        waker.park(Duration::from_millis(1));
    }
}

/// Emits the `engine_state` park/resume breadcrumb through the gate's
/// sink (a no-op unless an observing sink — recorder, JSONL — is
/// attached).
fn engine_state(gate: &Gate<Job>, engine: u32, parked: bool) {
    let sink = gate.sink();
    if sink.enabled() {
        sink.emit(&Event::EngineState {
            at: gate.clock().now(),
            engine,
            parked,
        });
    }
}

/// Query-plan caps: bound the fan-out of the expensive templates so costs
/// are heavy-tailed but finite, like production queries with result limits.
const PAGE: usize = 64;
const DEGREE_SAMPLE: usize = 32;
const TWO_HOP_CAP: usize = 192;
const TRIANGLE_CAP: usize = 32;
const COMMON_CAP: usize = 128;
const BFS3_CAP: usize = 512;
const BFS4_CAP: usize = 1024;

/// Per-query trace state while the engine runs the plan: segments the
/// execution into fan-out rounds (a round opens at the first send after the
/// previous round closed, and closes when every sub-query of the round has
/// been waited for) with [`SpanKind::Aggregation`] spans filling the
/// broker-compute gaps between rounds.
struct PlanTrace {
    qt: QueryTrace,
    /// Pre-minted id of the [`SpanKind::BrokerService`] span (recorded at
    /// finish); rounds and aggregation spans parent under it.
    service_span: SpanId,
    service_start: Nanos,
    round_idx: u16,
    /// The open round, as `(span id, start)`.
    round: Option<(SpanId, Nanos)>,
    /// Sub-queries sent in the open round and not yet waited for, as
    /// `(span id, shard, sent at)`. Drained entries become
    /// [`SpanKind::SubQuery`] spans; anything still here at finish is
    /// recorded then, so eagerly-emitted shard spans always find their
    /// parent even when an error path abandons receivers.
    outstanding: Vec<(SpanId, u16, Nanos)>,
    /// Where the current between-rounds aggregation segment began.
    segment_start: Nanos,
}

impl PlanTrace {
    fn new(qt: QueryTrace, dequeued_at: Nanos) -> Self {
        Self {
            qt,
            service_span: new_span_id(),
            service_start: dequeued_at,
            round_idx: 0,
            round: None,
            outstanding: Vec::new(),
            segment_start: dequeued_at,
        }
    }

    /// Called per sub-query send; returns the sub-query's span id (the
    /// parent shard-side spans attach under).
    fn on_send(&mut self, shard: u16, now: Nanos) -> SpanId {
        if self.round.is_none() {
            if self.round_idx > 0 {
                // The gap since the previous round closed was broker
                // compute: reply aggregation / frontier construction.
                self.qt.record(
                    SpanKind::Aggregation(self.round_idx - 1),
                    new_span_id(),
                    self.service_span,
                    self.segment_start,
                    now,
                );
            }
            self.round = Some((new_span_id(), now));
        }
        let sub_span = new_span_id();
        self.outstanding.push((sub_span, shard, now));
        sub_span
    }

    /// Called once per sub-query wait (success or failure).
    fn on_recv(&mut self, sub_span: SpanId, now: Nanos) {
        let Some(pos) = self.outstanding.iter().position(|&(s, _, _)| s == sub_span) else {
            return;
        };
        let (span, shard, sent_at) = self.outstanding.swap_remove(pos);
        let (round_span, _) = self.round.expect("recv with no open round");
        self.qt
            .record(SpanKind::SubQuery { shard }, span, round_span, sent_at, now);
        if self.outstanding.is_empty() {
            self.close_round(now);
        }
    }

    /// Records the span of a hedged duplicate that lost its race, covering
    /// send → cancel. Recorded eagerly at cancel time under the open round
    /// (the winner's [`SpanKind::SubQuery`] span closes separately via
    /// [`PlanTrace::on_recv`]), so losers are visible in traces without
    /// ever landing on the critical path.
    fn on_hedge_cancel(&mut self, shard: u16, sent_at: Nanos, now: Nanos) {
        if let Some((round_span, _)) = self.round {
            self.qt.record(
                SpanKind::HedgeSubQuery { shard },
                new_span_id(),
                round_span,
                sent_at,
                now,
            );
        }
    }

    fn close_round(&mut self, now: Nanos) {
        if let Some((round_span, round_start)) = self.round.take() {
            self.qt.record(
                SpanKind::Round(self.round_idx),
                round_span,
                self.service_span,
                round_start,
                now,
            );
            self.round_idx += 1;
            self.segment_start = now;
        }
    }

    /// Records the service span, any abandoned sub-queries and the still
    /// open round, then hands the trace to the tracer's sampling decision.
    fn finish(mut self, tracer: &Tracer, status: SpanStatus, now: Nanos) {
        for (span, shard, sent_at) in std::mem::take(&mut self.outstanding) {
            if let Some((round_span, _)) = self.round {
                self.qt
                    .record(SpanKind::SubQuery { shard }, span, round_span, sent_at, now);
            }
        }
        self.close_round(now);
        let root = self.qt.root_span();
        self.qt.record(
            SpanKind::BrokerService,
            self.service_span,
            root,
            self.service_start,
            now,
        );
        tracer.finish(self.qt, status, now);
    }
}

/// An in-flight sub-query: the outcome channel plus, when tracing, the
/// sub-query span to close at the wait.
struct PendingSub {
    rx: Receiver<SubOutcome>,
    sub_span: Option<SpanId>,
}

/// An in-flight per-shard batch: one channel for the whole group. The
/// batch's [`SpanKind::SubQuery`] span covers every item it carries.
struct PendingBatch {
    rx: Receiver<Vec<SubOutcome>>,
    n: usize,
    sub_span: Option<SpanId>,
}

/// The transport a plan executor fans out over.
enum Port<'a> {
    /// Channel mode: one `ShardClient` per shard (in-process or TCP).
    Channels(&'a [Arc<dyn ShardClient>]),
    /// Rings mode: this engine's private SPSC ring pair per shard.
    Rings(&'a mut [RingPort]),
}

/// One engine's private ring pair to one shard, plus the shard host handle
/// used for admission accounting on that shard's gate.
struct RingPort {
    rings: ShardPortRings,
    host: Arc<ShardHost>,
    /// Set when the shard failed to reply within the timeout: the ring
    /// protocol allows one outstanding request per port, so a port whose
    /// reply never came can never be trusted again (a late reply would
    /// correlate with the wrong request).
    poisoned: bool,
}

/// Per-shard read cursors into the round's [`RepBatch`] response.
#[derive(Clone, Copy, Default)]
struct Cursor {
    status: usize,
    list: usize,
    count: usize,
    scalar: usize,
}

/// The sub-query kind staged for a round item, recorded at [`Exec::stage`]
/// time. Channel mode needs it to demultiplex `SubResponse`s into the
/// [`RepBatch`] lanes (`Degree` and `CountIntersect` both come back as
/// `Count`, but land in different lanes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SubTag {
    Neighbors,
    NeighborsMany,
    Degree,
    DegreeMany,
    HasEdge,
    CountIntersect,
}

fn tag_of(sub: &SubQuery) -> SubTag {
    match sub {
        SubQuery::Neighbors(_) => SubTag::Neighbors,
        SubQuery::NeighborsMany(_) => SubTag::NeighborsMany,
        SubQuery::Degree(_) => SubTag::Degree,
        SubQuery::DegreeMany(_) => SubTag::DegreeMany,
        SubQuery::HasEdge(_, _) => SubTag::HasEdge,
        SubQuery::CountIntersect(_, _) => SubTag::CountIntersect,
    }
}

/// An engine's reusable buffers. Everything here is allocated once per
/// engine thread and recycled across queries, which is what makes the
/// steady-state data path allocation-free in rings mode: after warm-up
/// every round runs entirely in buffers that already have capacity.
#[derive(Default)]
struct Scratch {
    /// Per-shard sub-query groups for the round being staged. Invariant:
    /// empty (but with retained capacity) between rounds. In rings mode
    /// these buffers circulate through the ring slots and come back via
    /// the reply's hand-back field.
    per_shard: Vec<Vec<SubQuery>>,
    /// Per-shard [`SubTag`]s, parallel to `per_shard` (the subs themselves
    /// move into the transport at send time).
    tags: Vec<Vec<SubTag>>,
    /// Shards used this round, in first-use order.
    shard_order: Vec<usize>,
    /// Owning shard per staged item, in staging order.
    slots: Vec<usize>,
    /// Groups actually sent this round (rings mode), as
    /// `(shard, replica, sub-query span, sent-at)`.
    sent: Vec<(usize, usize, Option<SpanId>, Nanos)>,
    /// Per-engine hedge-delay estimator (hedged strategy only).
    hedge: HedgeDelay,
    /// Retained copies of each sent group's sub-queries, parallel to
    /// `sent` (rings hedged mode: the originals are swapped into the
    /// primary's ring slot, so a later duplicate needs its own buffer).
    hedge_copies: Vec<Vec<SubQuery>>,
    /// Cancel flags planted in the primary sends, parallel to `sent`
    /// (rings hedged mode; flipped when the hedge wins the race).
    hedge_flags: Vec<Option<Arc<AtomicBool>>>,
    /// Discard buffers for draining a hedge loser's reply without
    /// clobbering the winner's response (rings mode).
    discard_batch: RepBatch,
    discard_subs: Vec<SubQuery>,
    /// Per-shard responses for the round just run.
    resp: Vec<RepBatch>,
    /// Per-shard read cursors into `resp`.
    cur: Vec<Cursor>,
    /// Per-shard vertex grouping for `NeighborsMany`/`DegreeMany`
    /// fan-out, as a flat two-pass counting layout (the CSR build in
    /// miniature): `group_ids` holds the staged vertices grouped by
    /// owning shard, `group_starts[s]..group_ends[s]` shard `s`'s range.
    /// One buffer instead of a Vec-of-Vecs keeps the grouping pass in a
    /// single allocation whatever the shard count.
    group_ids: Vec<VertexId>,
    group_starts: Vec<usize>,
    group_ends: Vec<usize>,
    /// Pool of payload allocations for `*Many`/`CountIntersect`
    /// sub-queries. An entry whose strong count has returned to 1 is free
    /// for reuse (`Arc::get_mut` + `clear`).
    payloads: Vec<Arc<Vec<VertexId>>>,
    // Plan-level working buffers (frontiers, neighbor lists, visited sets).
    nu: Vec<VertexId>,
    nv: Vec<VertexId>,
    frontier: Vec<VertexId>,
    next: Vec<VertexId>,
    seen: HashSet<VertexId>,
    seen2: HashSet<VertexId>,
}

impl Scratch {
    fn new(n_shards: usize) -> Self {
        Self {
            per_shard: (0..n_shards).map(|_| Vec::new()).collect(),
            tags: (0..n_shards).map(|_| Vec::new()).collect(),
            resp: (0..n_shards).map(|_| RepBatch::default()).collect(),
            cur: vec![Cursor::default(); n_shards],
            group_starts: vec![0; n_shards],
            group_ends: vec![0; n_shards],
            ..Default::default()
        }
    }

    /// A cleared, unshared payload buffer: recycled from the pool when an
    /// earlier round's payload has been released by every shard, freshly
    /// allocated otherwise. Callers push the `Arc` back into
    /// `self.payloads` after staging clones of it.
    fn acquire_payload(&mut self) -> Arc<Vec<VertexId>> {
        for i in 0..self.payloads.len() {
            if Arc::strong_count(&self.payloads[i]) == 1 {
                let mut arc = self.payloads.swap_remove(i);
                Arc::get_mut(&mut arc).expect("strong count was 1").clear();
                return arc;
            }
        }
        Arc::new(Vec::new())
    }
}

/// The per-engine plan executor: owns the scratch buffers and the shard
/// port, runs communication rounds, and exposes cursor-based readers over
/// the per-shard [`RepBatch`] responses. Replaces the channel-only
/// `PlanCtx` (whose per-round `Vec<(usize, SubQuery)>` / reassembled
/// `Vec<SubResponse>` allocations dominated the broker-side profile).
struct Exec<'a> {
    port: Port<'a>,
    n_shards: usize,
    router: &'a Router,
    timeout: Duration,
    /// Coalesce per-shard fan-out into batches (see
    /// [`BrokerConfig::batch_fanout`]); always `true` in rings mode.
    batch: bool,
    clock: &'a Arc<dyn Clock>,
    /// The running query's trace, if the broker traces.
    trace: Option<PlanTrace>,
    scratch: Scratch,
}

fn trace_send(
    trace: &mut Option<PlanTrace>,
    clock: &Arc<dyn Clock>,
    shard: usize,
) -> (Option<TraceContext>, Option<SpanId>) {
    match trace.as_mut() {
        Some(pt) => {
            let sub_span = pt.on_send(shard as u16, clock.now());
            (Some(pt.qt.ctx_for(sub_span)), Some(sub_span))
        }
        None => (None, None),
    }
}

fn trace_recv(trace: &mut Option<PlanTrace>, clock: &Arc<dyn Clock>, sub_span: Option<SpanId>) {
    if let (Some(pt), Some(span)) = (trace.as_mut(), sub_span) {
        pt.on_recv(span, clock.now());
    }
}

/// Demultiplexes one channel-mode [`SubOutcome`] into the shard's
/// [`RepBatch`] lanes, converging the two transports on one response
/// layout. A response shape that contradicts the tag is a protocol
/// violation and fails the plan.
fn stage_outcome(rep: &mut RepBatch, tag: SubTag, outcome: SubOutcome) -> Result<(), PlanError> {
    let resp = match outcome {
        SubOutcome::Rejected => {
            rep.status.push(RepStatus::Rejected);
            return Ok(());
        }
        SubOutcome::Error => {
            rep.status.push(RepStatus::Error);
            return Ok(());
        }
        SubOutcome::Cancelled => {
            rep.status.push(RepStatus::Cancelled);
            return Ok(());
        }
        SubOutcome::Ok(resp) => resp,
    };
    match (tag, resp) {
        (SubTag::Neighbors, SubResponse::Ids(ids)) => rep.lists.push(&ids),
        (SubTag::NeighborsMany, SubResponse::IdLists(lists)) => {
            for list in lists.iter() {
                rep.lists.push(list);
            }
        }
        (SubTag::Degree, SubResponse::Count(c)) => rep.counts.push(c as u32),
        (SubTag::DegreeMany, SubResponse::Counts(counts)) => rep.counts.extend_from_slice(&counts),
        (SubTag::HasEdge, SubResponse::Flag(b)) => rep.scalars.push(b as u64),
        (SubTag::CountIntersect, SubResponse::Count(c)) => rep.scalars.push(c),
        _ => return Err(PlanError::ShardFailed),
    }
    rep.status.push(RepStatus::Ok);
    Ok(())
}

/// Marks every item staged for shard `s` rejected (the group never reached
/// the shard) and reclaims the staging buffer.
fn reject_group(sc: &mut Scratch, s: usize) {
    for _ in 0..sc.per_shard[s].len() {
        sc.resp[s].status.push(RepStatus::Rejected);
    }
    sc.per_shard[s].clear();
}

/// Runs one staged round over channel-mode shard clients: fan out every
/// group (or item, unbatched) before waiting any, then demultiplex the
/// outcomes into the per-shard [`RepBatch`]es. Every send is routed to a
/// replica by the broker's [`RouteStrategy`]; at R=1 the routing collapses
/// to the identity (`phys(s, 0) == s`) and the path is byte-identical to
/// the pre-replication one.
fn run_round_channels(
    sc: &mut Scratch,
    trace: &mut Option<PlanTrace>,
    clock: &Arc<dyn Clock>,
    clients: &[Arc<dyn ShardClient>],
    router: &Router,
    timeout: Duration,
    batch: bool,
) -> Result<(), PlanError> {
    if !batch {
        // The fallback reproduces the pre-batching data path faithfully —
        // one message and one reply channel per sub-query, each carrying
        // its own copy of any shared payload (the old `n.clone()` per
        // `CountIntersect` target) — so the `liquid_datapath` bench
        // measures an honest before/after. Routing applies per item;
        // hedging never does (it is a batch-path feature).
        let mut pendings: Vec<(usize, usize, SubTag, PendingSub)> =
            Vec::with_capacity(sc.slots.len());
        for oi in 0..sc.shard_order.len() {
            let s = sc.shard_order[oi];
            for idx in 0..sc.per_shard[s].len() {
                let sub = deep_copy_payload(sc.per_shard[s][idx].clone());
                let tag = sc.tags[s][idx];
                let r = router.pick(s);
                let (ctx, sub_span) = trace_send(trace, clock, s);
                router.begin(s, r);
                router.note_routed(clock, s, r);
                pendings.push((
                    s,
                    r,
                    tag,
                    PendingSub {
                        rx: clients[router.phys(s, r)].submit(sub, ctx),
                        sub_span,
                    },
                ));
            }
            sc.per_shard[s].clear();
        }
        let mut first_err = None;
        for (s, r, tag, pending) in pendings {
            let result = pending.rx.recv_timeout(timeout);
            router.end(s, r);
            trace_recv(trace, clock, pending.sub_span);
            match result {
                Ok(outcome) => {
                    if let Err(e) = stage_outcome(&mut sc.resp[s], tag, outcome) {
                        first_err = first_err.or(Some(e));
                    }
                }
                Err(_) => first_err = first_err.or(Some(PlanError::ShardFailed)),
            }
        }
        return match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        };
    }
    if sc.slots.len() == 1 && !router.hedging() {
        // Single-item fast path: most rounds of the cheap templates carry
        // exactly one sub-query, and wrapping it in a batch costs a `Vec`
        // build broker-side and a reply-vector build shard-side. Send it
        // as a plain message instead (still one admission decision either
        // way, so batched and unbatched stay decision-equivalent). In
        // hedged mode the round takes the batch path instead, so every
        // round — single-item included — is hedgeable and cancellable.
        let s = sc.slots[0];
        let sub = sc.per_shard[s].pop().expect("one staged item");
        let tag = sc.tags[s][0];
        let r = router.pick(s);
        let (ctx, sub_span) = trace_send(trace, clock, s);
        router.begin(s, r);
        router.note_routed(clock, s, r);
        let rx = clients[router.phys(s, r)].submit(sub, ctx);
        let result = rx.recv_timeout(timeout);
        router.end(s, r);
        trace_recv(trace, clock, sub_span);
        return match result {
            Ok(outcome) => stage_outcome(&mut sc.resp[s], tag, outcome),
            Err(_) => Err(PlanError::ShardFailed),
        };
    }
    if router.hedging() {
        return run_round_channels_hedged(sc, trace, clock, clients, router, timeout);
    }
    // Fan out every group before waiting on any...
    let mut groups: Vec<(usize, usize, PendingBatch)> = Vec::with_capacity(sc.shard_order.len());
    for oi in 0..sc.shard_order.len() {
        let s = sc.shard_order[oi];
        let subs = std::mem::take(&mut sc.per_shard[s]);
        let n = subs.len();
        let r = router.pick(s);
        let (ctx, sub_span) = trace_send(trace, clock, s);
        router.begin(s, r);
        router.note_routed(clock, s, r);
        groups.push((
            s,
            r,
            PendingBatch {
                rx: clients[router.phys(s, r)].submit_batch(subs, ctx),
                n,
                sub_span,
            },
        ));
    }
    // ...then gather every group even after an error, so the round's spans
    // close and no receiver is abandoned mid-flight.
    let mut first_err = None;
    for (s, r, pending) in groups {
        let result = pending.rx.recv_timeout(timeout);
        router.end(s, r);
        trace_recv(trace, clock, pending.sub_span);
        match result {
            // A reply of the wrong width is a protocol violation.
            Ok(outcomes) if outcomes.len() == pending.n => {
                for (idx, outcome) in outcomes.into_iter().enumerate() {
                    let tag = sc.tags[s][idx];
                    if let Err(e) = stage_outcome(&mut sc.resp[s], tag, outcome) {
                        first_err = first_err.or(Some(e));
                    }
                }
            }
            Ok(_) | Err(_) => first_err = first_err.or(Some(PlanError::ShardFailed)),
        }
    }
    match first_err {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// An in-flight hedgeable batch: the primary's reply channel and cancel
/// handle, plus a retained copy of the sub-queries in case the hedge fires.
struct HedgedPending {
    s: usize,
    /// Primary replica the first send went to.
    r: usize,
    rx: Receiver<Vec<SubOutcome>>,
    cancel: CancelHandle,
    n: usize,
    sub_span: Option<SpanId>,
    subs: Vec<SubQuery>,
    sent_at: Nanos,
}

/// The hedged batch path: fan out every group to its primary replica
/// (cancellably), then per group wait up to the engine's quantile hedge
/// delay; a straggler gets a duplicate on the next replica and the two
/// race — first reply wins, the loser is cancelled (its queued demand is
/// refunded at dequeue shard-side) and recorded as a
/// [`SpanKind::HedgeSubQuery`] loser span.
fn run_round_channels_hedged(
    sc: &mut Scratch,
    trace: &mut Option<PlanTrace>,
    clock: &Arc<dyn Clock>,
    clients: &[Arc<dyn ShardClient>],
    router: &Router,
    timeout: Duration,
) -> Result<(), PlanError> {
    let mut groups: Vec<HedgedPending> = Vec::with_capacity(sc.shard_order.len());
    for oi in 0..sc.shard_order.len() {
        let s = sc.shard_order[oi];
        let subs = std::mem::take(&mut sc.per_shard[s]);
        let n = subs.len();
        // The copy is cheap: sub-queries share payloads via `Arc`.
        let copy = subs.clone();
        let r = router.pick(s);
        let (ctx, sub_span) = trace_send(trace, clock, s);
        let sent_at = clock.now();
        router.begin(s, r);
        router.note_routed(clock, s, r);
        let (rx, cancel) = clients[router.phys(s, r)].submit_batch_cancellable(subs, ctx);
        groups.push(HedgedPending {
            s,
            r,
            rx,
            cancel,
            n,
            sub_span,
            subs: copy,
            sent_at,
        });
    }
    let delay = sc.hedge.current();
    let first_wait = delay.min(timeout);
    let mut first_err = None;
    for pending in groups {
        let HedgedPending {
            s,
            r,
            rx,
            cancel,
            n,
            sub_span,
            subs,
            sent_at,
        } = pending;
        let resolution: Result<Vec<SubOutcome>, PlanError> = match rx.recv_timeout(first_wait) {
            Ok(outcomes) => {
                // Primary answered inside the hedge delay: no duplicate.
                router.end(s, r);
                sc.hedge.record(clock.now().saturating_sub(sent_at));
                Ok(outcomes)
            }
            Err(RecvTimeoutError::Timeout) if first_wait < timeout => race_hedge(
                sc, trace, clock, clients, router, timeout, s, r, &rx, cancel, subs, sent_at,
                delay,
            ),
            Err(_) => {
                router.end(s, r);
                Err(PlanError::ShardFailed)
            }
        };
        trace_recv(trace, clock, sub_span);
        match resolution {
            Ok(outcomes) if outcomes.len() == n => {
                for (idx, outcome) in outcomes.into_iter().enumerate() {
                    let tag = sc.tags[s][idx];
                    if let Err(e) = stage_outcome(&mut sc.resp[s], tag, outcome) {
                        first_err = first_err.or(Some(e));
                    }
                }
            }
            Ok(_) => first_err = first_err.or(Some(PlanError::ShardFailed)),
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    match first_err {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// Fires the duplicate for a straggling primary and races the two replies.
/// Returns the winner's outcomes; the loser is cancelled. The race is
/// bounded by the full sub-query `timeout` from the hedge fire, so a
/// hedged group never waits less than an unhedged one would have.
#[allow(clippy::too_many_arguments)]
fn race_hedge(
    sc: &mut Scratch,
    trace: &mut Option<PlanTrace>,
    clock: &Arc<dyn Clock>,
    clients: &[Arc<dyn ShardClient>],
    router: &Router,
    timeout: Duration,
    s: usize,
    r: usize,
    primary_rx: &Receiver<Vec<SubOutcome>>,
    primary_cancel: CancelHandle,
    subs: Vec<SubQuery>,
    sent_at: Nanos,
    delay: Duration,
) -> Result<Vec<SubOutcome>, PlanError> {
    let hr = (r + 1) % router.replicas;
    let fired_at = clock.now();
    router.begin(s, hr);
    // The duplicate is untraced (ctx `None`): the loser appears only as the
    // broker-side `hedge_subquery` span, never as shard-side spans that
    // would pollute the winner's attribution.
    let (hedge_rx, hedge_cancel) =
        clients[router.phys(s, hr)].submit_batch_cancellable(subs, None);
    router.note_hedge_fired(fired_at, s, r, hr, delay.as_nanos() as Nanos);
    let mut primary_cancel = Some(primary_cancel);
    let mut hedge_cancel = Some(hedge_cancel);
    let mut primary_dead = false;
    let mut hedge_dead = false;
    let deadline = fired_at + timeout.as_nanos() as Nanos;
    loop {
        if primary_dead && hedge_dead {
            router.end(s, r);
            router.end(s, hr);
            return Err(PlanError::ShardFailed);
        }
        let now = clock.now();
        if now >= deadline {
            // Nobody answered within the full timeout: cancel both (best
            // effort) and fail the group like an unhedged timeout would.
            if let Some(c) = primary_cancel.take() {
                c.cancel();
            }
            if let Some(c) = hedge_cancel.take() {
                c.cancel();
            }
            router.end(s, r);
            router.end(s, hr);
            return Err(PlanError::ShardFailed);
        }
        // The channel shim has no `select`; poll both replicas instead. The
        // 20us nap between polls adds latency well under the minimum hedge
        // delay (200us), and a race lives at most one sub-query timeout.
        if !primary_dead {
            match primary_rx.try_recv() {
                Ok(outcomes) => {
                    let now = clock.now();
                    if let Some(c) = hedge_cancel.take() {
                        c.cancel();
                    }
                    router.end(s, r);
                    router.end(s, hr);
                    router.note_hedge_cancelled(now, s, hr);
                    if let Some(pt) = trace.as_mut() {
                        pt.on_hedge_cancel(s as u16, fired_at, now);
                    }
                    sc.hedge.record(now.saturating_sub(sent_at));
                    return Ok(outcomes);
                }
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => primary_dead = true,
            }
        }
        if !hedge_dead {
            match hedge_rx.try_recv() {
                Ok(outcomes) => {
                    let now = clock.now();
                    if let Some(c) = primary_cancel.take() {
                        c.cancel();
                    }
                    router.end(s, r);
                    router.end(s, hr);
                    router.note_hedge_cancelled(now, s, r);
                    if let Some(pt) = trace.as_mut() {
                        pt.on_hedge_cancel(s as u16, sent_at, now);
                    }
                    sc.hedge.record(now.saturating_sub(fired_at));
                    return Ok(outcomes);
                }
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => hedge_dead = true,
            }
        }
        std::thread::sleep(Duration::from_micros(20));
    }
}

/// Runs one staged round over this engine's shard rings: per group, admit
/// at the shard's gate, then *swap* the staged sub-query vector into the
/// ring slot (no copy, no allocation); per reply, swap the response batch
/// out and take the hand-back of the staging buffer. Every sent group is
/// waited for even after an error — the ring protocol's one-outstanding
/// invariant depends on it.
fn run_round_rings(
    sc: &mut Scratch,
    trace: &mut Option<PlanTrace>,
    clock: &Arc<dyn Clock>,
    ports: &mut [RingPort],
    router: &Router,
    timeout: Duration,
) -> Result<(), PlanError> {
    debug_assert!(sc.sent.is_empty());
    let hedging = router.hedging();
    let mut first_err = None;
    for oi in 0..sc.shard_order.len() {
        let s = sc.shard_order[oi];
        let r = router.pick(s);
        let port = &mut ports[router.phys(s, r)];
        if port.poisoned {
            sc.per_shard[s].clear();
            first_err = first_err.or(Some(PlanError::ShardFailed));
            continue;
        }
        let (ctx, sub_span) = trace_send(trace, clock, s);
        match port.host.ring_admit() {
            Ok(now) => {
                // Hedged: retain a copy of the group (the original buffer
                // is about to be swapped into the ring slot) and plant a
                // cancel flag the broker can flip if a duplicate wins.
                let (copy, flag) = if hedging {
                    (sc.per_shard[s].clone(), Some(Arc::new(AtomicBool::new(false))))
                } else {
                    (Vec::new(), None)
                };
                let per_shard = &mut sc.per_shard[s];
                let planted = flag.clone();
                let pushed = port.rings.req.try_push(|slot| {
                    std::mem::swap(&mut slot.subs, per_shard);
                    slot.enqueued_at = now;
                    slot.ctx = ctx;
                    slot.cancel = planted;
                });
                if pushed {
                    port.host.ring_enqueued(now, port.rings.req.len());
                    router.begin(s, r);
                    router.note_routed(clock, s, r);
                    sc.sent.push((s, r, sub_span, now));
                    if hedging {
                        sc.hedge_copies.push(copy);
                        sc.hedge_flags.push(flag);
                    }
                } else {
                    // A full request ring is the shard refusing work at
                    // its (bounded) queue: account it as a full-queue
                    // rejection, exactly like the channel-mode gate.
                    port.host.ring_reject_full(now);
                    reject_group(sc, s);
                    trace_recv(trace, clock, sub_span);
                }
            }
            Err(_reason) => {
                reject_group(sc, s);
                trace_recv(trace, clock, sub_span);
            }
        }
    }
    let delay = if hedging { sc.hedge.current() } else { Duration::ZERO };
    for si in 0..sc.sent.len() {
        let (s, r, sub_span, sent_at) = sc.sent[si];
        let p = router.phys(s, r);
        if !hedging {
            let port = &mut ports[p];
            let resp = &mut sc.resp[s];
            let hand_back = &mut sc.per_shard[s];
            let popped = port.rings.rep.pop_wait(timeout, |out| {
                std::mem::swap(&mut out.batch, resp);
                std::mem::swap(&mut out.subs, hand_back);
            });
            router.end(s, r);
            trace_recv(trace, clock, sub_span);
            if popped.is_none() {
                port.poisoned = true;
                first_err = first_err.or(Some(PlanError::ShardFailed));
            }
            // Drop the handed-back sub-queries now (releasing their payload
            // `Arc`s back to the pool deterministically) but keep the buffer.
            sc.per_shard[s].clear();
            continue;
        }
        // Hedged wait: give the primary the quantile delay first.
        let first_wait = delay.min(timeout);
        let popped = {
            let resp = &mut sc.resp[s];
            let hand_back = &mut sc.per_shard[s];
            ports[p].rings.rep.pop_wait(first_wait, |out| {
                std::mem::swap(&mut out.batch, resp);
                std::mem::swap(&mut out.subs, hand_back);
            })
        };
        if popped.is_some() {
            router.end(s, r);
            sc.hedge.record(clock.now().saturating_sub(sent_at));
            trace_recv(trace, clock, sub_span);
            sc.per_shard[s].clear();
            continue;
        }
        // Straggler: try to fire the duplicate on the next replica's own
        // ring port, charging *its* gate (incremental demand).
        let hr = (r + 1) % router.replicas;
        let hp = router.phys(s, hr);
        let mut fired_at = 0;
        let mut hedge_flag: Option<Arc<AtomicBool>> = None;
        if first_wait < timeout && !ports[hp].poisoned {
            if let Ok(now) = ports[hp].host.ring_admit() {
                let flag = Arc::new(AtomicBool::new(false));
                let copy = &mut sc.hedge_copies[si];
                let planted = Some(Arc::clone(&flag));
                let pushed = ports[hp].rings.req.try_push(|slot| {
                    std::mem::swap(&mut slot.subs, copy);
                    slot.enqueued_at = now;
                    slot.ctx = None;
                    slot.cancel = planted;
                });
                if pushed {
                    ports[hp].host.ring_enqueued(now, ports[hp].rings.req.len());
                    router.begin(s, hr);
                    router.note_hedge_fired(now, s, r, hr, delay.as_nanos() as Nanos);
                    fired_at = now;
                    hedge_flag = Some(flag);
                } else {
                    ports[hp].host.ring_reject_full(now);
                }
            }
        }
        let Some(hedge_flag) = hedge_flag else {
            // Couldn't hedge (admission refused / ring full / poisoned):
            // keep waiting on the primary like an unhedged round.
            let popped = {
                let resp = &mut sc.resp[s];
                let hand_back = &mut sc.per_shard[s];
                ports[p].rings.rep.pop_wait(timeout, |out| {
                    std::mem::swap(&mut out.batch, resp);
                    std::mem::swap(&mut out.subs, hand_back);
                })
            };
            router.end(s, r);
            trace_recv(trace, clock, sub_span);
            if popped.is_none() {
                ports[p].poisoned = true;
                first_err = first_err.or(Some(PlanError::ShardFailed));
            }
            sc.per_shard[s].clear();
            continue;
        };
        // Race: busy-poll both reply rings (the engine owns both ports, so
        // a blocking wait on one could miss the other's earlier reply).
        let deadline = fired_at + timeout.as_nanos() as Nanos;
        // 0 = pending, 1 = primary won, 2 = hedge won, 3 = timeout.
        let mut outcome = 0u8;
        while outcome == 0 {
            let got = {
                let resp = &mut sc.resp[s];
                let hand_back = &mut sc.per_shard[s];
                ports[p].rings.rep.try_pop(|out| {
                    std::mem::swap(&mut out.batch, resp);
                    std::mem::swap(&mut out.subs, hand_back);
                })
            };
            if got.is_some() {
                outcome = 1;
                break;
            }
            let got = {
                let resp = &mut sc.resp[s];
                let hand_back = &mut sc.hedge_copies[si];
                ports[hp].rings.rep.try_pop(|out| {
                    std::mem::swap(&mut out.batch, resp);
                    std::mem::swap(&mut out.subs, hand_back);
                })
            };
            if got.is_some() {
                outcome = 2;
                break;
            }
            if clock.now() >= deadline {
                outcome = 3;
                break;
            }
            std::thread::yield_now();
        }
        match outcome {
            1 => {
                // Primary won: cancel the duplicate, then drain its reply
                // (the one-outstanding ring invariant requires it; a
                // cancelled-at-dequeue loser answers immediately).
                let now = clock.now();
                hedge_flag.store(true, Ordering::Release);
                router.note_hedge_cancelled(now, s, hr);
                if let Some(pt) = trace.as_mut() {
                    pt.on_hedge_cancel(s as u16, fired_at, now);
                }
                sc.hedge.record(now.saturating_sub(sent_at));
                let drained = {
                    let batch = &mut sc.discard_batch;
                    let subs = &mut sc.discard_subs;
                    ports[hp].rings.rep.pop_wait(timeout, |out| {
                        std::mem::swap(&mut out.batch, batch);
                        std::mem::swap(&mut out.subs, subs);
                    })
                };
                sc.discard_batch.clear();
                sc.discard_subs.clear();
                if drained.is_none() {
                    ports[hp].poisoned = true;
                }
            }
            2 => {
                // Hedge won: flip the primary's planted flag and drain it.
                let now = clock.now();
                if let Some(flag) = sc.hedge_flags[si].as_ref() {
                    flag.store(true, Ordering::Release);
                }
                router.note_hedge_cancelled(now, s, r);
                if let Some(pt) = trace.as_mut() {
                    pt.on_hedge_cancel(s as u16, sent_at, now);
                }
                sc.hedge.record(now.saturating_sub(fired_at));
                let drained = {
                    let batch = &mut sc.discard_batch;
                    let subs = &mut sc.discard_subs;
                    ports[p].rings.rep.pop_wait(timeout, |out| {
                        std::mem::swap(&mut out.batch, batch);
                        std::mem::swap(&mut out.subs, subs);
                    })
                };
                sc.discard_batch.clear();
                sc.discard_subs.clear();
                if drained.is_none() {
                    ports[p].poisoned = true;
                }
            }
            _ => {
                // Neither replied within the timeout: both ports have an
                // outstanding request and can never be trusted again.
                ports[p].poisoned = true;
                ports[hp].poisoned = true;
                first_err = first_err.or(Some(PlanError::ShardFailed));
            }
        }
        router.end(s, r);
        router.end(s, hr);
        trace_recv(trace, clock, sub_span);
        sc.per_shard[s].clear();
    }
    sc.sent.clear();
    sc.hedge_copies.clear();
    sc.hedge_flags.clear();
    match first_err {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

impl<'a> Exec<'a> {
    fn new(
        port: Port<'a>,
        n_shards: usize,
        router: &'a Router,
        timeout: Duration,
        batch: bool,
        clock: &'a Arc<dyn Clock>,
    ) -> Self {
        Self {
            port,
            n_shards,
            router,
            timeout,
            batch,
            clock,
            trace: None,
            scratch: Scratch::new(n_shards),
        }
    }

    fn shard_of(&self, v: VertexId) -> usize {
        v as usize % self.n_shards
    }

    /// Begins staging a round. (Defensive clears: the buffers are already
    /// empty between rounds, including on error paths.)
    fn round_begin(&mut self) {
        let sc = &mut self.scratch;
        sc.slots.clear();
        sc.shard_order.clear();
        for s in 0..self.n_shards {
            sc.per_shard[s].clear();
            sc.tags[s].clear();
        }
    }

    /// Stages one sub-query for shard `s` in the round being built.
    fn stage(&mut self, s: usize, sub: SubQuery) {
        let sc = &mut self.scratch;
        if sc.per_shard[s].is_empty() {
            sc.shard_order.push(s);
        }
        sc.tags[s].push(tag_of(&sub));
        sc.per_shard[s].push(sub);
        sc.slots.push(s);
    }

    /// Runs the staged round: fans out per-shard groups over the port,
    /// waits every reply, then scans the per-item statuses **in staging
    /// order** — the first rejection (or error) wins, matching the old
    /// reassembly order exactly. On `Ok`, the responses are readable via
    /// [`Exec::next_list`] / [`Exec::next_count`] / [`Exec::next_scalar`].
    fn run_round(&mut self) -> Result<(), PlanError> {
        for oi in 0..self.scratch.shard_order.len() {
            let s = self.scratch.shard_order[oi];
            self.scratch.resp[s].clear();
            self.scratch.cur[s] = Cursor::default();
        }
        match &mut self.port {
            Port::Channels(clients) => run_round_channels(
                &mut self.scratch,
                &mut self.trace,
                self.clock,
                clients,
                self.router,
                self.timeout,
                self.batch,
            )?,
            Port::Rings(ports) => run_round_rings(
                &mut self.scratch,
                &mut self.trace,
                self.clock,
                ports,
                self.router,
                self.timeout,
            )?,
        }
        let sc = &mut self.scratch;
        for ii in 0..sc.slots.len() {
            let s = sc.slots[ii];
            let k = sc.cur[s].status;
            sc.cur[s].status += 1;
            match sc.resp[s].status.get(k).copied() {
                Some(RepStatus::Ok) => {}
                Some(RepStatus::Rejected) => return Err(PlanError::ShardRejected),
                // A `Cancelled` status on the winning reply would mean the
                // broker raced its own cancel — treat it like an error.
                Some(RepStatus::Error) | Some(RepStatus::Cancelled) | None => {
                    return Err(PlanError::ShardFailed)
                }
            }
        }
        Ok(())
    }

    /// The next unread neighbor list from shard `s`'s response.
    fn next_list(&mut self, s: usize) -> Result<&[VertexId], PlanError> {
        let i = self.scratch.cur[s].list;
        self.scratch.cur[s].list += 1;
        self.scratch.resp[s].lists.get(i).ok_or(PlanError::ShardFailed)
    }

    /// The next unread degree count from shard `s`'s response.
    fn next_count(&mut self, s: usize) -> Result<u32, PlanError> {
        let i = self.scratch.cur[s].count;
        self.scratch.cur[s].count += 1;
        self.scratch.resp[s]
            .counts
            .get(i)
            .copied()
            .ok_or(PlanError::ShardFailed)
    }

    /// The next unread scalar (flag / intersection count) from shard `s`.
    fn next_scalar(&mut self, s: usize) -> Result<u64, PlanError> {
        let i = self.scratch.cur[s].scalar;
        self.scratch.cur[s].scalar += 1;
        self.scratch.resp[s]
            .scalars
            .get(i)
            .copied()
            .ok_or(PlanError::ShardFailed)
    }

    fn degree(&mut self, v: VertexId) -> Result<u64, PlanError> {
        let s = self.shard_of(v);
        self.round_begin();
        self.stage(s, SubQuery::Degree(v));
        self.run_round()?;
        Ok(self.next_count(s)? as u64)
    }

    fn has_edge(&mut self, u: VertexId, v: VertexId) -> Result<bool, PlanError> {
        let s = self.shard_of(u);
        self.round_begin();
        self.stage(s, SubQuery::HasEdge(u, v));
        self.run_round()?;
        Ok(self.next_scalar(s)? != 0)
    }

    /// Runs a one-vertex `Neighbors` round; the list is readable (borrowed
    /// from the response buffer, no copy) via `next_list(s)` for the
    /// returned shard `s`.
    fn neighbors_round(&mut self, v: VertexId) -> Result<usize, PlanError> {
        let s = self.shard_of(v);
        self.round_begin();
        self.stage(s, SubQuery::Neighbors(v));
        self.run_round()?;
        Ok(s)
    }

    /// `Neighbors` round with the list copied into a caller buffer (for
    /// plans that need it across later rounds).
    fn neighbors_into(&mut self, v: VertexId, out: &mut Vec<VertexId>) -> Result<(), PlanError> {
        let s = self.neighbors_round(v)?;
        out.clear();
        let list = self.next_list(s)?;
        out.extend_from_slice(list);
        Ok(())
    }

    /// Both neighbor lists in one parallel round (one batch when both
    /// vertices live on the same shard), copied into caller buffers.
    fn neighbors_pair_into(
        &mut self,
        u: VertexId,
        v: VertexId,
        nu: &mut Vec<VertexId>,
        nv: &mut Vec<VertexId>,
    ) -> Result<(), PlanError> {
        let su = self.shard_of(u);
        let sv = self.shard_of(v);
        self.round_begin();
        self.stage(su, SubQuery::Neighbors(u));
        self.stage(sv, SubQuery::Neighbors(v));
        self.run_round()?;
        nu.clear();
        nu.extend_from_slice(self.next_list(su)?);
        nv.clear();
        nv.extend_from_slice(self.next_list(sv)?);
        Ok(())
    }

    /// One communication round: neighbor lists for every frontier vertex,
    /// grouped per owning shard (one `NeighborsMany` each, sharing a
    /// pooled payload buffer) and issued in parallel. Calls `each` once
    /// per frontier vertex, **in frontier order**, with that vertex's
    /// neighbor list — the lists stay in the round's flattened response
    /// buffers, so no per-vertex `Vec` is ever materialized broker-side.
    fn for_each_neighbors<F: FnMut(&[VertexId])>(
        &mut self,
        frontier: &[VertexId],
        mut each: F,
    ) -> Result<(), PlanError> {
        self.round_begin();
        self.stage_many(frontier, SubTag::NeighborsMany);
        self.run_round()?;
        let batched = self.batch;
        for &v in frontier {
            let s = self.shard_of(v);
            let list = self.next_list(s)?;
            if batched {
                each(list);
            } else {
                // The pre-batching response format carried one `Vec` per
                // frontier vertex; the fallback re-materializes that
                // per-vertex allocation so the datapath bench's "before"
                // keeps the old allocation profile.
                let owned = list.to_vec();
                each(&owned);
            }
        }
        Ok(())
    }

    /// One `DegreeMany` round over `vs`; read back with
    /// `next_count(shard_of(v))` in `vs` order.
    fn degrees_many_round(&mut self, vs: &[VertexId]) -> Result<(), PlanError> {
        self.round_begin();
        self.stage_many(vs, SubTag::DegreeMany);
        self.run_round()
    }

    /// Groups `vs` per owning shard and stages one `*Many` sub-query per
    /// non-empty group, each carrying a pooled payload buffer. The
    /// grouping is a two-pass counting fill into one flat buffer —
    /// count per shard, prefix-sum into ranges, place each vertex at its
    /// shard's cursor — so staging order within a shard preserves `vs`
    /// order (the read-back contract) without per-shard Vecs.
    fn stage_many(&mut self, vs: &[VertexId], tag: SubTag) {
        let mut ids = std::mem::take(&mut self.scratch.group_ids);
        let mut starts = std::mem::take(&mut self.scratch.group_starts);
        let mut ends = std::mem::take(&mut self.scratch.group_ends);
        ids.clear();
        ids.resize(vs.len(), 0);
        ends.iter_mut().for_each(|e| *e = 0);
        for &v in vs {
            ends[self.shard_of(v)] += 1;
        }
        let mut acc = 0usize;
        for s in 0..ends.len() {
            let count = ends[s];
            starts[s] = acc;
            // `ends[s]` doubles as shard s's fill cursor until the
            // placement pass completes it back into the exclusive end.
            ends[s] = acc;
            acc += count;
        }
        for &v in vs {
            let s = self.shard_of(v);
            ids[ends[s]] = v;
            ends[s] += 1;
        }
        for s in 0..starts.len() {
            let g = &ids[starts[s]..ends[s]];
            if g.is_empty() {
                continue;
            }
            let mut payload = self.scratch.acquire_payload();
            Arc::get_mut(&mut payload)
                .expect("pooled payload is unshared")
                .extend_from_slice(g);
            let sub = match tag {
                SubTag::NeighborsMany => SubQuery::NeighborsMany(Arc::clone(&payload)),
                SubTag::DegreeMany => SubQuery::DegreeMany(Arc::clone(&payload)),
                _ => unreachable!("stage_many is only for *Many sub-queries"),
            };
            self.scratch.payloads.push(payload);
            self.stage(s, sub);
        }
        self.scratch.group_ids = ids;
        self.scratch.group_starts = starts;
        self.scratch.group_ends = ends;
    }
}

/// Replaces a shared (`Arc`) payload with a freshly-allocated copy. The
/// unbatched fallback sends this instead of sharing, reproducing the
/// per-sub-query payload clones of the pre-batching data path.
fn deep_copy_payload(sub: SubQuery) -> SubQuery {
    match sub {
        SubQuery::NeighborsMany(ids) => SubQuery::NeighborsMany(Arc::new(ids.to_vec())),
        SubQuery::DegreeMany(ids) => SubQuery::DegreeMany(Arc::new(ids.to_vec())),
        SubQuery::CountIntersect(v, ids) => SubQuery::CountIntersect(v, Arc::new(ids.to_vec())),
        other => other,
    }
}

fn execute_plan(exec: &mut Exec<'_>, q: Query) -> Result<u64, PlanError> {
    match q.kind {
        QueryKind::Qt1Degree => exec.degree(q.u),
        QueryKind::Qt2EdgeExists => Ok(exec.has_edge(q.u, q.v)? as u64),
        QueryKind::Qt3NeighborsPage => {
            let s = exec.neighbors_round(q.u)?;
            let n = exec.next_list(s)?;
            Ok(n.len().min(PAGE) as u64)
        }
        QueryKind::Qt4NeighborsFull => {
            let s = exec.neighbors_round(q.u)?;
            let n = exec.next_list(s)?;
            // Broker-side post-processing: checksum the full list.
            let checksum: u64 = n
                .iter()
                .fold(0u64, |acc, &v| acc.wrapping_mul(31).wrapping_add(v as u64));
            Ok(n.len() as u64 ^ (checksum & 0xFF)) // len dominates; checksum folds in
        }
        QueryKind::Qt5MutualCount => {
            let mut nu = std::mem::take(&mut exec.scratch.nu);
            let mut nv = std::mem::take(&mut exec.scratch.nv);
            let prep = exec.neighbors_pair_into(q.u, q.v, &mut nu, &mut nv);
            let result = prep.map(|()| sorted_intersection_count(&nu, &nv));
            exec.scratch.nu = nu;
            exec.scratch.nv = nv;
            result
        }
        QueryKind::Qt6NeighborDegrees => {
            let mut sample = std::mem::take(&mut exec.scratch.frontier);
            sample.clear();
            let prep = exec.neighbors_round(q.u).and_then(|s| {
                let n = exec.next_list(s)?;
                sample.extend(n.iter().copied().take(DEGREE_SAMPLE));
                Ok(())
            });
            let result = prep.and_then(|()| {
                if sample.is_empty() {
                    return Ok(0);
                }
                exec.degrees_many_round(&sample)?;
                let mut sum = 0u64;
                for &v in &sample {
                    let s = exec.shard_of(v);
                    sum += exec.next_count(s)? as u64;
                }
                Ok(sum)
            });
            exec.scratch.frontier = sample;
            result
        }
        QueryKind::Qt7TwoHopCount => {
            let mut frontier = std::mem::take(&mut exec.scratch.frontier);
            let mut seen = std::mem::take(&mut exec.scratch.seen);
            seen.clear();
            let result = exec.neighbors_into(q.u, &mut frontier).and_then(|()| {
                frontier.truncate(TWO_HOP_CAP);
                if frontier.is_empty() {
                    return Ok(0);
                }
                exec.for_each_neighbors(&frontier, |list| seen.extend(list.iter().copied()))?;
                seen.remove(&q.u);
                Ok(seen.len() as u64)
            });
            exec.scratch.frontier = frontier;
            exec.scratch.seen = seen;
            result
        }
        QueryKind::Qt8TriangleCount => {
            // One shared, reference-counted neighbor list: every shard's
            // intersection sub-query borrows the same (pooled) allocation
            // instead of cloning the full list per target.
            let mut nu = std::mem::take(&mut exec.scratch.nu);
            let result = exec.neighbors_into(q.u, &mut nu).and_then(|()| {
                let mut payload = exec.scratch.acquire_payload();
                Arc::get_mut(&mut payload)
                    .expect("pooled payload is unshared")
                    .extend_from_slice(&nu);
                exec.round_begin();
                for &w in nu.iter().take(TRIANGLE_CAP) {
                    let s = exec.shard_of(w);
                    exec.stage(s, SubQuery::CountIntersect(w, Arc::clone(&payload)));
                }
                exec.scratch.payloads.push(payload);
                exec.run_round()?;
                let mut total = 0u64;
                for &w in nu.iter().take(TRIANGLE_CAP) {
                    let s = exec.shard_of(w);
                    total += exec.next_scalar(s)?;
                }
                Ok(total / 2) // each triangle counted from both endpoints
            });
            exec.scratch.nu = nu;
            result
        }
        QueryKind::Qt9CommonNetwork => {
            let mut nu = std::mem::take(&mut exec.scratch.nu);
            let mut nv = std::mem::take(&mut exec.scratch.nv);
            let mut network_u = std::mem::take(&mut exec.scratch.seen);
            let mut network_v = std::mem::take(&mut exec.scratch.seen2);
            network_u.clear();
            network_v.clear();
            let result = exec
                .neighbors_pair_into(q.u, q.v, &mut nu, &mut nv)
                .and_then(|()| {
                    nu.truncate(COMMON_CAP);
                    nv.truncate(COMMON_CAP);
                    if !nu.is_empty() {
                        exec.for_each_neighbors(&nu, |list| {
                            network_u.extend(list.iter().copied())
                        })?;
                    }
                    let mut overlap = 0u64;
                    if !nv.is_empty() {
                        exec.for_each_neighbors(&nv, |list| {
                            for &w in list {
                                if network_v.insert(w) && network_u.contains(&w) {
                                    overlap += 1;
                                }
                            }
                        })?;
                    }
                    Ok(overlap)
                });
            exec.scratch.nu = nu;
            exec.scratch.nv = nv;
            exec.scratch.seen = network_u;
            exec.scratch.seen2 = network_v;
            result
        }
        QueryKind::Qt10Distance3 => bfs_distance(exec, q.u, q.v, 3, BFS3_CAP),
        QueryKind::Qt11Distance4 => bfs_distance(exec, q.u, q.v, 4, BFS4_CAP),
    }
}

/// Bounded breadth-first distance search: one communication round per hop,
/// exactly the multi-round broker/shard interaction of §5.1.
fn bfs_distance(
    exec: &mut Exec<'_>,
    from: VertexId,
    to: VertexId,
    max_hops: u32,
    frontier_cap: usize,
) -> Result<u64, PlanError> {
    if from == to {
        return Ok(0);
    }
    let mut visited = std::mem::take(&mut exec.scratch.seen);
    let mut frontier = std::mem::take(&mut exec.scratch.frontier);
    let mut next = std::mem::take(&mut exec.scratch.next);
    visited.clear();
    frontier.clear();
    visited.insert(from);
    frontier.push(from);
    let mut result = Ok(u64::MAX);
    for hop in 1..=max_hops {
        frontier.truncate(frontier_cap);
        next.clear();
        let mut found = false;
        let round = exec.for_each_neighbors(&frontier, |list| {
            if found {
                return;
            }
            for &w in list {
                if w == to {
                    found = true;
                    return;
                }
                if visited.insert(w) {
                    next.push(w);
                }
            }
        });
        if let Err(e) = round {
            result = Err(e);
            break;
        }
        if found {
            result = Ok(hop as u64);
            break;
        }
        if next.is_empty() {
            break;
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    exec.scratch.seen = visited;
    exec.scratch.frontier = frontier;
    exec.scratch.next = next;
    result
}

/// `|a ∩ b|` for sorted slices: the broker-local fallback rides the same
/// adaptive merge/gallop kernel as the shard `CountIntersect` path.
fn sorted_intersection_count(a: &[VertexId], b: &[VertexId]) -> u64 {
    crate::graph::intersect_count(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, GraphConfig};
    use crate::shard::{ShardConfig, ShardHost};
    use crate::transport::InProcShardClient;
    use bouncer_core::policy::AlwaysAccept;
    use bouncer_metrics::MonotonicClock;

    fn mini_cluster(n_shards: usize) -> (Graph, Vec<Arc<ShardHost>>, Arc<Broker>) {
        let g = Graph::generate(&GraphConfig {
            vertices: 2_000,
            edges_per_vertex: 4,
            seed: 21,
        });
        let clock: Arc<MonotonicClock> = Arc::new(MonotonicClock::new());
        let hosts: Vec<Arc<ShardHost>> = (0..n_shards)
            .map(|s| {
                ShardHost::spawn(
                    Arc::new(g.shard_slice(s, n_shards)),
                    Arc::new(AlwaysAccept::new()),
                    clock.clone(),
                    ShardConfig::default(),
                )
            })
            .collect();
        let clients: Vec<Arc<dyn ShardClient>> = hosts
            .iter()
            .map(|h| Arc::new(InProcShardClient::new(Arc::clone(h))) as Arc<dyn ShardClient>)
            .collect();
        let broker = Broker::spawn(
            clients,
            Arc::new(AlwaysAccept::new()),
            clock,
            BrokerConfig::default(),
        );
        (g, hosts, broker)
    }

    fn teardown(hosts: Vec<Arc<ShardHost>>, broker: Arc<Broker>) {
        broker.shutdown();
        for h in hosts {
            h.shutdown();
        }
    }

    #[test]
    fn degree_and_edge_queries_match_graph() {
        let (g, hosts, broker) = mini_cluster(4);
        for u in [0u32, 7, 100, 999] {
            let got = broker.execute(Query {
                kind: QueryKind::Qt1Degree,
                u,
                v: 0,
            });
            assert_eq!(got, ClientOutcome::Ok(g.degree(u) as u64));
        }
        let u = 10;
        let v = g.neighbors(u)[0];
        assert_eq!(
            broker.execute(Query {
                kind: QueryKind::Qt2EdgeExists,
                u,
                v
            }),
            ClientOutcome::Ok(1)
        );
        teardown(hosts, broker);
    }

    #[test]
    fn mutual_count_matches_bruteforce() {
        let (g, hosts, broker) = mini_cluster(4);
        let u = 5;
        let v = 6;
        let expected = g
            .neighbors(u)
            .iter()
            .filter(|n| g.neighbors(v).binary_search(n).is_ok())
            .count() as u64;
        assert_eq!(
            broker.execute(Query {
                kind: QueryKind::Qt5MutualCount,
                u,
                v
            }),
            ClientOutcome::Ok(expected)
        );
        teardown(hosts, broker);
    }

    #[test]
    fn two_hop_count_matches_bruteforce() {
        let (g, hosts, broker) = mini_cluster(3);
        let u = 50;
        // Brute force with the same cap semantics.
        let frontier: Vec<u32> = g.neighbors(u).iter().copied().take(TWO_HOP_CAP).collect();
        let mut seen: HashSet<u32> = HashSet::new();
        for &w in &frontier {
            seen.extend(g.neighbors(w).iter().copied());
        }
        seen.remove(&u);
        assert_eq!(
            broker.execute(Query {
                kind: QueryKind::Qt7TwoHopCount,
                u,
                v: 0
            }),
            ClientOutcome::Ok(seen.len() as u64)
        );
        teardown(hosts, broker);
    }

    #[test]
    fn bfs_distance_finds_neighbors_at_hop_one() {
        let (g, hosts, broker) = mini_cluster(4);
        let u = 30;
        let v = g.neighbors(u)[0];
        assert_eq!(
            broker.execute(Query {
                kind: QueryKind::Qt10Distance3,
                u,
                v
            }),
            ClientOutcome::Ok(1)
        );
        assert_eq!(
            broker.execute(Query {
                kind: QueryKind::Qt11Distance4,
                u,
                v
            }),
            ClientOutcome::Ok(1)
        );
        teardown(hosts, broker);
    }

    #[test]
    fn bfs_distance_two_for_neighbor_of_neighbor() {
        let (g, hosts, broker) = mini_cluster(2);
        // Find a vertex at exact distance 2 from u: neighbor-of-neighbor
        // that is not a direct neighbor.
        let u = 40;
        let mut target = None;
        'outer: for &w in g.neighbors(u) {
            for &x in g.neighbors(w) {
                if x != u && g.neighbors(u).binary_search(&x).is_err() {
                    target = Some(x);
                    break 'outer;
                }
            }
        }
        let v = target.expect("graph should have a 2-hop vertex");
        assert_eq!(
            broker.execute(Query {
                kind: QueryKind::Qt10Distance3,
                u,
                v
            }),
            ClientOutcome::Ok(2)
        );
        teardown(hosts, broker);
    }

    #[test]
    fn all_query_kinds_execute_successfully() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let (g, hosts, broker) = mini_cluster(4);
        let mut rng = SmallRng::seed_from_u64(77);
        for kind in QueryKind::ALL {
            for _ in 0..5 {
                let q = Query::random(kind, g.vertex_count(), &mut rng);
                match broker.execute(q) {
                    ClientOutcome::Ok(_) => {}
                    other => panic!("{kind:?} -> {other:?}"),
                }
            }
        }
        let snap = broker.stats().snapshot(1, broker.parallelism());
        assert_eq!(
            snap.per_type.iter().map(|t| t.completed).sum::<u64>(),
            55
        );
        teardown(hosts, broker);
    }

    #[test]
    fn broker_rejection_is_early() {
        let (g, hosts, _ignored) = mini_cluster(2);
        let clients: Vec<Arc<dyn ShardClient>> = hosts
            .iter()
            .map(|h| Arc::new(InProcShardClient::new(Arc::clone(h))) as Arc<dyn ShardClient>)
            .collect();
        // A broker whose policy rejects everything after the queue holds 0
        // entries (MaxQL(1) with an engine that we keep busy is racy; use a
        // 0-capacity gate via max_queue_len=0 instead).
        let broker = Broker::spawn(
            clients,
            Arc::new(AlwaysAccept::new()),
            Arc::new(MonotonicClock::new()),
            BrokerConfig {
                engines: 1,
                max_queue_len: Some(0),
                ..BrokerConfig::default()
            },
        );
        // With a zero-length queue every offer is rejected as QueueFull.
        let out = broker.execute(Query {
            kind: QueryKind::Qt1Degree,
            u: 0,
            v: 0,
        });
        assert_eq!(out, ClientOutcome::Rejected(RejectReason::QueueFull));
        let _ = g;
        teardown(hosts, broker);
    }

    #[test]
    fn shutdown_joins_engines_even_with_extra_arc_clones() {
        let (_g, hosts, broker) = mini_cluster(2);
        assert_eq!(
            broker.engines_running(),
            BrokerConfig::default().engines as usize
        );
        // Keep extra strong references alive across shutdown — the seed's
        // `Arc::get_mut` guard silently skipped the joins in this case.
        let extra_broker = Arc::clone(&broker);
        let extra_hosts: Vec<_> = hosts.iter().map(Arc::clone).collect();
        teardown(hosts, broker);
        assert_eq!(extra_broker.engines_running(), 0);
        for h in &extra_hosts {
            assert_eq!(h.engines_running(), 0);
        }
        // Idempotent: a second shutdown finds nothing left to join.
        extra_broker.shutdown();
        assert_eq!(extra_broker.engines_running(), 0);
    }

    #[test]
    fn sorted_intersection_counts() {
        assert_eq!(sorted_intersection_count(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(sorted_intersection_count(&[], &[1]), 0);
        assert_eq!(sorted_intersection_count(&[5], &[5]), 1);
    }

    #[test]
    fn registry_and_type_ids_line_up() {
        let reg = liquid_registry();
        assert_eq!(reg.len(), 12);
        for kind in QueryKind::ALL {
            let ty = kind_type_id(kind);
            assert_eq!(reg.name(ty), kind.name());
        }
    }
}
