//! The brokers' network front door.
//!
//! LIquid's "broker hosts offer REST endpoints for clients to send query
//! requests" (§5.1); here the equivalent entry point speaks the same
//! length-prefixed binary protocol as the shard tier, so external processes
//! can drive a cluster over real sockets end to end. Early rejections
//! travel back as a dedicated status byte, giving remote clients the same
//! fail-fast signal in-process callers get (§2).

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use bouncer_core::obs::{
    new_span_id, new_trace_id, SpanId, SpanKind, SpanStatus, TraceContext, TraceId, Tracer,
};
use bouncer_metrics::{Clock, Nanos};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::broker::{Broker, ClientOutcome};
use crate::query::Query;
use crate::wire::{
    begin_frame, decode_query, decode_query_reply, encode_query_into, encode_query_reply_into,
    end_frame, read_frame_into, BufferPool, Status,
};

/// Serves a broker over TCP.
pub struct TcpBrokerServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl TcpBrokerServer {
    /// Binds `addr` (port 0 for ephemeral) and starts serving `broker`.
    pub fn serve(broker: Arc<Broker>, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        std::thread::Builder::new()
            .name(format!("broker-listener-{addr}"))
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    match stream {
                        Ok(stream) => spawn_connection(Arc::clone(&broker), stream),
                        Err(_) => break,
                    }
                }
            })?;
        Ok(Self { addr, stop })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
    }
}

fn spawn_connection(broker: Arc<Broker>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    type PendingReply = (u64, Receiver<ClientOutcome>);
    let (tx, rx): (Sender<PendingReply>, Receiver<PendingReply>) = unbounded();

    std::thread::spawn(move || {
        let tracer = broker.tracer().cloned();
        let mut scratch = Vec::new();
        while let Ok(n) = read_frame_into(&mut read_half, &mut scratch) {
            // Stamp before decoding so the front-dispatch span covers the
            // decode itself; the clock read only happens when tracing.
            let t0 = tracer.as_ref().map(|_| broker.clock().now());
            match decode_query(&scratch[..n]) {
                Ok((id, query, ctx)) => {
                    let ctx = match (&tracer, ctx) {
                        // A sampled incoming context: record this hop and
                        // re-parent the broker under it.
                        (Some(tracer), Some(ctx)) if ctx.sampled => {
                            let span = tracer.emit_span(
                                ctx.trace,
                                SpanKind::FrontDispatch,
                                ctx.parent,
                                t0.unwrap_or_default(),
                                broker.clock().now(),
                            );
                            Some(TraceContext {
                                trace: ctx.trace,
                                parent: span,
                                sampled: true,
                            })
                        }
                        (_, ctx) => ctx,
                    };
                    let outcome_rx = broker.submit_with_ctx(query, ctx);
                    if tx.send((id, outcome_rx)).is_err() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    });

    let mut write_half = stream;
    std::thread::spawn(move || {
        // One reusable frame buffer: replies are fixed-size, so this loop
        // stops allocating after the first reply.
        let mut frame = Vec::new();
        for (id, outcome_rx) in rx.iter() {
            let (status, value) = match outcome_rx.recv() {
                Ok(ClientOutcome::Ok(v)) => (Status::Ok, v),
                Ok(ClientOutcome::Rejected(_)) | Ok(ClientOutcome::ShardRejected) => {
                    (Status::Rejected, 0)
                }
                Ok(ClientOutcome::Expired) | Ok(ClientOutcome::Failed) | Err(_) => {
                    (Status::Error, 0)
                }
            };
            frame.clear();
            let start = begin_frame(&mut frame);
            encode_query_reply_into(&mut frame, id, status, value);
            end_frame(&mut frame, start);
            if write_half.write_all(&frame).is_err() || write_half.flush().is_err() {
                break;
            }
        }
    });
}

/// Outcome of a remotely executed query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteOutcome {
    /// Serviced; scalar result.
    Ok(u64),
    /// Rejected by admission control (broker or shard tier).
    Rejected,
    /// Failed, expired, or transport error.
    Error,
}

/// The client-side root span of an in-flight traced query: emitted when the
/// reply lands (or the connection dies).
type ClientSpan = (TraceId, SpanId, Nanos);

type Pending = Arc<Mutex<HashMap<u64, (Sender<RemoteOutcome>, Option<ClientSpan>)>>>;

/// The tracer plus the clock the client's [`SpanKind::Client`] root spans
/// are stamped with. For timestamps comparable with the server's spans, the
/// clock must be shared with the broker (same-epoch [`MonotonicClock`]);
/// otherwise only the client spans' durations are meaningful.
///
/// [`MonotonicClock`]: bouncer_metrics::MonotonicClock
type TraceHandles = (Arc<Tracer>, Arc<dyn Clock>);

struct FrontConn {
    writer: Mutex<TcpStream>,
    pending: Pending,
}

/// TCP client to a broker front door, multiplexing over a connection pool.
pub struct TcpBrokerClient {
    conns: Vec<FrontConn>,
    next_conn: AtomicUsize,
    next_id: AtomicU64,
    trace: Option<TraceHandles>,
    /// Recycled encode buffers for submitter threads (see [`BufferPool`]).
    pool: Arc<BufferPool>,
}

impl TcpBrokerClient {
    /// Opens `connections` sockets to a broker server.
    pub fn connect(addr: SocketAddr, connections: usize) -> std::io::Result<Self> {
        Self::connect_inner(addr, connections, None)
    }

    /// Like [`TcpBrokerClient::connect`], minting a trace per submission
    /// (subject to `tracer`'s head sampling) and emitting a
    /// [`SpanKind::Client`] root span when each reply lands. The trace
    /// context travels to the server as the versioned trailing wire field.
    pub fn connect_traced(
        addr: SocketAddr,
        connections: usize,
        tracer: Arc<Tracer>,
        clock: Arc<dyn Clock>,
    ) -> std::io::Result<Self> {
        Self::connect_inner(addr, connections, Some((tracer, clock)))
    }

    fn connect_inner(
        addr: SocketAddr,
        connections: usize,
        trace: Option<TraceHandles>,
    ) -> std::io::Result<Self> {
        assert!(connections > 0);
        let mut conns = Vec::with_capacity(connections);
        for _ in 0..connections {
            let stream = TcpStream::connect(addr)?;
            let _ = stream.set_nodelay(true);
            let pending: Pending = Arc::new(Mutex::new(HashMap::new()));
            let mut read_half = stream.try_clone()?;
            let reader_pending = Arc::clone(&pending);
            let reader_trace = trace.clone();
            std::thread::spawn(move || {
                let mut scratch = Vec::new();
                while let Ok(n) = read_frame_into(&mut read_half, &mut scratch) {
                    let Ok((id, status, value)) = decode_query_reply(&scratch[..n]) else {
                        break;
                    };
                    let Some((tx, span)) = reader_pending.lock().remove(&id) else {
                        continue;
                    };
                    let outcome = match status {
                        Status::Ok => RemoteOutcome::Ok(value),
                        Status::Rejected => RemoteOutcome::Rejected,
                        // Cancellation is a broker↔shard affair; a client
                        // query never resolves as cancelled, so treat a
                        // stray status as a failure.
                        Status::Error | Status::Cancelled => RemoteOutcome::Error,
                    };
                    emit_client_root(&reader_trace, span, client_status(outcome));
                    let _ = tx.send(outcome);
                }
                // Connection gone: fail everything still pending.
                for (_, (tx, span)) in reader_pending.lock().drain() {
                    emit_client_root(&reader_trace, span, SpanStatus::Failed);
                    let _ = tx.send(RemoteOutcome::Error);
                }
            });
            conns.push(FrontConn {
                writer: Mutex::new(stream),
                pending,
            });
        }
        Ok(Self {
            conns,
            next_conn: AtomicUsize::new(0),
            next_id: AtomicU64::new(1),
            trace,
            pool: BufferPool::for_transport(),
        })
    }

    /// The client's encode-buffer pool, for observability snapshots.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Sends a query; the channel yields its outcome.
    pub fn submit(&self, query: Query) -> Receiver<RemoteOutcome> {
        let (tx, rx) = bounded(1);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let conn =
            &self.conns[self.next_conn.fetch_add(1, Ordering::Relaxed) % self.conns.len()];
        let span: Option<ClientSpan> = self.trace.as_ref().and_then(|(tracer, clock)| {
            tracer
                .head_decision()
                .then(|| (new_trace_id(), new_span_id(), clock.now()))
        });
        conn.pending.lock().insert(id, (tx, span));
        let ctx = span.map(|(trace, parent, _)| TraceContext {
            trace,
            parent,
            sampled: true,
        });
        let mut frame = self.pool.get();
        let start = begin_frame(&mut frame);
        encode_query_into(&mut frame, id, &query, ctx.as_ref());
        end_frame(&mut frame, start);
        let mut writer = conn.writer.lock();
        let result = writer.write_all(&frame).and_then(|_| writer.flush());
        drop(writer);
        if result.is_err() {
            if let Some((tx, span)) = conn.pending.lock().remove(&id) {
                emit_client_root(&self.trace, span, SpanStatus::Failed);
                let _ = tx.send(RemoteOutcome::Error);
            }
        }
        rx
    }

    /// Sends a query and waits for its outcome.
    pub fn execute(&self, query: Query) -> RemoteOutcome {
        self.submit(query).recv().unwrap_or(RemoteOutcome::Error)
    }
}

/// The root-span status a remote outcome maps to.
fn client_status(outcome: RemoteOutcome) -> SpanStatus {
    match outcome {
        RemoteOutcome::Ok(_) => SpanStatus::Ok,
        RemoteOutcome::Rejected => SpanStatus::Rejected,
        RemoteOutcome::Error => SpanStatus::Failed,
    }
}

/// Closes a pending submission's [`SpanKind::Client`] root, if it has one.
fn emit_client_root(trace: &Option<TraceHandles>, span: Option<ClientSpan>, status: SpanStatus) {
    if let (Some((tracer, clock)), Some((trace_id, span_id, start))) = (trace, span) {
        tracer.emit_root(
            trace_id,
            span_id,
            SpanKind::Client,
            None,
            start,
            clock.now(),
            status,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::BrokerConfig;
    use crate::graph::{Graph, GraphConfig};
    use crate::query::QueryKind;
    use crate::shard::{ShardConfig, ShardHost};
    use crate::transport::{InProcShardClient, ShardClient};
    use bouncer_core::policy::{AlwaysAccept, MaxQueueLength};
    use bouncer_metrics::MonotonicClock;

    fn serve_cluster(
        broker_policy: Arc<dyn bouncer_core::policy::AdmissionPolicy>,
    ) -> (Graph, Arc<ShardHost>, Arc<Broker>, TcpBrokerServer) {
        let g = Graph::generate(&GraphConfig {
            vertices: 2_000,
            edges_per_vertex: 4,
            seed: 8,
        });
        let clock: Arc<MonotonicClock> = Arc::new(MonotonicClock::new());
        let shard = ShardHost::spawn(
            Arc::new(g.shard_slice(0, 1)),
            Arc::new(AlwaysAccept::new()),
            clock.clone(),
            ShardConfig::default(),
        );
        let clients: Vec<Arc<dyn ShardClient>> =
            vec![Arc::new(InProcShardClient::new(Arc::clone(&shard)))];
        let broker = Broker::spawn(clients, broker_policy, clock, BrokerConfig::default());
        let server = TcpBrokerServer::serve(Arc::clone(&broker), "127.0.0.1:0").unwrap();
        (g, shard, broker, server)
    }

    #[test]
    fn remote_queries_round_trip() {
        let (g, shard, broker, server) = serve_cluster(Arc::new(AlwaysAccept::new()));
        let client = TcpBrokerClient::connect(server.addr(), 2).unwrap();
        for u in [1u32, 50, 500] {
            let got = client.execute(Query {
                kind: QueryKind::Qt1Degree,
                u,
                v: 0,
            });
            assert_eq!(got, RemoteOutcome::Ok(g.degree(u) as u64));
        }
        server.stop();
        broker.shutdown();
        shard.shutdown();
    }

    #[test]
    fn remote_rejections_carry_the_status() {
        // Broker queue capacity 0 via MaxQL(1) + an engine kept busy is
        // racy; instead reject everything with a zero-length queue policy:
        // MaxQL(1) with one query parked is equivalent — simplest reliable
        // rejection is a queue length limit of 1 with a slow first query.
        // Here: AlwaysAccept but zero-length gate is internal; use MaxQL(1)
        // then burst and expect at least one rejection.
        let (_g, shard, broker, server) = serve_cluster(Arc::new(MaxQueueLength::new(1)));
        let client = TcpBrokerClient::connect(server.addr(), 2).unwrap();
        let receivers: Vec<_> = (0..64)
            .map(|u| {
                client.submit(Query {
                    kind: QueryKind::Qt11Distance4,
                    u,
                    v: u + 1,
                })
            })
            .collect();
        let outcomes: Vec<_> = receivers.into_iter().map(|rx| rx.recv().unwrap()).collect();
        assert!(outcomes.iter().any(|o| matches!(o, RemoteOutcome::Ok(_))));
        assert!(outcomes.contains(&RemoteOutcome::Rejected));
        server.stop();
        broker.shutdown();
        shard.shutdown();
    }

    #[test]
    fn concurrent_remote_clients_multiplex() {
        let (g, shard, broker, server) = serve_cluster(Arc::new(AlwaysAccept::new()));
        let client = Arc::new(TcpBrokerClient::connect(server.addr(), 3).unwrap());
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let client = Arc::clone(&client);
                let g = &g;
                scope.spawn(move || {
                    for i in 0..50u32 {
                        let u = (t * 50 + i) % 2_000;
                        let got = client.execute(Query {
                            kind: QueryKind::Qt1Degree,
                            u,
                            v: 0,
                        });
                        assert_eq!(got, RemoteOutcome::Ok(g.degree(u) as u64));
                    }
                });
            }
        });
        server.stop();
        broker.shutdown();
        shard.shutdown();
    }
}
