//! The in-memory graph store and its synthetic generator.
//!
//! LIquid serves LinkedIn's Economic Graph; we substitute a synthetic
//! social-style graph grown by preferential attachment (Barabási–Albert),
//! whose power-law degree distribution gives per-query work the same
//! heavy-tailed spread that makes per-type processing-time distributions
//! lognormal-ish in production (§5.3). The graph is partitioned across
//! shards by vertex id, like LIquid "breaks up the graph into multiple data
//! shards and assigns them to separate shard hosts".
//!
//! Storage is compressed sparse row ([`CsrGraph`]): one flat `offsets`
//! array plus one flat `targets` array, built by a two-pass counting build
//! (degree count → prefix sum → fill) parallelized across worker threads.
//! Each shard's slice is a sub-CSR with owned vertices remapped to dense
//! local indices — no per-vertex clones at cluster startup. The legacy
//! `Vec<Vec<VertexId>>` storage survives only as [`reference::VecGraph`],
//! the proptest/bench baseline (a CI grep gate bans it everywhere else).
//! See DESIGN.md S37.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Vertex identifier.
pub type VertexId = u32;

/// Heap bookkeeping charged per live allocation when the graph structures
/// report their footprint: the allocator's per-chunk header (16 bytes for
/// glibc malloc). One-allocation-per-vertex storage pays it n times; CSR
/// pays it twice. Declared here so [`GraphStats`] and the `graph_scale`
/// bench price both layouts with the same formula (ADR-001).
pub const ALLOC_CHUNK_OVERHEAD: usize = 16;

/// Synthetic graph parameters.
#[derive(Debug, Clone)]
pub struct GraphConfig {
    /// Number of vertices.
    pub vertices: u32,
    /// Edges attached per new vertex (preferential attachment `m`).
    pub edges_per_vertex: u32,
    /// Generator seed.
    pub seed: u64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        Self {
            vertices: 200_000,
            edges_per_vertex: 10,
            seed: 0x11D,
        }
    }
}

/// Storage summary for a built graph: what the structure holds and what it
/// costs. `bytes_per_edge` is heap bytes (including
/// [`ALLOC_CHUNK_OVERHEAD`] per live allocation) divided by stored
/// adjacency entries (2× the undirected edge count).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphStats {
    /// Vertex count.
    pub vertices: u64,
    /// Undirected edge count.
    pub edges: u64,
    /// Heap bytes held by the storage, chunk overhead included.
    pub heap_bytes: u64,
    /// `heap_bytes / (2 * edges)` — amortized cost per stored entry.
    pub bytes_per_edge: f64,
    /// Vertices the generator attached with fewer than `m` edges because
    /// the rejection-sampling guard exhausted (should be 0 on any sane
    /// config; surfaced instead of silently under-connecting).
    pub underfilled: u64,
}

impl GraphStats {
    /// The one-line rendering shared by the CLI report and log output:
    /// `graph_stats vertices=… edges=… bytes=… bytes_per_edge=… underfilled=…`.
    pub fn render_line(&self) -> String {
        format!(
            "graph_stats vertices={} edges={} bytes={} bytes_per_edge={:.2} underfilled={}",
            self.vertices, self.edges, self.heap_bytes, self.bytes_per_edge, self.underfilled
        )
    }
}

/// An undirected graph in compressed-sparse-row form: the neighbors of `v`
/// are `targets[offsets[v] as usize .. offsets[v + 1] as usize]`, sorted.
///
/// `u32` offsets index *stored entries* (2× undirected edges), so the
/// representation holds up to 2³²−1 entries ≈ 2.1 B undirected edges —
/// ~214 M vertices at the default mean degree 20. Past that the offsets
/// (not the ids) must widen to `u64`; see DESIGN.md S37.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// `vertex_count + 1` running entry offsets.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbor lists.
    targets: Vec<VertexId>,
}

impl CsrGraph {
    /// Builds the CSR from an undirected edge stream (each edge listed
    /// once, no self-loops, no duplicates) via the two-pass counting
    /// build: degree count → prefix sum → fill, then a per-vertex sort.
    /// All passes are parallelized across worker threads when the input
    /// is large enough to pay for them.
    pub fn from_edges(n: usize, edges: &[[VertexId; 2]]) -> Self {
        Self::from_edges_with_threads(n, edges, auto_threads(edges.len()))
    }

    /// [`Self::from_edges`] with an explicit worker-thread count — the
    /// parallel fill partitions vertices into contiguous ranges of
    /// roughly equal entry counts, so the single-core CI host and an
    /// 8-way build produce byte-identical output (covered by test).
    pub fn from_edges_with_threads(n: usize, edges: &[[VertexId; 2]], threads: usize) -> Self {
        let entries = edges
            .len()
            .checked_mul(2)
            .expect("edge count overflows usize");
        assert!(
            entries <= u32::MAX as usize,
            "CSR u32 offsets hold at most {} stored entries, got {entries} \
             (widen offsets to u64 past ~2.1B undirected edges)",
            u32::MAX
        );
        let threads = threads.max(1);

        // Pass 1: degree count. Each worker counts an edge chunk into a
        // local array; locals are summed into the global counts.
        let mut degree = vec![0u32; n];
        if threads == 1 || edges.is_empty() {
            for e in edges {
                degree[e[0] as usize] += 1;
                degree[e[1] as usize] += 1;
            }
        } else {
            let chunk = edges.len().div_ceil(threads);
            let locals: Vec<Vec<u32>> = std::thread::scope(|s| {
                let handles: Vec<_> = edges
                    .chunks(chunk)
                    .map(|part| {
                        s.spawn(move || {
                            let mut local = vec![0u32; n];
                            for e in part {
                                local[e[0] as usize] += 1;
                                local[e[1] as usize] += 1;
                            }
                            local
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("degree worker")).collect()
            });
            for local in locals {
                for (d, l) in degree.iter_mut().zip(local) {
                    *d += l;
                }
            }
        }

        // Prefix sum → offsets.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut running = 0u32;
        offsets.push(0);
        for &d in &degree {
            running += d;
            offsets.push(running);
        }
        debug_assert_eq!(running as usize, entries);

        // Pass 2: fill + per-vertex sort. Vertices are partitioned into
        // contiguous ranges holding roughly equal entry counts (balanced
        // despite power-law hubs); each worker owns a disjoint slice of
        // `targets`, scans the whole edge stream, and keeps only the
        // endpoints that land in its range.
        let mut targets = vec![0 as VertexId; entries];
        let bounds = entry_balanced_ranges(&offsets, threads);
        std::thread::scope(|s| {
            let mut rest: &mut [VertexId] = &mut targets;
            let mut consumed = 0usize;
            for w in bounds.windows(2) {
                let (lo, hi) = (w[0], w[1]);
                let base = offsets[lo] as usize;
                let end = offsets[hi] as usize;
                let (mine, tail) = rest.split_at_mut(end - consumed);
                rest = tail;
                consumed = end;
                let offsets = &offsets;
                s.spawn(move || {
                    let mut cursor: Vec<u32> =
                        offsets[lo..hi].iter().map(|&o| o - base as u32).collect();
                    for e in edges {
                        let (a, b) = (e[0] as usize, e[1] as usize);
                        if (lo..hi).contains(&a) {
                            mine[cursor[a - lo] as usize] = e[1];
                            cursor[a - lo] += 1;
                        }
                        if (lo..hi).contains(&b) {
                            mine[cursor[b - lo] as usize] = e[0];
                            cursor[b - lo] += 1;
                        }
                    }
                    let mut start = 0usize;
                    for v in lo..hi {
                        let len = (offsets[v + 1] - offsets[v]) as usize;
                        mine[start..start + len].sort_unstable();
                        start += len;
                    }
                });
            }
        });

        Self { offsets, targets }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of stored adjacency entries (2× undirected edges).
    #[inline]
    pub fn entry_count(&self) -> u64 {
        self.targets.len() as u64
    }

    /// The sorted neighbor list of `v` — an O(1) slice into flat storage.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of `v`, straight off the offsets — no list access.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Whether the edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Heap bytes held by the two flat arrays, chunk overhead included.
    pub fn heap_bytes(&self) -> usize {
        vec_heap_bytes::<u32>(self.offsets.capacity()) + vec_heap_bytes::<VertexId>(self.targets.capacity())
    }
}

/// Heap cost of one `Vec<T>` buffer: payload plus the allocator chunk
/// header, zero for the no-allocation empty case.
fn vec_heap_bytes<T>(capacity: usize) -> usize {
    if capacity == 0 {
        0
    } else {
        capacity * std::mem::size_of::<T>() + ALLOC_CHUNK_OVERHEAD
    }
}

/// Worker threads for a CSR build: all available cores (capped at 8 — the
/// degree-count pass holds one `u32` array per worker) once the input is
/// big enough to amortize thread spawn, else 1.
fn auto_threads(edge_count: usize) -> usize {
    if edge_count < 1 << 16 {
        return 1;
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(8)
}

/// Splits `0..n` into at most `parts` contiguous vertex ranges of roughly
/// equal *entry* counts (offsets are the running entry totals, so the
/// boundary for the k-th cut is the first vertex past k/parts of all
/// entries). Returns the boundary list `[0, …, n]`.
fn entry_balanced_ranges(offsets: &[u32], parts: usize) -> Vec<usize> {
    let n = offsets.len() - 1;
    let total = offsets[n] as usize;
    let mut bounds = vec![0usize];
    let mut v = 0usize;
    for k in 1..parts {
        let want = (total * k / parts) as u32;
        while v < n && offsets[v] < want {
            v += 1;
        }
        if v > *bounds.last().unwrap() && v < n {
            bounds.push(v);
        }
    }
    bounds.push(n);
    bounds
}

/// An undirected preferential-attachment graph on CSR storage.
#[derive(Debug, Clone)]
pub struct Graph {
    csr: CsrGraph,
    /// Undirected edge count, cached at build (was an O(n) sum per call).
    edges: u64,
    /// Vertices attached with fewer than `m` edges (guard exhaustion).
    underfilled: u32,
}

impl Graph {
    /// Generates a preferential-attachment graph.
    ///
    /// New vertices connect to `m` endpoints drawn from a pool containing
    /// every prior edge endpoint, so the probability of attaching to a
    /// vertex is proportional to its degree — yielding a power-law degree
    /// distribution. Duplicate-target rejection is O(1) via a stamp array
    /// (same accept/reject sequence as the legacy `targets.contains`
    /// scan, so seeded graphs are unchanged); a vertex whose `16 * m`
    /// draw guard exhausts before collecting `m` distinct targets is
    /// counted in [`GraphStats::underfilled`] instead of silently
    /// under-connecting.
    pub fn generate(cfg: &GraphConfig) -> Self {
        let n = cfg.vertices as usize;
        let m = cfg.edges_per_vertex.max(1) as usize;
        assert!(n > m, "need more vertices than edges per vertex");
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        // Each undirected edge once, newer endpoint first.
        let mut edges: Vec<[VertexId; 2]> = Vec::with_capacity(n * m);
        // Endpoint pool: each vertex appears once per incident edge.
        let mut pool: Vec<VertexId> = Vec::with_capacity(2 * n * m);

        // Seed clique over the first m+1 vertices.
        for a in 0..=m {
            for b in (a + 1)..=m {
                edges.push([a as VertexId, b as VertexId]);
                pool.push(a as VertexId);
                pool.push(b as VertexId);
            }
        }

        // stamp[t] == v marks t as already chosen for the vertex being
        // attached — O(1) dedup instead of scanning the scratch list.
        let mut stamp = vec![VertexId::MAX; n];
        let mut scratch: Vec<VertexId> = Vec::with_capacity(m);
        let mut underfilled = 0u32;
        for v in (m + 1)..n {
            scratch.clear();
            let mut guard = 0;
            while scratch.len() < m && guard < 16 * m {
                let t = pool[rng.random_range(0..pool.len())];
                guard += 1;
                if t as usize != v && stamp[t as usize] != v as VertexId {
                    stamp[t as usize] = v as VertexId;
                    scratch.push(t);
                }
            }
            if scratch.len() < m {
                underfilled += 1;
            }
            for &t in &scratch {
                edges.push([v as VertexId, t]);
                pool.push(v as VertexId);
                pool.push(t);
            }
        }
        debug_assert_eq!(
            underfilled, 0,
            "generator guard exhausted on {underfilled} vertices \
             (pool too small for m={m}?)"
        );
        drop(pool);
        drop(stamp);

        let edge_count = edges.len() as u64;
        let csr = CsrGraph::from_edges(n, &edges);
        Self {
            csr,
            edges: edge_count,
            underfilled,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> u32 {
        self.csr.vertex_count()
    }

    /// Number of undirected edges (cached at build time).
    #[inline]
    pub fn edge_count(&self) -> u64 {
        self.edges
    }

    /// The sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.csr.neighbors(v)
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.csr.degree(v)
    }

    /// Whether the edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.csr.has_edge(u, v)
    }

    /// The CSR storage itself (bench and stats access).
    #[inline]
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// Storage summary: counts, heap footprint, generator health.
    pub fn stats(&self) -> GraphStats {
        let heap_bytes = self.csr.heap_bytes() as u64;
        let entries = self.csr.entry_count().max(1);
        GraphStats {
            vertices: self.vertex_count() as u64,
            edges: self.edges,
            heap_bytes,
            bytes_per_edge: heap_bytes as f64 / entries as f64,
            underfilled: self.underfilled as u64,
        }
    }

    /// Extracts the shard-local slice: a sub-CSR over the vertices owned
    /// by `shard` out of `n_shards` (ownership = `v % n_shards`, dense
    /// local index = `v / n_shards`). Two flat allocations per shard —
    /// no per-vertex neighbor-list clones.
    pub fn shard_slice(&self, shard: usize, n_shards: usize) -> ShardData {
        assert!(shard < n_shards);
        let n = self.vertex_count() as usize;
        let owned_count = if n > shard {
            (n - shard).div_ceil(n_shards)
        } else {
            0
        };

        let mut offsets = Vec::with_capacity(owned_count + 1);
        let mut running = 0u32;
        offsets.push(0);
        let mut v = shard;
        while v < n {
            running += self.csr.degree(v as VertexId);
            offsets.push(running);
            v += n_shards;
        }

        let mut targets = Vec::with_capacity(running as usize);
        let mut v = shard;
        while v < n {
            targets.extend_from_slice(self.csr.neighbors(v as VertexId));
            v += n_shards;
        }

        ShardData {
            n_shards,
            shard,
            vertices: self.vertex_count(),
            offsets,
            targets,
        }
    }

    /// The shard owning vertex `v` under modulo partitioning.
    #[inline]
    pub fn owner(v: VertexId, n_shards: usize) -> usize {
        v as usize % n_shards
    }
}

/// One shard's slice of the graph: a sub-CSR over owned vertices only,
/// remapped to dense local indices (`v / n_shards`). Neighbor ids stay
/// global — neighbors may live on any shard.
#[derive(Debug, Clone)]
pub struct ShardData {
    n_shards: usize,
    shard: usize,
    vertices: u32,
    /// `owned_count + 1` running entry offsets over owned vertices.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbor lists of owned vertices.
    targets: Vec<VertexId>,
}

impl ShardData {
    /// The shard index this slice belongs to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Total vertices in the full graph.
    pub fn total_vertices(&self) -> u32 {
        self.vertices
    }

    /// Dense local index of `v`, `None` if this shard does not own it.
    #[inline]
    fn local(&self, v: VertexId) -> Option<usize> {
        if Graph::owner(v, self.n_shards) != self.shard {
            return None;
        }
        let idx = (v as usize) / self.n_shards;
        (idx + 1 < self.offsets.len()).then_some(idx)
    }

    /// Sorted neighbors of an owned vertex; `None` if `v` is not owned here.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> Option<&[VertexId]> {
        let idx = self.local(v)?;
        let lo = self.offsets[idx] as usize;
        let hi = self.offsets[idx + 1] as usize;
        Some(&self.targets[lo..hi])
    }

    /// Degree of an owned vertex, O(1) off the offsets — lets frontier
    /// walks pre-size their output before touching any neighbor list.
    #[inline]
    pub fn degree(&self, v: VertexId) -> Option<u32> {
        let idx = self.local(v)?;
        Some(self.offsets[idx + 1] - self.offsets[idx])
    }

    /// Heap bytes held by the sub-CSR, chunk overhead included.
    pub fn heap_bytes(&self) -> usize {
        vec_heap_bytes::<u32>(self.offsets.capacity()) + vec_heap_bytes::<VertexId>(self.targets.capacity())
    }
}

/// `|a ∩ b|` for sorted duplicate-free slices, picking a strategy from
/// the operand shapes:
///
/// * **linear merge** when both lists are long and comparably sized —
///   merge costs ~(short + long) branch-free steps vs the filter's
///   ~short · log2(long) probes, so it wins once long/short drops below
///   the log factor;
/// * **galloping** (exponential probe + binary search in the located
///   window) from the shorter into the longer when a non-trivial probe
///   list meets a heavily skewed base — the monotone cursor makes the
///   whole probe O(short · log(long / short));
/// * the **per-element `binary_search` filter** otherwise — for the
///   tiny, cache-resident lists that dominate low-degree graphs, its
///   conditional-move probes beat both alternatives' bookkeeping.
///
/// The shard `CountIntersect` kernel and the broker-side QT5 fallback
/// both land here; equivalence with the legacy filter is
/// property-tested in `tests/graph_csr.rs`.
pub fn intersect_count(a: &[VertexId], b: &[VertexId]) -> u64 {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return 0;
    }
    let ratio = long.len() / short.len();
    if long.len() >= 64 && ratio < 4 {
        intersect_count_merge(short, long)
    } else if ratio >= 16 && short.len() >= 8 {
        intersect_count_gallop(short, long)
    } else {
        intersect_count_filter(short, long)
    }
}

/// Per-element binary-search filter, the small-case strategy (and the
/// legacy kernel, retained verbatim in [`reference::VecGraph`]).
fn intersect_count_filter(short: &[VertexId], long: &[VertexId]) -> u64 {
    short.iter().filter(|x| long.binary_search(x).is_ok()).count() as u64
}

/// Linear merge intersection count for sorted slices. The cursor
/// advances are computed from comparisons instead of branched on — a
/// three-way branch on random data mispredicts almost every step, and
/// the misprediction stalls cost more than the extra arithmetic.
fn intersect_count_merge(a: &[VertexId], b: &[VertexId]) -> u64 {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0u64;
    while i < a.len() && j < b.len() {
        let x = a[i];
        let y = b[j];
        count += u64::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    count
}

/// Galloping intersection count: for each element of the (short) probe
/// list, exponentially advance a cursor through the (long) base list to
/// bracket it, then binary-search the bracket. The cursor never moves
/// backwards, so the whole probe costs O(short · log(long / short)).
fn intersect_count_gallop(probe: &[VertexId], base: &[VertexId]) -> u64 {
    let mut count = 0u64;
    let mut lo = 0usize;
    for &x in probe {
        if lo >= base.len() {
            break;
        }
        // Exponential search for the window containing x. The scan stops
        // at the first probe with base[hi] >= x, so the bracket must
        // include index hi itself — x may sit exactly there.
        let mut step = 1usize;
        let mut hi = lo;
        while hi < base.len() && base[hi] < x {
            lo = hi + 1;
            hi += step;
            step *= 2;
        }
        let hi = (hi + 1).min(base.len());
        match base[lo..hi].binary_search(&x) {
            Ok(pos) => {
                count += 1;
                lo += pos + 1;
            }
            Err(pos) => lo += pos,
        }
    }
    count
}

/// The legacy graph layer, retained as the equivalence/bench baseline.
pub mod reference {
    use super::{vec_heap_bytes, GraphConfig, VertexId, ALLOC_CHUNK_OVERHEAD};
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    /// The pre-CSR storage: one heap-allocated `Vec` per vertex, built by
    /// the legacy push → sort → dedup path with the O(m²)
    /// `targets.contains` rejection scan. This is the *only* permitted
    /// `Vec<Vec<VertexId>>` outside tests (CI grep gate in
    /// scripts/check.sh); it exists so proptests can check the CSR
    /// engine against an independent implementation and so the
    /// `graph_scale` bench has an honest "before" for build time,
    /// bytes/edge, and kernel throughput.
    #[derive(Debug, Clone)]
    pub struct VecGraph {
        adjacency: Vec<Vec<VertexId>>,
    }

    impl VecGraph {
        /// The legacy generator, byte-for-byte: same RNG, same
        /// accept/reject sequence, same silent truncation on guard
        /// exhaustion, same per-list sort + dedup.
        pub fn generate(cfg: &GraphConfig) -> Self {
            let n = cfg.vertices as usize;
            let m = cfg.edges_per_vertex.max(1) as usize;
            assert!(n > m, "need more vertices than edges per vertex");
            let mut rng = SmallRng::seed_from_u64(cfg.seed);
            let mut adjacency: Vec<Vec<VertexId>> = vec![Vec::new(); n];
            let mut pool: Vec<VertexId> = Vec::with_capacity(2 * n * m);

            for a in 0..=m {
                for b in (a + 1)..=m {
                    adjacency[a].push(b as VertexId);
                    adjacency[b].push(a as VertexId);
                    pool.push(a as VertexId);
                    pool.push(b as VertexId);
                }
            }

            for v in (m + 1)..n {
                let mut targets = Vec::with_capacity(m);
                let mut guard = 0;
                while targets.len() < m && guard < 16 * m {
                    let t = pool[rng.random_range(0..pool.len())];
                    guard += 1;
                    if t as usize != v && !targets.contains(&t) {
                        targets.push(t);
                    }
                }
                for &t in &targets {
                    adjacency[v].push(t);
                    adjacency[t as usize].push(v as VertexId);
                    pool.push(v as VertexId);
                    pool.push(t);
                }
            }

            for list in &mut adjacency {
                list.sort_unstable();
                list.dedup();
            }
            Self { adjacency }
        }

        /// Number of vertices.
        pub fn vertex_count(&self) -> u32 {
            self.adjacency.len() as u32
        }

        /// Number of undirected edges — the legacy O(n) sum.
        pub fn edge_count(&self) -> u64 {
            self.adjacency.iter().map(|l| l.len() as u64).sum::<u64>() / 2
        }

        /// The sorted neighbor list of `v`.
        pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
            &self.adjacency[v as usize]
        }

        /// Degree of `v`.
        pub fn degree(&self, v: VertexId) -> u32 {
            self.adjacency[v as usize].len() as u32
        }

        /// Whether the edge `(u, v)` exists.
        pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
            self.adjacency[u as usize].binary_search(&v).is_ok()
        }

        /// The legacy shard slice: owned adjacency lists *cloned* into
        /// `(vertex, neighbors)` pairs — the startup-memory-doubling
        /// path the sub-CSR replaced, kept for the equivalence suite.
        pub fn shard_slice_cloned(
            &self,
            shard: usize,
            n_shards: usize,
        ) -> Vec<(VertexId, Vec<VertexId>)> {
            assert!(shard < n_shards);
            self.adjacency
                .iter()
                .enumerate()
                .filter(|(v, _)| v % n_shards == shard)
                .map(|(v, list)| (v as VertexId, list.clone()))
                .collect()
        }

        /// Heap bytes held by the per-vertex layout, chunk overhead
        /// included: the outer buffer of `Vec` headers plus every
        /// non-empty inner buffer at its *actual* capacity (push-growth
        /// slack and all).
        pub fn heap_bytes(&self) -> usize {
            let outer = if self.adjacency.capacity() == 0 {
                0
            } else {
                self.adjacency.capacity() * std::mem::size_of::<Vec<VertexId>>()
                    + ALLOC_CHUNK_OVERHEAD
            };
            outer
                + self
                    .adjacency
                    .iter()
                    .map(|l| vec_heap_bytes::<VertexId>(l.capacity()))
                    .sum::<usize>()
        }

        /// The legacy intersection kernel: filter the shorter list
        /// through per-element `binary_search` on the longer. Retained
        /// as the bench baseline and the proptest oracle for
        /// [`super::intersect_count`].
        pub fn intersect_count_binary(a: &[VertexId], b: &[VertexId]) -> u64 {
            if a.len() <= b.len() {
                a.iter().filter(|x| b.binary_search(x).is_ok()).count() as u64
            } else {
                b.iter().filter(|x| a.binary_search(x).is_ok()).count() as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Graph {
        Graph::generate(&GraphConfig {
            vertices: 2_000,
            edges_per_vertex: 4,
            seed: 7,
        })
    }

    #[test]
    fn generation_produces_connected_adjacency() {
        let g = small();
        assert_eq!(g.vertex_count(), 2_000);
        // Every vertex has at least one neighbor (attached at creation).
        for v in 0..g.vertex_count() {
            assert!(g.degree(v) >= 1, "vertex {v} isolated");
        }
        // Roughly m edges per vertex.
        let e = g.edge_count();
        assert!(e > 6_000 && e < 9_000, "edges={e}");
        assert_eq!(g.stats().underfilled, 0);
    }

    #[test]
    fn adjacency_is_symmetric_and_sorted() {
        let g = small();
        for v in 0..g.vertex_count() {
            let ns = g.neighbors(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "unsorted at {v}");
            for &u in ns {
                assert!(g.has_edge(u, v), "asymmetric edge {v}-{u}");
                assert_ne!(u, v, "self loop at {v}");
            }
        }
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = Graph::generate(&GraphConfig {
            vertices: 20_000,
            edges_per_vertex: 4,
            seed: 3,
        });
        let mut degrees: Vec<u32> = (0..g.vertex_count()).map(|v| g.degree(v)).collect();
        degrees.sort_unstable();
        let median = degrees[degrees.len() / 2];
        let max = *degrees.last().unwrap();
        // Power-law: the hubs dwarf the median vertex.
        assert!(max > 20 * median, "median={median} max={max}");
    }

    #[test]
    fn shard_slices_partition_the_graph() {
        let g = small();
        let n_shards = 4;
        let slices: Vec<ShardData> = (0..n_shards).map(|s| g.shard_slice(s, n_shards)).collect();
        for v in 0..g.vertex_count() {
            let owner = Graph::owner(v, n_shards);
            for (s, slice) in slices.iter().enumerate() {
                let got = slice.neighbors(v);
                if s == owner {
                    assert_eq!(got.unwrap(), g.neighbors(v));
                    assert_eq!(slice.degree(v), Some(g.degree(v)));
                } else {
                    assert!(got.is_none());
                    assert!(slice.degree(v).is_none());
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        for v in 0..a.vertex_count() {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    fn generation_matches_legacy_reference() {
        // The CSR pipeline (stamp dedup + counting build) must reproduce
        // the legacy push/sort/dedup graph exactly, seed for seed.
        for seed in [7, 21, 0x11D] {
            let cfg = GraphConfig {
                vertices: 3_000,
                edges_per_vertex: 5,
                seed,
            };
            let csr = Graph::generate(&cfg);
            let legacy = reference::VecGraph::generate(&cfg);
            assert_eq!(csr.vertex_count(), legacy.vertex_count());
            assert_eq!(csr.edge_count(), legacy.edge_count());
            for v in 0..csr.vertex_count() {
                assert_eq!(csr.neighbors(v), legacy.neighbors(v), "vertex {v}");
            }
        }
    }

    #[test]
    fn parallel_build_matches_single_threaded() {
        let cfg = GraphConfig {
            vertices: 5_000,
            edges_per_vertex: 6,
            seed: 13,
        };
        let g = Graph::generate(&cfg);
        let edges: Vec<[VertexId; 2]> = (0..g.vertex_count())
            .flat_map(|v| {
                g.neighbors(v)
                    .iter()
                    .filter(move |&&u| u > v)
                    .map(move |&u| [v, u])
                    .collect::<Vec<_>>()
            })
            .collect();
        let n = g.vertex_count() as usize;
        let single = CsrGraph::from_edges_with_threads(n, &edges, 1);
        for threads in [2, 3, 8] {
            let multi = CsrGraph::from_edges_with_threads(n, &edges, threads);
            assert_eq!(single.offsets, multi.offsets, "threads={threads}");
            assert_eq!(single.targets, multi.targets, "threads={threads}");
        }
    }

    #[test]
    fn csr_is_at_most_half_the_reference_footprint() {
        // The ADR-001 G1 claim at test scale: flat CSR storage costs at
        // most half the per-vertex Vec layout, chunk overhead included.
        let cfg = GraphConfig {
            vertices: 30_000,
            edges_per_vertex: 4,
            seed: 11,
        };
        let csr = Graph::generate(&cfg);
        let legacy = reference::VecGraph::generate(&cfg);
        let csr_bytes = csr.stats().heap_bytes as f64;
        let legacy_bytes = legacy.heap_bytes() as f64;
        assert!(
            csr_bytes <= 0.5 * legacy_bytes,
            "csr={csr_bytes} legacy={legacy_bytes}"
        );
    }

    #[test]
    fn intersect_kernels_agree_on_graph_lists() {
        let g = small();
        for v in (0..g.vertex_count()).step_by(17) {
            for u in g.neighbors(v).iter().take(3) {
                let a = g.neighbors(v);
                let b = g.neighbors(*u);
                assert_eq!(
                    intersect_count(a, b),
                    reference::VecGraph::intersect_count_binary(a, b)
                );
            }
        }
    }

    #[test]
    fn stats_render_line_shape() {
        let line = small().stats().render_line();
        assert!(line.starts_with("graph_stats vertices=2000 edges="), "{line}");
        assert!(line.contains("bytes_per_edge="), "{line}");
        assert!(line.ends_with("underfilled=0"), "{line}");
    }
}
