//! The in-memory graph store and its synthetic generator.
//!
//! LIquid serves LinkedIn's Economic Graph; we substitute a synthetic
//! social-style graph grown by preferential attachment (Barabási–Albert),
//! whose power-law degree distribution gives per-query work the same
//! heavy-tailed spread that makes per-type processing-time distributions
//! lognormal-ish in production (§5.3). The graph is partitioned across
//! shards by vertex id, like LIquid "breaks up the graph into multiple data
//! shards and assigns them to separate shard hosts".

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Vertex identifier.
pub type VertexId = u32;

/// Synthetic graph parameters.
#[derive(Debug, Clone)]
pub struct GraphConfig {
    /// Number of vertices.
    pub vertices: u32,
    /// Edges attached per new vertex (preferential attachment `m`).
    pub edges_per_vertex: u32,
    /// Generator seed.
    pub seed: u64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        Self {
            vertices: 200_000,
            edges_per_vertex: 10,
            seed: 0x11D,
        }
    }
}

/// An undirected graph as sorted adjacency lists.
#[derive(Debug, Clone)]
pub struct Graph {
    adjacency: Vec<Vec<VertexId>>,
}

impl Graph {
    /// Generates a preferential-attachment graph.
    ///
    /// New vertices connect to `m` endpoints drawn from a pool containing
    /// every prior edge endpoint, so the probability of attaching to a
    /// vertex is proportional to its degree — yielding a power-law degree
    /// distribution.
    pub fn generate(cfg: &GraphConfig) -> Self {
        let n = cfg.vertices as usize;
        let m = cfg.edges_per_vertex.max(1) as usize;
        assert!(n > m, "need more vertices than edges per vertex");
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut adjacency: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        // Endpoint pool: each vertex appears once per incident edge.
        let mut pool: Vec<VertexId> = Vec::with_capacity(2 * n * m);

        // Seed clique over the first m+1 vertices.
        for a in 0..=m {
            for b in (a + 1)..=m {
                adjacency[a].push(b as VertexId);
                adjacency[b].push(a as VertexId);
                pool.push(a as VertexId);
                pool.push(b as VertexId);
            }
        }

        for v in (m + 1)..n {
            let mut targets = Vec::with_capacity(m);
            let mut guard = 0;
            while targets.len() < m && guard < 16 * m {
                let t = pool[rng.random_range(0..pool.len())];
                guard += 1;
                if t as usize != v && !targets.contains(&t) {
                    targets.push(t);
                }
            }
            for &t in &targets {
                adjacency[v].push(t);
                adjacency[t as usize].push(v as VertexId);
                pool.push(v as VertexId);
                pool.push(t);
            }
        }

        for list in &mut adjacency {
            list.sort_unstable();
            list.dedup();
        }
        Self { adjacency }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> u32 {
        self.adjacency.len() as u32
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> u64 {
        self.adjacency.iter().map(|l| l.len() as u64).sum::<u64>() / 2
    }

    /// The sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adjacency[v as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.adjacency[v as usize].len() as u32
    }

    /// Whether the edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.adjacency[u as usize].binary_search(&v).is_ok()
    }

    /// Extracts the shard-local slice: adjacency lists of the vertices owned
    /// by `shard` out of `n_shards` (ownership = `v % n_shards`).
    pub fn shard_slice(&self, shard: usize, n_shards: usize) -> ShardData {
        assert!(shard < n_shards);
        let owned: Vec<(VertexId, Vec<VertexId>)> = self
            .adjacency
            .iter()
            .enumerate()
            .filter(|(v, _)| v % n_shards == shard)
            .map(|(v, list)| (v as VertexId, list.clone()))
            .collect();
        ShardData {
            n_shards,
            shard,
            vertices: self.vertex_count(),
            owned,
        }
    }

    /// The shard owning vertex `v` under modulo partitioning.
    #[inline]
    pub fn owner(v: VertexId, n_shards: usize) -> usize {
        v as usize % n_shards
    }
}

/// One shard's slice of the graph: adjacency lists for owned vertices only.
#[derive(Debug, Clone)]
pub struct ShardData {
    n_shards: usize,
    shard: usize,
    vertices: u32,
    /// `(vertex, neighbors)` for owned vertices, in vertex order.
    owned: Vec<(VertexId, Vec<VertexId>)>,
}

impl ShardData {
    /// The shard index this slice belongs to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Total vertices in the full graph.
    pub fn total_vertices(&self) -> u32 {
        self.vertices
    }

    /// Sorted neighbors of an owned vertex; `None` if `v` is not owned here.
    pub fn neighbors(&self, v: VertexId) -> Option<&[VertexId]> {
        if Graph::owner(v, self.n_shards) != self.shard {
            return None;
        }
        let idx = (v as usize) / self.n_shards;
        self.owned.get(idx).map(|(ov, list)| {
            debug_assert_eq!(*ov, v);
            list.as_slice()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Graph {
        Graph::generate(&GraphConfig {
            vertices: 2_000,
            edges_per_vertex: 4,
            seed: 7,
        })
    }

    #[test]
    fn generation_produces_connected_adjacency() {
        let g = small();
        assert_eq!(g.vertex_count(), 2_000);
        // Every vertex has at least one neighbor (attached at creation).
        for v in 0..g.vertex_count() {
            assert!(g.degree(v) >= 1, "vertex {v} isolated");
        }
        // Roughly m edges per vertex.
        let e = g.edge_count();
        assert!(e > 6_000 && e < 9_000, "edges={e}");
    }

    #[test]
    fn adjacency_is_symmetric_and_sorted() {
        let g = small();
        for v in 0..g.vertex_count() {
            let ns = g.neighbors(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "unsorted at {v}");
            for &u in ns {
                assert!(g.has_edge(u, v), "asymmetric edge {v}-{u}");
                assert_ne!(u, v, "self loop at {v}");
            }
        }
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = Graph::generate(&GraphConfig {
            vertices: 20_000,
            edges_per_vertex: 4,
            seed: 3,
        });
        let mut degrees: Vec<u32> = (0..g.vertex_count()).map(|v| g.degree(v)).collect();
        degrees.sort_unstable();
        let median = degrees[degrees.len() / 2];
        let max = *degrees.last().unwrap();
        // Power-law: the hubs dwarf the median vertex.
        assert!(max > 20 * median, "median={median} max={max}");
    }

    #[test]
    fn shard_slices_partition_the_graph() {
        let g = small();
        let n_shards = 4;
        let slices: Vec<ShardData> = (0..n_shards).map(|s| g.shard_slice(s, n_shards)).collect();
        for v in 0..g.vertex_count() {
            let owner = Graph::owner(v, n_shards);
            for (s, slice) in slices.iter().enumerate() {
                let got = slice.neighbors(v);
                if s == owner {
                    assert_eq!(got.unwrap(), g.neighbors(v));
                } else {
                    assert!(got.is_none());
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        for v in 0..a.vertex_count() {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }
}
