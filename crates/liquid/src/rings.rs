//! Topology and wire types for the thread-per-core `rings` transport.
//!
//! In rings mode every hop of a query's round trip is a bounded SPSC ring
//! ([`bouncer_metrics::spsc`]) with exactly one producer thread and one
//! consumer thread, so no hop ever takes a lock:
//!
//! * **front → broker**: each broker owns a set of *lanes*. A client thread
//!   claims a lane (one CAS), pushes the query onto the lane's request ring
//!   and parks on the lane's reply ring. Lane `l` is serviced by broker
//!   engine `l % E`.
//! * **broker → shard**: broker engine `g` (globally numbered across
//!   brokers) owns a dedicated request/reply ring pair per shard, consumed
//!   by shard engine `g % F` of that shard. An engine executes one query at
//!   a time and a round sends at most one batch per shard, so at most one
//!   request is ever outstanding per ring pair — replies correlate by FIFO
//!   order and the reply ring (same capacity) can never be full when the
//!   shard pushes.
//!
//! Rings are deliberately tiny (see [`RING_CAP`]): following the
//! bufferbloat argument, a full request ring is surfaced as a `QueueFull`
//! rejection at admission rather than absorbed by a deep transport queue.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bouncer_core::obs::TraceContext;
use bouncer_metrics::spsc::{channel, Consumer, Producer, RingProbe, Waker};
use bouncer_metrics::Nanos;

use crate::broker::ClientOutcome;
use crate::query::{Query, QueryKind, RepBatch, SubQuery};

/// Capacity of every ring (requests and replies). Small and bounded on
/// purpose: at most one request is outstanding per ring pair, and a full
/// front→broker lane means the caller is rejected with `QueueFull` instead
/// of queueing deep in the transport.
pub(crate) const RING_CAP: usize = 8;

/// Lanes per broker. Matches the widest in-process caller fan-in we run
/// (capacity probes use 16 worker threads).
pub(crate) const LANES_PER_BROKER: usize = 16;

/// A front→broker request: one client query.
pub(crate) struct LaneReq {
    pub query: Query,
    /// Broker-gate admission timestamp, taken producer-side.
    pub enqueued_at: Nanos,
    pub ctx: Option<TraceContext>,
}

impl Default for LaneReq {
    fn default() -> Self {
        Self {
            query: Query {
                kind: QueryKind::Qt1Degree,
                u: 0,
                v: 0,
            },
            enqueued_at: 0,
            ctx: None,
        }
    }
}

/// A broker→front reply.
pub(crate) struct LaneRep {
    pub outcome: ClientOutcome,
}

impl Default for LaneRep {
    fn default() -> Self {
        Self {
            outcome: ClientOutcome::Failed,
        }
    }
}

/// A broker→shard request: one round's sub-query batch for one shard. The
/// `subs` vector is swapped in from broker scratch and swapped back on
/// reply, so the buffer shuttles between the two threads without
/// reallocation.
#[derive(Default)]
pub(crate) struct ShardReq {
    pub subs: Vec<SubQuery>,
    /// Shard-gate admission timestamp, taken producer-side by the broker.
    pub enqueued_at: Nanos,
    pub ctx: Option<TraceContext>,
    /// Cancellation token for hedged duplicates: the shard engine takes it
    /// at dequeue and, when set, replies per-item `Cancelled` without
    /// executing. `None` (the default) for ordinary rounds.
    pub cancel: Option<Arc<AtomicBool>>,
}

/// A shard→broker reply: the round's staged batch (same swap discipline),
/// plus the request's `subs` buffer handed back so the broker reclaims it
/// — and the payload `Arc`s inside it — deterministically at reply time.
#[derive(Default)]
pub(crate) struct ShardRep {
    pub batch: RepBatch,
    pub subs: Vec<SubQuery>,
}

/// The client half of one lane: request producer + reply consumer.
pub(crate) struct LaneClient {
    pub req: Producer<LaneReq>,
    pub rep: Consumer<LaneRep>,
}

/// One front→broker lane. `claimed` arbitrates which client thread may use
/// the SPSC handles; the CAS-acquire on claim / store-release on drop pair
/// gives the next claimant a happens-before edge over the handles' cached
/// indices, preserving the single-producer invariant across claimants.
struct Lane {
    claimed: AtomicBool,
    client: UnsafeCell<LaneClient>,
}

// SAFETY: `client` is only touched by the thread that won the `claimed`
// CAS, and the release store on unclaim publishes its writes to the next
// winner.
unsafe impl Sync for Lane {}

/// A broker's lanes. Claiming spins (with `yield_now`) until a lane frees
/// up; with [`LANES_PER_BROKER`] lanes per broker this only happens under
/// caller fan-in wider than any we run.
pub(crate) struct LaneSet {
    lanes: Vec<Lane>,
}

impl LaneSet {
    /// Claims a free lane, blocking (yield-spin) until one is available.
    pub fn claim(&self) -> LaneGuard<'_> {
        loop {
            for lane in &self.lanes {
                if lane
                    .claimed
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return LaneGuard { lane };
                }
            }
            std::thread::yield_now();
        }
    }
}

/// Exclusive use of one lane; releases it on drop.
pub(crate) struct LaneGuard<'a> {
    lane: &'a Lane,
}

impl Deref for LaneGuard<'_> {
    type Target = LaneClient;

    fn deref(&self) -> &LaneClient {
        // SAFETY: the guard holds the `claimed` flag, so this thread has
        // exclusive access until drop.
        unsafe { &*self.lane.client.get() }
    }
}

impl DerefMut for LaneGuard<'_> {
    fn deref_mut(&mut self) -> &mut LaneClient {
        // SAFETY: as above, plus `&mut self` makes the borrow unique.
        unsafe { &mut *self.lane.client.get() }
    }
}

impl Drop for LaneGuard<'_> {
    fn drop(&mut self) {
        self.lane.claimed.store(false, Ordering::Release);
    }
}

/// Broker-engine end of the per-shard ring pair.
pub(crate) struct ShardPortRings {
    pub req: Producer<ShardReq>,
    pub rep: Consumer<ShardRep>,
}

/// Everything one broker engine thread consumes or produces.
pub(crate) struct BrokerEngineRig {
    /// Request consumers for the lanes this engine services.
    pub lane_reqs: Vec<Consumer<LaneReq>>,
    /// Reply producers for those same lanes, in the same order.
    pub lane_reps: Vec<Producer<LaneRep>>,
    /// One ring pair per shard, indexed by shard.
    pub ports: Vec<ShardPortRings>,
    /// This engine thread's waker (lane requests and shard replies park
    /// on it).
    pub waker: Arc<Waker>,
}

/// Everything one broker needs to run in rings mode.
pub(crate) struct BrokerRig {
    pub lanes: Arc<LaneSet>,
    pub engines: Vec<BrokerEngineRig>,
    /// Read-only occupancy probes over the front→broker lane request
    /// rings, in lane order — the health sampler's view of transport
    /// backpressure. Probes never consume; see [`RingProbe`].
    pub lane_probes: Vec<RingProbe<LaneReq>>,
}

/// Everything one shard engine thread consumes or produces: one
/// (request consumer, reply producer) pair per broker engine assigned to
/// it.
pub(crate) struct ShardEngineRig {
    pub ports: Vec<(Consumer<ShardReq>, Producer<ShardRep>)>,
    pub waker: Arc<Waker>,
}

/// Everything one shard needs to run in rings mode.
pub(crate) struct ShardRig {
    pub engines: Vec<ShardEngineRig>,
}

/// Builds the full ring topology for `n_brokers × broker_engines` broker
/// threads and `n_shards × replicas × shard_engines` shard threads. Every
/// ring gets exactly one producer and one consumer thread by construction.
///
/// With `replicas > 1` each logical shard is materialized `replicas`
/// times; the returned shard rigs (and every broker engine's `ports`) are
/// in replica-major order: physical index `s * replicas + r` is replica
/// `r` of logical shard `s`. At `replicas == 1` this collapses to the flat
/// `[s]` layout, so unreplicated wiring is unchanged byte for byte.
pub(crate) fn build_topology(
    n_brokers: usize,
    broker_engines: usize,
    n_shards: usize,
    shard_engines: usize,
    replicas: usize,
) -> (Vec<BrokerRig>, Vec<ShardRig>) {
    assert!(
        n_brokers > 0 && broker_engines > 0 && n_shards > 0 && shard_engines > 0 && replicas > 0
    );
    let n_physical = n_shards * replicas;
    let mut shard_rigs: Vec<ShardRig> = (0..n_physical)
        .map(|_| ShardRig {
            engines: (0..shard_engines)
                .map(|_| ShardEngineRig {
                    ports: Vec::new(),
                    waker: Waker::new(),
                })
                .collect(),
        })
        .collect();

    let mut broker_rigs = Vec::with_capacity(n_brokers);
    for b in 0..n_brokers {
        let mut engines = Vec::with_capacity(broker_engines);
        let mut lane_ends: Vec<Vec<(Producer<LaneReq>, Consumer<LaneRep>)>> =
            (0..broker_engines).map(|_| Vec::new()).collect();
        for e in 0..broker_engines {
            let engine_waker = Waker::new();
            let g = b * broker_engines + e;
            let mut ports = Vec::with_capacity(n_physical);
            for shard_rig in shard_rigs.iter_mut() {
                let f = g % shard_engines;
                let shard_engine = &mut shard_rig.engines[f];
                let (req_tx, req_rx) = channel(RING_CAP, Arc::clone(&shard_engine.waker));
                let (rep_tx, rep_rx) = channel(RING_CAP, Arc::clone(&engine_waker));
                shard_engine.ports.push((req_rx, rep_tx));
                ports.push(ShardPortRings {
                    req: req_tx,
                    rep: rep_rx,
                });
            }
            engines.push(BrokerEngineRig {
                lane_reqs: Vec::new(),
                lane_reps: Vec::new(),
                ports,
                waker: engine_waker,
            });
        }
        let mut lane_probes = Vec::with_capacity(LANES_PER_BROKER);
        for l in 0..LANES_PER_BROKER {
            let e = l % broker_engines;
            // Lane requests park on the servicing engine's waker; lane
            // replies get a dedicated waker the claimant registers with.
            let (req_tx, req_rx) = channel(RING_CAP, Arc::clone(&engines[e].waker));
            let (rep_tx, rep_rx) = channel(RING_CAP, Waker::new());
            lane_probes.push(req_tx.probe());
            engines[e].lane_reqs.push(req_rx);
            engines[e].lane_reps.push(rep_tx);
            lane_ends[e].push((req_tx, rep_rx));
        }
        // Flatten lane client halves back into lane order (engine e holds
        // lanes e, e+E, e+2E, ... in order).
        let mut by_engine: Vec<std::vec::IntoIter<(Producer<LaneReq>, Consumer<LaneRep>)>> =
            lane_ends.into_iter().map(Vec::into_iter).collect();
        let lane_clients: Vec<Lane> = (0..LANES_PER_BROKER)
            .map(|l| {
                let (req, rep) = by_engine[l % broker_engines]
                    .next()
                    .expect("lane ends exhausted");
                Lane {
                    claimed: AtomicBool::new(false),
                    client: UnsafeCell::new(LaneClient { req, rep }),
                }
            })
            .collect();
        broker_rigs.push(BrokerRig {
            lanes: Arc::new(LaneSet {
                lanes: lane_clients,
            }),
            engines,
            lane_probes,
        });
    }
    (broker_rigs, shard_rigs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_shapes_match_engine_counts() {
        let (brokers, shards) = build_topology(2, 3, 4, 2, 1);
        assert_eq!(brokers.len(), 2);
        assert_eq!(shards.len(), 4);
        for rig in &brokers {
            assert_eq!(rig.engines.len(), 3);
            let lane_total: usize = rig.engines.iter().map(|e| e.lane_reqs.len()).sum();
            assert_eq!(lane_total, LANES_PER_BROKER);
            for engine in &rig.engines {
                assert_eq!(engine.ports.len(), 4);
                assert_eq!(engine.lane_reqs.len(), engine.lane_reps.len());
            }
        }
        // Global broker engines: 2 brokers x 3 engines = 6; shard engine
        // f serves the broker engines with g % 2 == f.
        for shard in &shards {
            assert_eq!(shard.engines.len(), 2);
            assert_eq!(shard.engines[0].ports.len(), 3);
            assert_eq!(shard.engines[1].ports.len(), 3);
        }
    }

    #[test]
    fn replicated_topology_lays_ports_out_replica_major() {
        let (brokers, shards) = build_topology(1, 2, 3, 2, 2);
        // 3 logical shards x 2 replicas = 6 physical shard rigs, each with
        // its own engines; every broker engine has one port per physical
        // shard, in `s * replicas + r` order.
        assert_eq!(shards.len(), 6);
        for rig in &brokers {
            for engine in &rig.engines {
                assert_eq!(engine.ports.len(), 6);
            }
        }
        for shard in &shards {
            assert_eq!(shard.engines.len(), 2);
            // 1 broker x 2 engines, g % 2 == f: one port each.
            assert_eq!(shard.engines[0].ports.len(), 1);
            assert_eq!(shard.engines[1].ports.len(), 1);
        }
    }

    #[test]
    fn lane_claim_is_exclusive_and_released_on_drop() {
        let (brokers, _shards) = build_topology(1, 1, 1, 1, 1);
        let lanes = Arc::clone(&brokers[0].lanes);
        let mut guards: Vec<LaneGuard<'_>> = (0..LANES_PER_BROKER).map(|_| lanes.claim()).collect();
        // All lanes claimed; verify each guard references a distinct lane.
        let mut ptrs: Vec<*const Lane> = guards.iter().map(|g| g.lane as *const Lane).collect();
        ptrs.sort();
        ptrs.dedup();
        assert_eq!(ptrs.len(), LANES_PER_BROKER);
        // Releasing one makes claiming possible again.
        guards.pop();
        let again = lanes.claim();
        drop(again);
        drop(guards);
    }

    #[test]
    fn lane_round_trip_carries_a_query() {
        let (mut brokers, _shards) = build_topology(1, 1, 1, 1, 1);
        let rig = brokers.remove(0);
        let lanes = rig.lanes;
        let mut engine = rig.engines.into_iter().next().unwrap();
        let mut lane = lanes.claim();
        let pushed = lane.req.try_push(|slot| {
            slot.query = Query {
                kind: QueryKind::Qt2EdgeExists,
                u: 7,
                v: 9,
            };
            slot.enqueued_at = 42;
            slot.ctx = None;
        });
        assert!(pushed);
        // The engine end sees it on the lane-0 consumer.
        let got = engine.lane_reqs[0]
            .try_pop(|slot| (slot.query, slot.enqueued_at))
            .expect("request visible");
        assert_eq!(got.0.u, 7);
        assert_eq!(got.1, 42);
        assert!(engine.lane_reps[0].try_push(|slot| {
            slot.outcome = ClientOutcome::Ok(123);
        }));
        let rep = lane
            .rep
            .try_pop(|slot| std::mem::replace(&mut slot.outcome, ClientOutcome::Failed))
            .expect("reply visible");
        assert!(matches!(rep, ClientOutcome::Ok(123)));
    }
}
