//! Client queries (the QT1..QT11 templates) and shard sub-queries.
//!
//! The paper anonymizes its 11 production query types but tells us what
//! matters: they are "sorted by cost in ascending order", span "diversity in
//! processing time", and a query is answered in "one or more communication
//! rounds between the broker and the shards" (§5.1, §5.4). We realize them
//! as graph-query templates whose cost grows with fan-out and round count —
//! from a single degree lookup (QT1) to a four-hop distance search (QT11).

use std::sync::Arc;

use rand::{Rng, RngExt};

use crate::graph::VertexId;

/// The client query types, in ascending cost order like the paper's mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum QueryKind {
    /// QT1 — degree of a vertex (1 sub-query).
    Qt1Degree,
    /// QT2 — edge existence check (1 sub-query).
    Qt2EdgeExists,
    /// QT3 — first page of a vertex's neighbors (1 sub-query).
    Qt3NeighborsPage,
    /// QT4 — full neighbor list with broker-side post-processing.
    Qt4NeighborsFull,
    /// QT5 — count of mutual neighbors of two vertices (parallel fetch +
    /// sorted intersection).
    Qt5MutualCount,
    /// QT6 — degrees of a sample of a vertex's neighbors (2 rounds).
    Qt6NeighborDegrees,
    /// QT7 — distinct-vertex count of the two-hop neighborhood (2 rounds,
    /// wide fan-out).
    Qt7TwoHopCount,
    /// QT8 — triangles through a vertex (neighbor intersections fan-out).
    Qt8TriangleCount,
    /// QT9 — overlap of two vertices' two-hop networks (2 wide rounds).
    Qt9CommonNetwork,
    /// QT10 — bounded BFS graph distance, up to 3 hops (≤3 rounds).
    Qt10Distance3,
    /// QT11 — bounded BFS graph distance, up to 4 hops with wider frontier
    /// (≤4 rounds) — the costliest type, like the paper's QT11.
    Qt11Distance4,
}

impl QueryKind {
    /// All kinds in ascending cost order (QT1..QT11).
    pub const ALL: [QueryKind; 11] = [
        QueryKind::Qt1Degree,
        QueryKind::Qt2EdgeExists,
        QueryKind::Qt3NeighborsPage,
        QueryKind::Qt4NeighborsFull,
        QueryKind::Qt5MutualCount,
        QueryKind::Qt6NeighborDegrees,
        QueryKind::Qt7TwoHopCount,
        QueryKind::Qt8TriangleCount,
        QueryKind::Qt9CommonNetwork,
        QueryKind::Qt10Distance3,
        QueryKind::Qt11Distance4,
    ];

    /// The paper's anonymized name ("QT1".."QT11").
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Qt1Degree => "QT1",
            QueryKind::Qt2EdgeExists => "QT2",
            QueryKind::Qt3NeighborsPage => "QT3",
            QueryKind::Qt4NeighborsFull => "QT4",
            QueryKind::Qt5MutualCount => "QT5",
            QueryKind::Qt6NeighborDegrees => "QT6",
            QueryKind::Qt7TwoHopCount => "QT7",
            QueryKind::Qt8TriangleCount => "QT8",
            QueryKind::Qt9CommonNetwork => "QT9",
            QueryKind::Qt10Distance3 => "QT10",
            QueryKind::Qt11Distance4 => "QT11",
        }
    }

    /// Dense index (0-based) within [`QueryKind::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Kind from dense index.
    pub fn from_index(i: usize) -> Option<QueryKind> {
        QueryKind::ALL.get(i).copied()
    }
}

/// A client query: a kind plus up to two vertex arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    /// Query template.
    pub kind: QueryKind,
    /// Primary vertex argument.
    pub u: VertexId,
    /// Secondary vertex argument (used by pairwise templates).
    pub v: VertexId,
}

impl Query {
    /// Draws random vertex arguments for a query of `kind` over a graph of
    /// `n_vertices`.
    pub fn random<R: Rng + ?Sized>(kind: QueryKind, n_vertices: u32, rng: &mut R) -> Self {
        let u = rng.random_range(0..n_vertices);
        let mut v = rng.random_range(0..n_vertices);
        if v == u {
            v = (v + 1) % n_vertices;
        }
        Self { kind, u, v }
    }
}

/// Result of a client query, reduced to a scalar (count, distance, flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryResult {
    /// The scalar answer. For distance queries, `u64::MAX` means
    /// "unreachable within the hop bound".
    pub value: u64,
}

/// A sub-query a broker sends to one shard. Batched forms (`*Many`) carry
/// every vertex of the round's frontier owned by that shard.
///
/// List payloads are `Arc<Vec<VertexId>>` so a fan-out that sends the same
/// read-only list to several shards (QT8's neighbor list, the BFS
/// frontiers) shares one allocation instead of cloning a `Vec` per target —
/// and, unlike `Arc<[VertexId]>`, the inner `Vec` can be reclaimed through
/// `Arc::get_mut` once every reader has dropped its clone, which is what
/// lets the rings transport recycle payload buffers instead of
/// reallocating them every round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubQuery {
    /// Neighbors of one vertex.
    Neighbors(VertexId),
    /// Degree of one vertex.
    Degree(VertexId),
    /// Does the edge `(u, v)` exist? (Sent to `u`'s owner.)
    HasEdge(VertexId, VertexId),
    /// Neighbors of several owned vertices.
    NeighborsMany(Arc<Vec<VertexId>>),
    /// Degrees of several owned vertices.
    DegreeMany(Arc<Vec<VertexId>>),
    /// `|neighbors(v) ∩ ids|` with `ids` sorted ascending.
    CountIntersect(VertexId, Arc<Vec<VertexId>>),
}

impl SubQuery {
    /// A proportional work-size hint used for shard-side accounting.
    pub fn batch_len(&self) -> usize {
        match self {
            SubQuery::Neighbors(_) | SubQuery::Degree(_) | SubQuery::HasEdge(..) => 1,
            SubQuery::NeighborsMany(vs) | SubQuery::DegreeMany(vs) => vs.len(),
            SubQuery::CountIntersect(_, ids) => ids.len().max(1),
        }
    }
}

/// A flattened list-of-lists: every id in one contiguous buffer plus one
/// end offset per list, so a round's N neighbor lists cost two allocations
/// instead of N+1. Lists keep their push order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdLists {
    /// Exclusive end offset of each list within `ids`.
    ends: Vec<u32>,
    /// All lists, concatenated.
    ids: Vec<VertexId>,
}

impl IdLists {
    /// An empty collection with room for `lists` lists totalling `ids` ids.
    pub fn with_capacity(lists: usize, ids: usize) -> Self {
        Self {
            ends: Vec::with_capacity(lists),
            ids: Vec::with_capacity(ids),
        }
    }

    /// Number of lists.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// `true` when no list has been pushed.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Total ids across all lists.
    pub fn total_ids(&self) -> usize {
        self.ids.len()
    }

    /// Reserves room for `lists` more lists totalling `ids` more ids —
    /// the degree-prefetched frontier walk sizes a whole batch up front
    /// so the staging buffers never regrow mid-batch.
    pub fn reserve(&mut self, lists: usize, ids: usize) {
        self.ends.reserve(lists);
        self.ids.reserve(ids);
    }

    /// Appends one list.
    pub fn push(&mut self, list: &[VertexId]) {
        self.ids.extend_from_slice(list);
        self.ends.push(self.ids.len() as u32);
    }

    /// Appends one id to the list currently being built; the list is not
    /// visible until sealed with [`IdLists::seal_list`]. Decoders use this
    /// to build lists element-by-element without a staging `Vec`.
    pub fn push_id(&mut self, id: VertexId) {
        self.ids.push(id);
    }

    /// Seals the ids appended via [`IdLists::push_id`] since the previous
    /// seal (or construction) into one list.
    pub fn seal_list(&mut self) {
        self.ends.push(self.ids.len() as u32);
    }

    /// Clears all lists, keeping both buffers' capacity.
    pub fn clear(&mut self) {
        self.ends.clear();
        self.ids.clear();
    }

    /// Truncates to the first `n` lists, dropping any ids appended after
    /// the `n`-th seal (including unsealed ids from a partial list). Used
    /// to roll back a half-built item when a sub-query fails mid-batch.
    pub fn truncate_lists(&mut self, n: usize) {
        if n >= self.ends.len() {
            // Still drop unsealed ids so a partial list never leaks.
            let end = self.ends.last().copied().unwrap_or(0) as usize;
            self.ids.truncate(end);
            return;
        }
        let end = if n == 0 { 0 } else { self.ends[n - 1] as usize };
        self.ends.truncate(n);
        self.ids.truncate(end);
    }

    /// The `i`-th list, in push order.
    pub fn get(&self, i: usize) -> Option<&[VertexId]> {
        let end = *self.ends.get(i)? as usize;
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        self.ids.get(start..end)
    }

    /// Iterates the lists in push order.
    pub fn iter(&self) -> impl Iterator<Item = &[VertexId]> {
        (0..self.len()).map(|i| self.get(i).unwrap_or(&[]))
    }
}

impl<S: AsRef<[VertexId]>> FromIterator<S> for IdLists {
    fn from_iter<T: IntoIterator<Item = S>>(iter: T) -> Self {
        let mut out = IdLists::default();
        for list in iter {
            out.push(list.as_ref());
        }
        out
    }
}

/// Per-item status inside a [`RepBatch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RepStatus {
    /// The item executed; its payload follows positionally in the batch's
    /// flat buffers.
    #[default]
    Ok,
    /// The shard's admission gate rejected the round.
    Rejected,
    /// The item referenced a vertex the shard does not own (or otherwise
    /// failed); it contributes no payload.
    Error,
    /// The round was cancelled by the broker (a hedged duplicate whose
    /// twin won) before an engine executed it; it contributes no payload.
    Cancelled,
}

/// A shard's reply to one round's batch of sub-queries, staged into flat
/// reusable buffers instead of one enum allocation per item.
///
/// Layout contract (what the broker-side cursor relies on):
/// * one [`RepStatus`] per sub-query, in request order;
/// * `Neighbors` appends one list to `lists`; `NeighborsMany` appends one
///   list per requested vertex;
/// * `Degree`/`DegreeMany` append one count per requested vertex to
///   `counts`;
/// * `HasEdge` appends `0`/`1` and `CountIntersect` appends the count to
///   `scalars`;
/// * `Rejected`/`Error` items append nothing.
///
/// Both transports stage replies here — the channel path converts its
/// per-shard `SubOutcome`s into a `RepBatch`, the rings path has shards
/// write into one directly — so the plan-side reply walking is shared and
/// rings ≡ channels holds by construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepBatch {
    /// Per-item status, in request order.
    pub status: Vec<RepStatus>,
    /// Flattened neighbor lists, in item-then-vertex order.
    pub lists: IdLists,
    /// Degrees, in item-then-vertex order.
    pub counts: Vec<u32>,
    /// Scalar answers (counts; flags as `0`/`1`), in item order.
    pub scalars: Vec<u64>,
}

impl RepBatch {
    /// Clears all buffers, keeping capacity.
    pub fn clear(&mut self) {
        self.status.clear();
        self.lists.clear();
        self.counts.clear();
        self.scalars.clear();
    }
}

/// A shard's answer to a [`SubQuery`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubResponse {
    /// A single neighbor list.
    Ids(Vec<VertexId>),
    /// One list per requested vertex, in request order (flattened — see
    /// [`IdLists`]).
    IdLists(IdLists),
    /// Degrees, in request order.
    Counts(Vec<u32>),
    /// A scalar count.
    Count(u64),
    /// A boolean answer.
    Flag(bool),
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn kinds_are_dense_and_named() {
        for (i, k) in QueryKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(QueryKind::from_index(i), Some(*k));
            assert_eq!(k.name(), format!("QT{}", i + 1));
        }
        assert_eq!(QueryKind::from_index(11), None);
    }

    #[test]
    fn random_queries_have_distinct_vertices() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let q = Query::random(QueryKind::Qt5MutualCount, 100, &mut rng);
            assert!(q.u < 100 && q.v < 100);
            assert_ne!(q.u, q.v);
        }
    }

    #[test]
    fn batch_len_reflects_fanout() {
        assert_eq!(SubQuery::Neighbors(1).batch_len(), 1);
        assert_eq!(SubQuery::NeighborsMany(vec![1, 2, 3].into()).batch_len(), 3);
        assert_eq!(SubQuery::CountIntersect(1, vec![1, 2].into()).batch_len(), 2);
    }

    #[test]
    fn id_lists_flatten_and_index() {
        let mut lists = IdLists::with_capacity(3, 8);
        assert!(lists.is_empty());
        lists.push(&[1, 2, 3]);
        lists.push(&[]);
        lists.push(&[9]);
        assert_eq!(lists.len(), 3);
        assert_eq!(lists.total_ids(), 4);
        assert_eq!(lists.get(0), Some(&[1, 2, 3][..]));
        assert_eq!(lists.get(1), Some(&[][..]));
        assert_eq!(lists.get(2), Some(&[9][..]));
        assert_eq!(lists.get(3), None);
        let collected: Vec<&[u32]> = lists.iter().collect();
        assert_eq!(collected, vec![&[1, 2, 3][..], &[][..], &[9][..]]);
        let from_iter: IdLists = [vec![1u32, 2, 3], vec![], vec![9]].into_iter().collect();
        assert_eq!(from_iter, lists);
    }

    #[test]
    fn id_lists_clear_and_truncate() {
        let mut lists = IdLists::default();
        lists.push(&[1, 2]);
        lists.push(&[3]);
        lists.push_id(4); // unsealed partial list
        lists.truncate_lists(2);
        assert_eq!(lists.len(), 2);
        assert_eq!(lists.total_ids(), 3);
        lists.truncate_lists(1);
        assert_eq!(lists.get(0), Some(&[1, 2][..]));
        assert_eq!(lists.total_ids(), 2);
        lists.truncate_lists(0);
        assert!(lists.is_empty());
        assert_eq!(lists.total_ids(), 0);
        lists.push(&[7]);
        lists.clear();
        assert!(lists.is_empty() && lists.total_ids() == 0);
    }

    #[test]
    fn rep_batch_clears_in_place() {
        let mut rep = RepBatch::default();
        rep.status.push(RepStatus::Ok);
        rep.lists.push(&[1, 2]);
        rep.counts.push(9);
        rep.scalars.push(1);
        rep.clear();
        assert!(rep.status.is_empty());
        assert!(rep.lists.is_empty());
        assert!(rep.counts.is_empty() && rep.scalars.is_empty());
        assert_eq!(RepStatus::default(), RepStatus::Ok);
    }
}
