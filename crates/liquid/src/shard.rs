//! A shard host: one slice of the graph plus the admission-controlled query
//! engine that serves sub-queries over it.
//!
//! "Brokers and shards implement the admission control framework described
//! in §3. They run a configurable number of query engine processes that
//! cycle between obtaining an admitted (sub-)query from the FIFO queue and
//! processing it." In the paper's evaluation, shards — where CPU is the
//! limiting resource — always run the AcceptFraction policy (§5.4).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bouncer_core::framework::{Gate, GateConfig, ServerStats, TakeOutcome, Ticker};
use bouncer_core::obs::{null_sink, Event, EventSink, SpanKind, TraceContext, Tracer};
use bouncer_core::policy::{AdmissionPolicy, RejectReason};
use bouncer_core::types::DEFAULT_TYPE;
use bouncer_metrics::spsc::Waker;
use bouncer_metrics::{Clock, Nanos};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::graph::{self, ShardData};
use crate::query::{IdLists, RepBatch, RepStatus, SubQuery, SubResponse};
use crate::rings::{ShardEngineRig, ShardRig};

/// Outcome of a sub-query as observed by the calling broker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubOutcome {
    /// The shard serviced the sub-query.
    Ok(SubResponse),
    /// The shard's admission control rejected it.
    Rejected,
    /// The shard failed to process it (bad vertex, internal error).
    Error,
    /// The caller cancelled it (a hedged duplicate whose twin won) before
    /// an engine executed it. The dequeue already refunded the batch's
    /// demand, and no processing time is recorded.
    Cancelled,
}

/// A unit of admitted work: one sub-query, or a round's whole batch from
/// one broker. A batch is one gate offer (one admission decision, one FIFO
/// entry) and one reply send, so fan-out cost no longer scales channel
/// allocations with the number of sub-queries.
enum Job {
    Single {
        sub: SubQuery,
        reply: Sender<SubOutcome>,
        /// Trace context of the parent sub-query span, when traced.
        ctx: Option<TraceContext>,
    },
    Batch {
        subs: Vec<SubQuery>,
        reply: Sender<Vec<SubOutcome>>,
        /// Trace context of the parent (per-shard) sub-query span.
        ctx: Option<TraceContext>,
        /// Cancellation token, set by the broker when a hedged twin won.
        /// Checked once, at dequeue — after the demand refund, before any
        /// execution.
        cancel: Option<Arc<AtomicBool>>,
    },
}

impl Job {
    /// Delivers the admission-rejection outcome (the early error response
    /// of §2): per-item `Rejected` for a batch.
    fn reject(self) {
        match self {
            Job::Single { reply, .. } => {
                let _ = reply.send(SubOutcome::Rejected);
            }
            Job::Batch { subs, reply, .. } => {
                let _ = reply.send(vec![SubOutcome::Rejected; subs.len()]);
            }
        }
    }
}

/// Configuration for a shard host.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Engine threads (`|PU|` on this host).
    pub engines: u32,
    /// `L_limit` on the FIFO queue.
    pub max_queue_len: Option<usize>,
    /// Policy maintenance period.
    pub tick_period: Duration,
    /// Optional observability sink for this host's gate (lifecycle events
    /// with wall-clock timestamps, plus the policy's interval events).
    pub sink: Option<Arc<dyn EventSink>>,
    /// Optional tracer. Shard engines emit `shard_queue` / `shard_service`
    /// spans for sub-queries whose incoming context has the `sampled` bit
    /// set; without a tracer the per-sub-query cost is one `Option` test.
    pub tracer: Option<Arc<Tracer>>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            engines: 2,
            max_queue_len: Some(800),
            tick_period: Duration::from_millis(100),
            sink: None,
            tracer: None,
        }
    }
}

/// Shutdown handle for rings-mode engines: they wait on SPSC wakers, not
/// on the gate's FIFO, so shutdown must set the flag and wake them.
struct RingsShutdown {
    stop: Arc<AtomicBool>,
    wakers: Vec<Arc<Waker>>,
}

/// A running shard host.
pub struct ShardHost {
    gate: Arc<Gate<Job>>,
    /// Engine threads, joined (exactly once) by [`ShardHost::shutdown`].
    /// Held behind a mutex so shutdown joins regardless of how many `Arc`
    /// clones of the host are still alive.
    engines: Mutex<Vec<JoinHandle<()>>>,
    _ticker: Ticker,
    parallelism: u32,
    rings: Option<RingsShutdown>,
}

impl ShardHost {
    /// Spawns the shard's engine threads over `data`, gating admissions
    /// with `policy`. `data` is shared, not owned: replica hosts of the
    /// same logical shard pass clones of one `Arc` and serve one CSR build.
    pub fn spawn(
        data: Arc<ShardData>,
        policy: Arc<dyn AdmissionPolicy>,
        clock: Arc<dyn Clock>,
        cfg: ShardConfig,
    ) -> Arc<Self> {
        assert!(cfg.engines > 0);
        let gate: Arc<Gate<Job>> = Arc::new(Gate::new_with_sink(
            policy.clone(),
            1, // shard-side stats are type-oblivious, like its policy
            clock.clone(),
            GateConfig {
                max_queue_len: cfg.max_queue_len,
                ..GateConfig::default()
            },
            cfg.sink.clone().unwrap_or_else(null_sink),
        ));
        let tracer = cfg.tracer.filter(|t| t.enabled());
        let engines = (0..cfg.engines)
            .map(|i| {
                let gate = Arc::clone(&gate);
                let data = Arc::clone(&data);
                let tracer = tracer.clone();
                std::thread::Builder::new()
                    .name(format!("shard{}-engine{}", data.shard(), i))
                    .spawn(move || engine_loop(&gate, &data, tracer.as_deref()))
                    .expect("failed to spawn shard engine")
            })
            .collect();
        let ticker = Ticker::spawn(policy, clock, cfg.tick_period);
        Arc::new(Self {
            gate,
            engines: Mutex::new(engines),
            _ticker: ticker,
            parallelism: cfg.engines,
            rings: None,
        })
    }

    /// Spawns the shard in rings mode: one engine thread per
    /// [`ShardEngineRig`], each servicing its own set of SPSC ring pairs
    /// instead of the gate's shared FIFO. The gate still runs the
    /// admission policy and stats; its internal queue stays empty
    /// (admission and dequeue are driven through the gate's external
    /// hooks, producer-side by the broker and consumer-side here).
    pub(crate) fn spawn_rings(
        data: Arc<ShardData>,
        policy: Arc<dyn AdmissionPolicy>,
        clock: Arc<dyn Clock>,
        cfg: ShardConfig,
        rig: ShardRig,
    ) -> Arc<Self> {
        assert_eq!(
            rig.engines.len(),
            cfg.engines as usize,
            "ring topology must match engine count"
        );
        let gate: Arc<Gate<Job>> = Arc::new(Gate::new_with_sink(
            policy.clone(),
            1,
            clock.clone(),
            GateConfig {
                max_queue_len: cfg.max_queue_len,
                ..GateConfig::default()
            },
            cfg.sink.clone().unwrap_or_else(null_sink),
        ));
        let tracer = cfg.tracer.filter(|t| t.enabled());
        let stop = Arc::new(AtomicBool::new(false));
        let wakers: Vec<Arc<Waker>> = rig.engines.iter().map(|e| Arc::clone(&e.waker)).collect();
        let engines = rig
            .engines
            .into_iter()
            .enumerate()
            .map(|(i, engine_rig)| {
                let gate = Arc::clone(&gate);
                let data = Arc::clone(&data);
                let tracer = tracer.clone();
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name(format!("shard{}-ring{}", data.shard(), i))
                    .spawn(move || {
                        rings_engine_loop(&gate, i as u32, &data, engine_rig, &stop, tracer.as_deref())
                    })
                    .expect("failed to spawn shard ring engine")
            })
            .collect();
        let ticker = Ticker::spawn(policy, clock, cfg.tick_period);
        Arc::new(Self {
            gate,
            engines: Mutex::new(engines),
            _ticker: ticker,
            parallelism: cfg.engines,
            rings: Some(RingsShutdown { stop, wakers }),
        })
    }

    /// Rings-mode admission: runs the policy and, on acceptance, returns
    /// the timestamp to stamp on the request. Called by the *broker*
    /// engine (the ring producer) before pushing a round's batch.
    pub(crate) fn ring_admit(&self) -> Result<Nanos, RejectReason> {
        self.gate.admit_external(DEFAULT_TYPE)
    }

    /// Rings-mode enqueue bookkeeping after a successful ring push.
    pub(crate) fn ring_enqueued(&self, enqueued_at: Nanos, queue_len: usize) {
        self.gate.enqueued_external(DEFAULT_TYPE, enqueued_at, queue_len);
    }

    /// Rings-mode queue-full rejection: the request ring had no room.
    pub(crate) fn ring_reject_full(&self, at: Nanos) {
        self.gate.reject_full_external(DEFAULT_TYPE, at);
    }

    /// Offers a sub-query; the returned channel yields its outcome. A
    /// rejection is delivered immediately (the early rejection of §2).
    pub fn submit(&self, sub: SubQuery) -> Receiver<SubOutcome> {
        self.submit_traced(sub, None)
    }

    /// [`ShardHost::submit`] with an incoming trace context. When the
    /// context's `sampled` bit is set (and the host has a tracer), the
    /// serving engine emits `shard_queue` / `shard_service` spans parented
    /// under `ctx.parent`.
    pub fn submit_traced(
        &self,
        sub: SubQuery,
        ctx: Option<TraceContext>,
    ) -> Receiver<SubOutcome> {
        let (tx, rx) = bounded(1);
        // The sender moves into the job — no per-sub-query clone; rejection
        // replies through the job we get back.
        if let Err((_reason, job)) = self
            .gate
            .offer(DEFAULT_TYPE, Job::Single { sub, reply: tx, ctx })
        {
            job.reject();
        }
        rx
    }

    /// Offers a round's sub-queries as **one** admission unit; the returned
    /// channel yields one outcome per sub-query, in submission order. A
    /// rejection rejects the whole batch and is delivered immediately. An
    /// empty batch resolves immediately without touching the gate.
    ///
    /// When `ctx` is sampled, the serving engine emits a single
    /// `shard_queue` / `shard_service` span pair for the whole batch,
    /// parented under `ctx.parent` (the broker's per-shard sub-query span).
    pub fn submit_batch(
        &self,
        subs: Vec<SubQuery>,
        ctx: Option<TraceContext>,
    ) -> Receiver<Vec<SubOutcome>> {
        self.submit_batch_inner(subs, ctx, None)
    }

    /// [`ShardHost::submit_batch`] plus a cancellation token. Setting the
    /// returned flag before an engine dequeues the batch makes the engine
    /// skip execution and reply [`SubOutcome::Cancelled`] per item — the
    /// dequeue's demand refund still happens, and no processing time is
    /// recorded, so cancelled work never pollutes the policy's estimates.
    /// Setting the flag after dequeue is a harmless no-op (the batch
    /// executes and replies normally); a reply always arrives either way.
    pub fn submit_batch_cancellable(
        &self,
        subs: Vec<SubQuery>,
        ctx: Option<TraceContext>,
    ) -> (Receiver<Vec<SubOutcome>>, Arc<AtomicBool>) {
        let cancel = Arc::new(AtomicBool::new(false));
        let rx = self.submit_batch_inner(subs, ctx, Some(Arc::clone(&cancel)));
        (rx, cancel)
    }

    fn submit_batch_inner(
        &self,
        subs: Vec<SubQuery>,
        ctx: Option<TraceContext>,
        cancel: Option<Arc<AtomicBool>>,
    ) -> Receiver<Vec<SubOutcome>> {
        let (tx, rx) = bounded(1);
        if subs.is_empty() {
            let _ = tx.send(Vec::new());
            return rx;
        }
        if let Err((_reason, job)) = self.gate.offer(
            DEFAULT_TYPE,
            Job::Batch {
                subs,
                reply: tx,
                ctx,
                cancel,
            },
        ) {
            job.reject();
        }
        rx
    }

    /// This host's statistics.
    pub fn stats(&self) -> &Arc<ServerStats> {
        self.gate.stats()
    }

    /// Engine parallelism (`|PU|`).
    pub fn parallelism(&self) -> u32 {
        self.parallelism
    }

    /// Current FIFO queue length.
    pub fn queue_len(&self) -> usize {
        self.gate.queue_len()
    }

    /// Stops the engines and waits for them to exit.
    ///
    /// Always joins, no matter how many `Arc` clones of the host are still
    /// held elsewhere (the seed only joined when the caller happened to
    /// hold the last strong reference, silently leaking the engine threads
    /// otherwise). Idempotent: later calls find no handles left.
    pub fn shutdown(&self) {
        self.gate.close();
        if let Some(rings) = &self.rings {
            rings.stop.store(true, Ordering::Release);
            for waker in &rings.wakers {
                waker.wake();
            }
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.engines.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Number of engine threads not yet joined — 0 after
    /// [`ShardHost::shutdown`] returns.
    pub fn engines_running(&self) -> usize {
        self.engines.lock().len()
    }
}

fn engine_loop(gate: &Gate<Job>, data: &ShardData, tracer: Option<&Tracer>) {
    let shard = data.shard() as u16;
    // Eager span emission, before the reply, so the broker never finalizes
    // a trace whose shard spans are still in flight. A batch gets one
    // queue/service span pair, matching its one FIFO entry.
    let emit_spans = |ctx: Option<TraceContext>, enqueued_at: u64, dequeued_at: u64| {
        if let (Some(tracer), Some(ctx)) = (tracer, ctx) {
            if ctx.sampled {
                tracer.emit_span(
                    ctx.trace,
                    SpanKind::ShardQueue { shard },
                    ctx.parent,
                    enqueued_at,
                    dequeued_at,
                );
                tracer.emit_span(
                    ctx.trace,
                    SpanKind::ShardService { shard },
                    ctx.parent,
                    dequeued_at,
                    gate.clock().now(),
                );
            }
        }
    };
    loop {
        match gate.take(Some(Duration::from_millis(100))) {
            TakeOutcome::Query(admitted) => {
                let (ty, enqueued_at, dequeued_at) =
                    (admitted.ty, admitted.enqueued_at, admitted.dequeued_at);
                match admitted.payload {
                    Job::Single { sub, reply, ctx } => {
                        let outcome = match execute(data, &sub) {
                            Some(resp) => SubOutcome::Ok(resp),
                            None => SubOutcome::Error,
                        };
                        gate.complete(ty, enqueued_at, dequeued_at);
                        emit_spans(ctx, enqueued_at, dequeued_at);
                        let _ = reply.send(outcome);
                    }
                    Job::Batch {
                        subs,
                        reply,
                        ctx,
                        cancel,
                    } => {
                        // A cancelled batch stops here: the dequeue above
                        // already refunded its demand, and skipping
                        // `complete` keeps it out of the processing-time
                        // average — the same shape as the expiry path.
                        if cancel.is_some_and(|c| c.load(Ordering::Acquire)) {
                            let _ = reply.send(vec![SubOutcome::Cancelled; subs.len()]);
                            continue;
                        }
                        // Items run sequentially in submission order, as if
                        // submitted back-to-back to an idle FIFO.
                        let outcomes: Vec<SubOutcome> = subs
                            .iter()
                            .map(|sub| match execute(data, sub) {
                                Some(resp) => SubOutcome::Ok(resp),
                                None => SubOutcome::Error,
                            })
                            .collect();
                        gate.complete(ty, enqueued_at, dequeued_at);
                        emit_spans(ctx, enqueued_at, dequeued_at);
                        let _ = reply.send(outcomes);
                    }
                }
            }
            TakeOutcome::Expired(admitted) => {
                // Shards do not currently set sub-query deadlines; if one
                // arrives expired, answer with an error rather than waste
                // engine time on it.
                match admitted.payload {
                    Job::Single { reply, .. } => {
                        let _ = reply.send(SubOutcome::Error);
                    }
                    Job::Batch { subs, reply, .. } => {
                        let _ = reply.send(vec![SubOutcome::Error; subs.len()]);
                    }
                }
            }
            TakeOutcome::TimedOut => {}
            TakeOutcome::Closed => return,
        }
    }
}

/// Rings-mode engine loop: sweep this engine's ring pairs, execute each
/// popped batch straight into the reply slot's [`RepBatch`], and park on
/// the engine waker when every ring is empty. Steady state touches no lock
/// and allocates nothing: request `subs` buffers and reply batches live in
/// the ring slots and are cleared, not dropped.
fn rings_engine_loop(
    gate: &Gate<Job>,
    engine: u32,
    data: &ShardData,
    mut rig: ShardEngineRig,
    stop: &AtomicBool,
    tracer: Option<&Tracer>,
) {
    let shard = data.shard() as u16;
    rig.waker.register_current();
    // Shard engines get a distinct `engine_state` index space from broker
    // engines: shard s engine i reports as 1000·(s+1)+i. Transitions
    // only — see the broker loop's breadcrumb note.
    let engine = 1000 * (data.shard() as u32 + 1) + engine;
    let mut idle = false;
    let engine_state = |parked: bool| {
        let sink = gate.sink();
        if sink.enabled() {
            sink.emit(&Event::EngineState {
                at: gate.clock().now(),
                engine,
                parked,
            });
        }
    };
    let emit_spans = |ctx: Option<TraceContext>, enqueued_at: u64, dequeued_at: u64| {
        if let (Some(tracer), Some(ctx)) = (tracer, ctx) {
            if ctx.sampled {
                tracer.emit_span(
                    ctx.trace,
                    SpanKind::ShardQueue { shard },
                    ctx.parent,
                    enqueued_at,
                    dequeued_at,
                );
                tracer.emit_span(
                    ctx.trace,
                    SpanKind::ShardService { shard },
                    ctx.parent,
                    dequeued_at,
                    gate.clock().now(),
                );
            }
        }
    };
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let mut worked = false;
        for (req, rep) in rig.ports.iter_mut() {
            // Execute inside the pop closure: the slot is ours until the
            // closure returns, and with at most one outstanding request
            // per pair nothing waits on the slot being released early.
            // The `subs` buffer travels back inside the reply so the
            // broker reclaims it (and the payload `Arc`s it holds) the
            // moment it pops — no cross-thread drop races.
            let serviced = req.try_pop(|slot| {
                let subs = std::mem::take(&mut slot.subs);
                let enqueued_at = slot.enqueued_at;
                let ctx = slot.ctx;
                let cancelled = slot
                    .cancel
                    .take()
                    .is_some_and(|c| c.load(Ordering::Acquire));
                let (dequeued_at, _expired) =
                    gate.dequeued_external(DEFAULT_TYPE, enqueued_at, None);
                let pushed = rep.try_push(|out| {
                    out.batch.clear();
                    if cancelled {
                        // Cancelled after the demand refund, before any
                        // execution: per-item Cancelled statuses, no
                        // payload (the RepBatch layout contract), and no
                        // `complete` below so the processing-time average
                        // never sees the batch.
                        out.batch
                            .status
                            .resize(subs.len(), RepStatus::Cancelled);
                    } else {
                        for sub in &subs {
                            execute_into(data, sub, &mut out.batch);
                        }
                    }
                    out.subs = subs;
                });
                // Reply capacity == request capacity and the broker pops
                // every reply before reusing the pair, so this cannot fail.
                assert!(pushed, "shard reply ring full");
                if !cancelled {
                    gate.complete(DEFAULT_TYPE, enqueued_at, dequeued_at);
                    emit_spans(ctx, enqueued_at, dequeued_at);
                }
            });
            worked |= serviced.is_some();
        }
        if worked {
            if idle {
                idle = false;
                engine_state(false);
            }
            continue;
        }
        rig.waker.prepare_park();
        if stop.load(Ordering::Acquire) || rig.ports.iter().any(|(req, _)| !req.is_empty()) {
            rig.waker.cancel_park();
            continue;
        }
        if !idle {
            idle = true;
            engine_state(true);
        }
        rig.waker.park(Duration::from_millis(1));
    }
}

/// Executes a sub-query against the shard's slice. `None` on a sub-query
/// for a vertex this shard does not own.
fn execute(data: &ShardData, sub: &SubQuery) -> Option<SubResponse> {
    match sub {
        SubQuery::Neighbors(v) => data.neighbors(*v).map(|l| SubResponse::Ids(l.to_vec())),
        SubQuery::Degree(v) => data
            .neighbors(*v)
            .map(|l| SubResponse::Count(l.len() as u64)),
        SubQuery::HasEdge(u, v) => data
            .neighbors(*u)
            .map(|l| SubResponse::Flag(l.binary_search(v).is_ok())),
        SubQuery::NeighborsMany(vs) => {
            // Degree-prefetched frontier walk: the sub-CSR offsets give
            // every owned degree in O(1), so the flattened response is
            // sized exactly (two allocations, no regrows) before any
            // neighbor list is touched — and unowned vertices bail out
            // before allocating at all.
            let mut total = 0usize;
            for v in vs.iter() {
                total += data.degree(*v)? as usize;
            }
            let mut lists = IdLists::with_capacity(vs.len(), total);
            for v in vs.iter() {
                lists.push(data.neighbors(*v)?);
            }
            Some(SubResponse::IdLists(lists))
        }
        SubQuery::DegreeMany(vs) => {
            let mut counts = Vec::with_capacity(vs.len());
            for v in vs.iter() {
                counts.push(data.neighbors(*v)?.len() as u32);
            }
            Some(SubResponse::Counts(counts))
        }
        SubQuery::CountIntersect(v, ids) => {
            let neighbors = data.neighbors(*v)?;
            // Both sides sorted: adaptive merge/gallop intersection.
            Some(SubResponse::Count(graph::intersect_count(neighbors, ids)))
        }
    }
}

/// [`execute`]'s staging twin for the rings path: appends one status plus
/// the item's payload to `rep` per the [`RepBatch`] layout contract. Keeps
/// `execute`'s all-or-none-per-item semantics — a failed `*Many` item
/// rolls back its partial payload and contributes only an `Error` status.
fn execute_into(data: &ShardData, sub: &SubQuery, rep: &mut RepBatch) {
    match sub {
        SubQuery::Neighbors(v) => match data.neighbors(*v) {
            Some(l) => {
                rep.lists.push(l);
                rep.status.push(RepStatus::Ok);
            }
            None => rep.status.push(RepStatus::Error),
        },
        SubQuery::Degree(v) => match data.neighbors(*v) {
            Some(l) => {
                rep.counts.push(l.len() as u32);
                rep.status.push(RepStatus::Ok);
            }
            None => rep.status.push(RepStatus::Error),
        },
        SubQuery::HasEdge(u, v) => match data.neighbors(*u) {
            Some(l) => {
                rep.scalars.push(u64::from(l.binary_search(v).is_ok()));
                rep.status.push(RepStatus::Ok);
            }
            None => rep.status.push(RepStatus::Error),
        },
        SubQuery::NeighborsMany(vs) => {
            let mark = rep.lists.len();
            let mut ok = true;
            // Degree prefetch: reserve the exact flattened size up front
            // so the staging buffers regrow at most once per batch.
            let total: Option<usize> = vs
                .iter()
                .try_fold(0usize, |acc, v| Some(acc + data.degree(*v)? as usize));
            if let Some(total) = total {
                rep.lists.reserve(vs.len(), total);
            }
            for v in vs.iter() {
                match data.neighbors(*v) {
                    Some(l) => rep.lists.push(l),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                rep.status.push(RepStatus::Ok);
            } else {
                rep.lists.truncate_lists(mark);
                rep.status.push(RepStatus::Error);
            }
        }
        SubQuery::DegreeMany(vs) => {
            let mark = rep.counts.len();
            let mut ok = true;
            for v in vs.iter() {
                match data.neighbors(*v) {
                    Some(l) => rep.counts.push(l.len() as u32),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                rep.status.push(RepStatus::Ok);
            } else {
                rep.counts.truncate(mark);
                rep.status.push(RepStatus::Error);
            }
        }
        SubQuery::CountIntersect(v, ids) => match data.neighbors(*v) {
            Some(neighbors) => {
                rep.scalars.push(graph::intersect_count(neighbors, ids));
                rep.status.push(RepStatus::Ok);
            }
            None => rep.status.push(RepStatus::Error),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, GraphConfig};
    use bouncer_core::policy::{AlwaysAccept, MaxQueueLength};
    use bouncer_metrics::MonotonicClock;

    fn graph() -> Graph {
        Graph::generate(&GraphConfig {
            vertices: 1_000,
            edges_per_vertex: 4,
            seed: 1,
        })
    }

    fn spawn_shard(shard: usize, n_shards: usize) -> (Graph, Arc<ShardHost>) {
        let g = graph();
        let host = ShardHost::spawn(
            Arc::new(g.shard_slice(shard, n_shards)),
            Arc::new(AlwaysAccept::new()),
            Arc::new(MonotonicClock::new()),
            ShardConfig::default(),
        );
        (g, host)
    }

    #[test]
    fn serves_neighbors_and_degree() {
        let (g, host) = spawn_shard(0, 2);
        let v = 4; // owned by shard 0 of 2
        let rx = host.submit(SubQuery::Neighbors(v));
        match rx.recv().unwrap() {
            SubOutcome::Ok(SubResponse::Ids(ids)) => assert_eq!(ids, g.neighbors(v)),
            other => panic!("{other:?}"),
        }
        let rx = host.submit(SubQuery::Degree(v));
        assert_eq!(
            rx.recv().unwrap(),
            SubOutcome::Ok(SubResponse::Count(g.degree(v) as u64))
        );
        host.shutdown();
    }

    #[test]
    fn unowned_vertex_is_an_error() {
        let (_g, host) = spawn_shard(0, 2);
        let rx = host.submit(SubQuery::Neighbors(3)); // odd -> shard 1
        assert_eq!(rx.recv().unwrap(), SubOutcome::Error);
        host.shutdown();
    }

    #[test]
    fn batched_subqueries_preserve_order() {
        let (g, host) = spawn_shard(1, 2);
        let vs = vec![1, 3, 5, 7];
        let rx = host.submit(SubQuery::NeighborsMany(vs.clone().into()));
        match rx.recv().unwrap() {
            SubOutcome::Ok(SubResponse::IdLists(lists)) => {
                assert_eq!(lists.len(), vs.len());
                for (v, l) in vs.iter().zip(lists.iter()) {
                    assert_eq!(l, g.neighbors(*v));
                }
            }
            other => panic!("{other:?}"),
        }
        host.shutdown();
    }

    #[test]
    fn batch_submission_yields_per_item_outcomes_in_order() {
        let (g, host) = spawn_shard(0, 2);
        let subs = vec![
            SubQuery::Degree(4),
            SubQuery::Neighbors(3), // unowned (odd -> shard 1): Error slot
            SubQuery::HasEdge(4, g.neighbors(4)[0]),
            SubQuery::Neighbors(6),
        ];
        let outcomes = host.submit_batch(subs, None).recv().unwrap();
        assert_eq!(outcomes.len(), 4);
        assert_eq!(outcomes[0], SubOutcome::Ok(SubResponse::Count(g.degree(4) as u64)));
        assert_eq!(outcomes[1], SubOutcome::Error);
        assert_eq!(outcomes[2], SubOutcome::Ok(SubResponse::Flag(true)));
        assert_eq!(
            outcomes[3],
            SubOutcome::Ok(SubResponse::Ids(g.neighbors(6).to_vec()))
        );
        // An empty batch resolves immediately.
        assert_eq!(host.submit_batch(Vec::new(), None).recv().unwrap(), Vec::new());
        host.shutdown();
    }

    #[test]
    fn rejected_batch_rejects_every_item() {
        let g = graph();
        let host = ShardHost::spawn(
            Arc::new(g.shard_slice(0, 1)),
            Arc::new(MaxQueueLength::new(1)),
            Arc::new(MonotonicClock::new()),
            ShardConfig {
                engines: 1,
                ..ShardConfig::default()
            },
        );
        // Saturate the single engine so later batches hit the queue limit.
        let receivers: Vec<_> = (0..64)
            .map(|_| host.submit_batch(vec![SubQuery::NeighborsMany(Arc::new((0..1000).collect())); 4], None))
            .collect();
        let outcomes: Vec<Vec<SubOutcome>> =
            receivers.into_iter().map(|rx| rx.recv().unwrap()).collect();
        assert!(outcomes
            .iter()
            .any(|os| os.iter().all(|o| *o == SubOutcome::Rejected)));
        assert!(outcomes
            .iter()
            .any(|os| os.iter().all(|o| matches!(o, SubOutcome::Ok(_)))));
        // No partial batches: rejection is all-or-nothing.
        assert!(outcomes
            .iter()
            .all(|os| !os.contains(&SubOutcome::Rejected)
                || os.iter().all(|o| *o == SubOutcome::Rejected)));
        host.shutdown();
    }

    #[test]
    fn cancelled_batch_replies_cancelled_without_executing() {
        let g = graph();
        let host = ShardHost::spawn(
            Arc::new(g.shard_slice(0, 1)),
            Arc::new(AlwaysAccept::new()),
            Arc::new(MonotonicClock::new()),
            ShardConfig {
                engines: 1,
                ..ShardConfig::default()
            },
        );
        // Park heavy batches in front of the single engine so the
        // cancellable batches sit queued long after their flags are set.
        let heavy: Vec<_> = (0..8)
            .map(|_| {
                host.submit_batch(
                    vec![SubQuery::NeighborsMany(Arc::new((0..1000).collect())); 32],
                    None,
                )
            })
            .collect();
        let pending: Vec<_> = (0..4)
            .map(|_| host.submit_batch_cancellable(vec![SubQuery::Degree(0); 3], None))
            .collect();
        for (_, cancel) in &pending {
            cancel.store(true, Ordering::Release);
        }
        for rx in heavy {
            assert!(rx.recv().unwrap().iter().all(|o| matches!(o, SubOutcome::Ok(_))));
        }
        for (rx, _) in pending {
            assert_eq!(rx.recv().unwrap(), vec![SubOutcome::Cancelled; 3]);
        }
        // Cancelled batches never reach `complete`: only the heavy ones
        // count as completed work.
        let snap = host.stats().snapshot(1_000_000_000, host.parallelism());
        assert_eq!(snap.per_type[0].completed, 8);
        host.shutdown();
    }

    #[test]
    fn uncancelled_cancellable_batch_executes_normally() {
        let (g, host) = spawn_shard(0, 1);
        let (rx, _cancel) = host.submit_batch_cancellable(vec![SubQuery::Degree(2)], None);
        assert_eq!(
            rx.recv().unwrap(),
            vec![SubOutcome::Ok(SubResponse::Count(g.degree(2) as u64))]
        );
        host.shutdown();
    }

    #[test]
    fn count_intersect_matches_bruteforce() {
        let (g, host) = spawn_shard(0, 1);
        let v = 10;
        let ids: Vec<u32> = (0..500).collect();
        let expected = g.neighbors(v).iter().filter(|n| **n < 500).count() as u64;
        let rx = host.submit(SubQuery::CountIntersect(v, ids.into()));
        assert_eq!(rx.recv().unwrap(), SubOutcome::Ok(SubResponse::Count(expected)));
        host.shutdown();
    }

    #[test]
    fn admission_rejection_is_delivered_immediately() {
        let g = graph();
        // A policy that admits one query then blocks on queue length while
        // no engines drain (0 engines impossible; use limit 0 via MaxQL(1)
        // plus a pre-filled queue instead: simplest is MaxQL(1) and two
        // rapid submissions).
        let host = ShardHost::spawn(
            Arc::new(g.shard_slice(0, 1)),
            Arc::new(MaxQueueLength::new(1)),
            Arc::new(MonotonicClock::new()),
            ShardConfig {
                engines: 1,
                ..ShardConfig::default()
            },
        );
        // Saturate: many submissions; at least some must be rejected
        // immediately while the single engine is busy.
        let receivers: Vec<_> = (0..64)
            .map(|_| host.submit(SubQuery::NeighborsMany(Arc::new((0..1000).collect()))))
            .collect();
        let outcomes: Vec<_> = receivers.into_iter().map(|rx| rx.recv().unwrap()).collect();
        assert!(outcomes.contains(&SubOutcome::Rejected));
        assert!(outcomes.iter().any(|o| matches!(o, SubOutcome::Ok(_))));
        host.shutdown();
    }

    #[test]
    fn shutdown_joins_engines_even_with_extra_arc_clones() {
        let (_g, host) = spawn_shard(0, 1);
        assert_eq!(host.engines_running(), ShardConfig::default().engines as usize);
        // Keep a second strong reference alive across shutdown — the seed's
        // `Arc::get_mut` guard silently skipped the joins in this case.
        let extra = Arc::clone(&host);
        host.shutdown();
        assert_eq!(extra.engines_running(), 0);
        // Idempotent: a second shutdown finds nothing left to join.
        extra.shutdown();
        assert_eq!(extra.engines_running(), 0);
    }

    #[test]
    fn stats_record_completions() {
        let (_g, host) = spawn_shard(0, 1);
        for v in 0..50 {
            let rx = host.submit(SubQuery::Degree(v));
            let _ = rx.recv().unwrap();
        }
        let snap = host.stats().snapshot(1_000_000_000, host.parallelism());
        assert_eq!(snap.per_type[0].completed, 50);
        host.shutdown();
    }
}
