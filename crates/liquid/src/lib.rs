//! An in-memory sharded graph database standing in for the paper's LIquid
//! cluster (§5.1, §5.4).
//!
//! LIquid's architecture, as the paper describes it, is what matters for the
//! admission-control evaluation and is faithfully reproduced here:
//!
//! * a **two-tier** deployment — *brokers* accept client queries and
//!   *shards* store slices of the graph in memory;
//! * answering a query takes **one or more communication rounds** between a
//!   broker and the shards, with the broker combining sub-query results
//!   between rounds;
//! * **every host runs the admission-control framework** (a policy, a FIFO
//!   queue, and a fixed number of query-engine processes), so queueing
//!   happens at both tiers — the effect behind Figure 13, where processing
//!   time observed by brokers *rises with load* because the shard tier
//!   itself queues;
//! * brokers run the policy under evaluation, shards run AcceptFraction.
//!
//! What is substituted relative to LinkedIn's production system (see
//! DESIGN.md §1): the Economic Graph becomes a synthetic power-law graph;
//! the production query types QT1..QT11 become graph-query templates of
//! ascending cost; hosts are thread groups in one process, connected by an
//! in-process transport or by real TCP with length-prefixed frames.

#![warn(missing_docs)]

pub mod broker;
pub mod cluster;
pub mod front;
pub mod graph;
pub mod query;
pub(crate) mod rings;
pub mod shard;
pub mod transport;
pub mod wire;

pub use broker::{Broker, RouteStrategy};
pub use front::{RemoteOutcome, TcpBrokerClient, TcpBrokerServer};
pub use cluster::{Cluster, ClusterConfig, TransportKind};
pub use graph::{Graph, GraphConfig};
pub use query::{Query, QueryKind};
pub use shard::ShardHost;
