//! Binary wire protocol for the TCP transport.
//!
//! LIquid's brokers "offer REST endpoints"; the equivalent role here —
//! a network boundary in front of each host with its own serialization
//! cost — is played by a compact length-prefixed binary protocol:
//!
//! ```text
//! frame      := u32_be length, payload[length]
//! rpc        := u64 correlation-id, u8 tag, body
//! ```
//!
//! The same envelope carries broker-bound client queries and shard-bound
//! sub-queries; correlation ids let one connection multiplex many in-flight
//! requests (responses may arrive out of order).
//!
//! # Batched sub-queries
//!
//! All sub-queries a broker round sends to one shard travel as a single
//! batch envelope (request tag [`TAG_SUBQUERY_BATCH`]) answered by a single
//! batch reply (reply tag [`TAG_SUBREPLY_BATCH`]):
//!
//! ```text
//! batch_req  := u64 id, u8 6, u32 count, count × (u8 tag, body), [trace_ctx]
//! batch_rep  := u64 id, u8 status, u8 5, u32 count,
//!               count × (u8 status, body-if-ok)
//! ```
//!
//! Per-item bodies reuse the single-message encodings, so a batch of one is
//! byte-for-byte the single body plus the 5-byte batch header.
//!
//! # Allocation-lean encode/decode
//!
//! Every encoder has a `*_into` form that appends to a caller-owned
//! `Vec<u8>`; [`begin_frame`]/[`end_frame`] reserve and patch the length
//! prefix in the same buffer so a whole frame goes out in **one**
//! `write_all`. Transports recycle those buffers through a bounded
//! [`BufferPool`] (or a per-thread scratch vec), making steady-state frame
//! encoding allocation-free. Decoders are generic over [`Buf`], so the read
//! path parses borrowed `&[u8]` scratch without copying into a fresh
//! [`Bytes`] first.
//!
//! # Trace context
//!
//! Request envelopes (queries and sub-queries, batched or not) may carry a
//! **versioned trailing trace-context field** so distributed traces survive
//! the TCP boundary:
//!
//! ```text
//! trace_ctx  := u8 version (=1), u64 trace, u64 parent, u8 flags (bit0 = sampled)
//! ```
//!
//! The field sits after the request body. Decoders that predate it never
//! required buffer exhaustion, so old peers simply ignore it, and a new
//! decoder reading an old frame sees zero remaining bytes and yields
//! `None` — the extension is backward- and forward-compatible. A present
//! but unknown version (or a truncated context) is a [`DecodeError`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bouncer_core::obs::{Event, EventSink, PoolCounters, SpanId, TraceContext, TraceId};
use bouncer_metrics::time::Nanos;
use bytes::{Buf, BufMut, Bytes};
use parking_lot::Mutex;

use crate::graph::VertexId;
use crate::query::{IdLists, Query, QueryKind, SubQuery, SubResponse};
use crate::shard::SubOutcome;

/// Hard cap on frame payloads (guards against corrupt length prefixes).
pub const MAX_FRAME: usize = 64 << 20;

/// Request tag marking a sub-query batch envelope.
pub const TAG_SUBQUERY_BATCH: u8 = 6;

/// Reply tag marking a batched sub-reply body.
pub const TAG_SUBREPLY_BATCH: u8 = 5;

/// Request tag asking the shard to cancel the in-flight request whose
/// correlation id is the envelope id. Best-effort: honored only if the
/// target is still queued when an engine dequeues it. Cancel frames carry
/// no body and produce **no reply** — the cancelled request itself replies
/// (with [`Status::Cancelled`] items) or already did.
pub const TAG_CANCEL: u8 = 7;

/// Decode failure: malformed or truncated payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub &'static str);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Outcome status on reply envelopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The request was serviced.
    Ok,
    /// Admission control rejected the request (the early error response of
    /// §2).
    Rejected,
    /// The host failed to process the request.
    Error,
    /// The request was cancelled by the caller (a hedged duplicate whose
    /// twin won the race) before an engine executed it.
    Cancelled,
}

impl Status {
    fn to_u8(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Rejected => 1,
            Status::Error => 2,
            Status::Cancelled => 3,
        }
    }

    fn from_u8(b: u8) -> Result<Self, DecodeError> {
        match b {
            0 => Ok(Status::Ok),
            1 => Ok(Status::Rejected),
            2 => Ok(Status::Error),
            3 => Ok(Status::Cancelled),
            _ => Err(DecodeError("bad status byte")),
        }
    }
}

/// Wire version of the trailing trace-context field.
const TRACE_CTX_VERSION: u8 = 1;

fn put_trace_ctx(buf: &mut Vec<u8>, ctx: Option<&TraceContext>) {
    if let Some(ctx) = ctx {
        buf.put_u8(TRACE_CTX_VERSION);
        buf.put_u64(ctx.trace.0);
        buf.put_u64(ctx.parent.0);
        buf.put_u8(u8::from(ctx.sampled));
    }
}

fn get_trace_ctx<B: Buf>(buf: &mut B) -> Result<Option<TraceContext>, DecodeError> {
    if buf.remaining() == 0 {
        return Ok(None);
    }
    let version = buf.get_u8();
    if version != TRACE_CTX_VERSION {
        return Err(DecodeError("unknown trace-context version"));
    }
    if buf.remaining() < 17 {
        return Err(DecodeError("truncated trace context"));
    }
    let trace = TraceId(buf.get_u64());
    let parent = SpanId(buf.get_u64());
    let flags = buf.get_u8();
    Ok(Some(TraceContext {
        trace,
        parent,
        sampled: flags & 1 != 0,
    }))
}

fn put_ids(buf: &mut Vec<u8>, ids: &[VertexId]) {
    buf.put_u32(ids.len() as u32);
    for &v in ids {
        buf.put_u32(v);
    }
}

fn get_ids<B: Buf>(buf: &mut B) -> Result<Vec<VertexId>, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError("truncated id list length"));
    }
    let n = buf.get_u32() as usize;
    if buf.remaining() < n * 4 {
        return Err(DecodeError("truncated id list"));
    }
    Ok((0..n).map(|_| buf.get_u32()).collect())
}

// ---------------------------------------------------------------------------
// Sub-query requests

fn put_subquery_body(buf: &mut Vec<u8>, sub: &SubQuery) {
    match sub {
        SubQuery::Neighbors(v) => {
            buf.put_u8(0);
            buf.put_u32(*v);
        }
        SubQuery::Degree(v) => {
            buf.put_u8(1);
            buf.put_u32(*v);
        }
        SubQuery::HasEdge(u, v) => {
            buf.put_u8(2);
            buf.put_u32(*u);
            buf.put_u32(*v);
        }
        SubQuery::NeighborsMany(vs) => {
            buf.put_u8(3);
            put_ids(buf, vs);
        }
        SubQuery::DegreeMany(vs) => {
            buf.put_u8(4);
            put_ids(buf, vs);
        }
        SubQuery::CountIntersect(v, ids) => {
            buf.put_u8(5);
            buf.put_u32(*v);
            put_ids(buf, ids);
        }
    }
}

fn get_subquery_body<B: Buf>(buf: &mut B) -> Result<SubQuery, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError("truncated sub-query header"));
    }
    let tag = buf.get_u8();
    decode_single_body(tag, buf)
}

/// Appends a single sub-query request envelope to `buf`, with an optional
/// trailing trace context.
pub fn encode_subquery_into(buf: &mut Vec<u8>, id: u64, sub: &SubQuery, ctx: Option<&TraceContext>) {
    buf.reserve(34 + 4 * sub.batch_len());
    buf.put_u64(id);
    put_subquery_body(buf, sub);
    put_trace_ctx(buf, ctx);
}

/// Appends a sub-query **batch** request envelope to `buf`: one
/// correlation id, `subs.len()` bodies, one optional trailing trace
/// context. The whole batch is one admission-control unit on the shard.
pub fn encode_subquery_batch_into(
    buf: &mut Vec<u8>,
    id: u64,
    subs: &[SubQuery],
    ctx: Option<&TraceContext>,
) {
    buf.reserve(32 + subs.iter().map(|s| 9 + 4 * s.batch_len()).sum::<usize>());
    buf.put_u64(id);
    buf.put_u8(TAG_SUBQUERY_BATCH);
    buf.put_u32(subs.len() as u32);
    for sub in subs {
        put_subquery_body(buf, sub);
    }
    put_trace_ctx(buf, ctx);
}

/// Encodes a sub-query request envelope, with an optional trailing trace
/// context. Allocating wrapper around [`encode_subquery_into`].
pub fn encode_subquery(id: u64, sub: &SubQuery, ctx: Option<&TraceContext>) -> Bytes {
    let mut buf = Vec::new();
    encode_subquery_into(&mut buf, id, sub, ctx);
    Bytes::from(buf)
}

/// A decoded shard-bound request: a single sub-query, a whole batch, or a
/// cancellation of an earlier request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubRequest {
    /// One sub-query (request tags 0..=5).
    Single(SubQuery),
    /// A round's coalesced sub-queries (request tag [`TAG_SUBQUERY_BATCH`]).
    Batch(Vec<SubQuery>),
    /// Cancel the in-flight request whose correlation id is this envelope's
    /// id (request tag [`TAG_CANCEL`]). No body, no reply of its own.
    Cancel,
}

/// Decodes a shard-bound request envelope, batched or single (trailing
/// trace context included, when present).
pub fn decode_subrequest<B: Buf>(
    mut buf: B,
) -> Result<(u64, SubRequest, Option<TraceContext>), DecodeError> {
    if buf.remaining() < 9 {
        return Err(DecodeError("truncated sub-query header"));
    }
    let id = buf.get_u64();
    let tag = buf.get_u8();
    if tag == TAG_CANCEL {
        return Ok((id, SubRequest::Cancel, None));
    }
    if tag == TAG_SUBQUERY_BATCH {
        if buf.remaining() < 4 {
            return Err(DecodeError("truncated batch count"));
        }
        let n = buf.get_u32() as usize;
        if n > MAX_FRAME / 2 {
            return Err(DecodeError("batch count exceeds frame bound"));
        }
        let mut subs = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            subs.push(get_subquery_body(&mut buf)?);
        }
        let ctx = get_trace_ctx(&mut buf)?;
        return Ok((id, SubRequest::Batch(subs), ctx));
    }
    let sub = decode_single_body(tag, &mut buf)?;
    let ctx = get_trace_ctx(&mut buf)?;
    Ok((id, SubRequest::Single(sub), ctx))
}

/// Decodes one sub-query body whose tag byte has already been consumed.
fn decode_single_body<B: Buf>(tag: u8, buf: &mut B) -> Result<SubQuery, DecodeError> {
    let need = |buf: &B, n: usize| {
        if buf.remaining() < n {
            Err(DecodeError("truncated sub-query body"))
        } else {
            Ok(())
        }
    };
    Ok(match tag {
        0 => {
            need(buf, 4)?;
            SubQuery::Neighbors(buf.get_u32())
        }
        1 => {
            need(buf, 4)?;
            SubQuery::Degree(buf.get_u32())
        }
        2 => {
            need(buf, 8)?;
            SubQuery::HasEdge(buf.get_u32(), buf.get_u32())
        }
        3 => SubQuery::NeighborsMany(get_ids(buf)?.into()),
        4 => SubQuery::DegreeMany(get_ids(buf)?.into()),
        5 => {
            need(buf, 4)?;
            let v = buf.get_u32();
            SubQuery::CountIntersect(v, get_ids(buf)?.into())
        }
        _ => return Err(DecodeError("bad sub-query tag")),
    })
}

/// Decodes a **single** sub-query request envelope (trailing trace context
/// included, when present). Batch envelopes are a [`DecodeError`] here —
/// use [`decode_subrequest`] on paths that accept both.
pub fn decode_subquery<B: Buf>(
    buf: B,
) -> Result<(u64, SubQuery, Option<TraceContext>), DecodeError> {
    match decode_subrequest(buf)? {
        (id, SubRequest::Single(sub), ctx) => Ok((id, sub, ctx)),
        (_, SubRequest::Batch(_), _) => Err(DecodeError("unexpected sub-query batch")),
        (_, SubRequest::Cancel, _) => Err(DecodeError("unexpected cancel request")),
    }
}

/// Appends a cancel request envelope to `buf`: the envelope id *is* the
/// correlation id of the request being cancelled.
pub fn encode_cancel_into(buf: &mut Vec<u8>, target_id: u64) {
    buf.reserve(9);
    buf.put_u64(target_id);
    buf.put_u8(TAG_CANCEL);
}

// ---------------------------------------------------------------------------
// Sub-query replies

fn put_subresponse_body(buf: &mut Vec<u8>, resp: &SubResponse) {
    match resp {
        SubResponse::Ids(ids) => {
            buf.put_u8(0);
            put_ids(buf, ids);
        }
        SubResponse::IdLists(lists) => {
            buf.put_u8(1);
            buf.put_u32(lists.len() as u32);
            for l in lists.iter() {
                put_ids(buf, l);
            }
        }
        SubResponse::Counts(cs) => {
            buf.put_u8(2);
            buf.put_u32(cs.len() as u32);
            for &c in cs {
                buf.put_u32(c);
            }
        }
        SubResponse::Count(c) => {
            buf.put_u8(3);
            buf.put_u64(*c);
        }
        SubResponse::Flag(b) => {
            buf.put_u8(4);
            buf.put_u8(*b as u8);
        }
    }
}

fn get_subresponse_body<B: Buf>(tag: u8, buf: &mut B) -> Result<SubResponse, DecodeError> {
    Ok(match tag {
        0 => SubResponse::Ids(get_ids(buf)?),
        1 => {
            if buf.remaining() < 4 {
                return Err(DecodeError("truncated list count"));
            }
            let n = buf.get_u32() as usize;
            let mut lists = IdLists::with_capacity(n.min(4096), 0);
            for _ in 0..n {
                if buf.remaining() < 4 {
                    return Err(DecodeError("truncated id list length"));
                }
                let len = buf.get_u32() as usize;
                if buf.remaining() < len * 4 {
                    return Err(DecodeError("truncated id list"));
                }
                for _ in 0..len {
                    lists.push_id(buf.get_u32());
                }
                lists.seal_list();
            }
            SubResponse::IdLists(lists)
        }
        2 => {
            if buf.remaining() < 4 {
                return Err(DecodeError("truncated counts"));
            }
            let n = buf.get_u32() as usize;
            if buf.remaining() < n * 4 {
                return Err(DecodeError("truncated counts body"));
            }
            SubResponse::Counts((0..n).map(|_| buf.get_u32()).collect())
        }
        3 => {
            if buf.remaining() < 8 {
                return Err(DecodeError("truncated count"));
            }
            SubResponse::Count(buf.get_u64())
        }
        4 => {
            if buf.remaining() < 1 {
                return Err(DecodeError("truncated flag"));
            }
            SubResponse::Flag(buf.get_u8() != 0)
        }
        _ => return Err(DecodeError("bad sub-reply tag")),
    })
}

/// Appends a single sub-query reply envelope to `buf`.
pub fn encode_subreply_into(buf: &mut Vec<u8>, id: u64, status: Status, resp: Option<&SubResponse>) {
    buf.put_u64(id);
    buf.put_u8(status.to_u8());
    match resp {
        Some(resp) => put_subresponse_body(buf, resp),
        None => buf.put_u8(255),
    }
}

/// Appends a **batched** sub-query reply envelope to `buf`: one per-item
/// `(status, body-if-ok)` entry per sub-query of the request batch, in
/// request order. A whole-batch admission rejection is simply every item
/// carrying [`Status::Rejected`].
pub fn encode_subreply_batch_into(buf: &mut Vec<u8>, id: u64, outcomes: &[SubOutcome]) {
    buf.put_u64(id);
    buf.put_u8(Status::Ok.to_u8());
    buf.put_u8(TAG_SUBREPLY_BATCH);
    buf.put_u32(outcomes.len() as u32);
    for outcome in outcomes {
        match outcome {
            SubOutcome::Ok(resp) => {
                buf.put_u8(Status::Ok.to_u8());
                put_subresponse_body(buf, resp);
            }
            SubOutcome::Rejected => buf.put_u8(Status::Rejected.to_u8()),
            SubOutcome::Error => buf.put_u8(Status::Error.to_u8()),
            SubOutcome::Cancelled => buf.put_u8(Status::Cancelled.to_u8()),
        }
    }
}

/// Encodes a sub-query reply envelope. Allocating wrapper around
/// [`encode_subreply_into`].
pub fn encode_subreply(id: u64, status: Status, resp: Option<&SubResponse>) -> Bytes {
    let mut buf = Vec::with_capacity(32);
    encode_subreply_into(&mut buf, id, status, resp);
    Bytes::from(buf)
}

/// A decoded broker-bound reply: a single outcome or a whole batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubReplyBody {
    /// Reply to a single sub-query.
    Single(Status, Option<SubResponse>),
    /// Reply to a sub-query batch, one outcome per item in request order.
    Batch(Vec<SubOutcome>),
}

/// Decodes a sub-query reply envelope, batched or single.
pub fn decode_subreply_any<B: Buf>(mut buf: B) -> Result<(u64, SubReplyBody), DecodeError> {
    if buf.remaining() < 10 {
        return Err(DecodeError("truncated sub-reply header"));
    }
    let id = buf.get_u64();
    let status = Status::from_u8(buf.get_u8())?;
    let tag = buf.get_u8();
    if tag == TAG_SUBREPLY_BATCH {
        if buf.remaining() < 4 {
            return Err(DecodeError("truncated batch count"));
        }
        let n = buf.get_u32() as usize;
        if n > MAX_FRAME / 2 {
            return Err(DecodeError("batch count exceeds frame bound"));
        }
        let mut outcomes = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            if buf.remaining() < 1 {
                return Err(DecodeError("truncated batch item"));
            }
            match Status::from_u8(buf.get_u8())? {
                Status::Ok => {
                    if buf.remaining() < 1 {
                        return Err(DecodeError("truncated batch item body"));
                    }
                    let tag = buf.get_u8();
                    outcomes.push(SubOutcome::Ok(get_subresponse_body(tag, &mut buf)?));
                }
                Status::Rejected => outcomes.push(SubOutcome::Rejected),
                Status::Error => outcomes.push(SubOutcome::Error),
                Status::Cancelled => outcomes.push(SubOutcome::Cancelled),
            }
        }
        return Ok((id, SubReplyBody::Batch(outcomes)));
    }
    let resp = if tag == 255 {
        None
    } else {
        Some(get_subresponse_body(tag, &mut buf)?)
    };
    Ok((id, SubReplyBody::Single(status, resp)))
}

/// Decodes a **single** sub-query reply envelope. Batch replies are a
/// [`DecodeError`] here — use [`decode_subreply_any`] on paths that accept
/// both.
pub fn decode_subreply<B: Buf>(buf: B) -> Result<(u64, Status, Option<SubResponse>), DecodeError> {
    match decode_subreply_any(buf)? {
        (id, SubReplyBody::Single(status, resp)) => Ok((id, status, resp)),
        (_, SubReplyBody::Batch(_)) => Err(DecodeError("unexpected sub-reply batch")),
    }
}

// ---------------------------------------------------------------------------
// Client queries

/// Appends a client query request envelope to `buf`, with an optional
/// trailing trace context.
pub fn encode_query_into(buf: &mut Vec<u8>, id: u64, q: &Query, ctx: Option<&TraceContext>) {
    buf.reserve(35);
    buf.put_u64(id);
    buf.put_u8(q.kind.index() as u8);
    buf.put_u32(q.u);
    buf.put_u32(q.v);
    put_trace_ctx(buf, ctx);
}

/// Encodes a client query request envelope, with an optional trailing
/// trace context. Allocating wrapper around [`encode_query_into`].
pub fn encode_query(id: u64, q: &Query, ctx: Option<&TraceContext>) -> Bytes {
    let mut buf = Vec::with_capacity(35);
    encode_query_into(&mut buf, id, q, ctx);
    Bytes::from(buf)
}

/// Decodes a client query request envelope (trailing trace context
/// included, when present).
pub fn decode_query<B: Buf>(mut buf: B) -> Result<(u64, Query, Option<TraceContext>), DecodeError> {
    if buf.remaining() < 17 {
        return Err(DecodeError("truncated query"));
    }
    let id = buf.get_u64();
    let kind =
        QueryKind::from_index(buf.get_u8() as usize).ok_or(DecodeError("bad query kind"))?;
    let q = Query {
        kind,
        u: buf.get_u32(),
        v: buf.get_u32(),
    };
    let ctx = get_trace_ctx(&mut buf)?;
    Ok((id, q, ctx))
}

/// Appends a client query reply envelope to `buf`.
pub fn encode_query_reply_into(buf: &mut Vec<u8>, id: u64, status: Status, value: u64) {
    buf.reserve(17);
    buf.put_u64(id);
    buf.put_u8(status.to_u8());
    buf.put_u64(value);
}

/// Encodes a client query reply envelope. Allocating wrapper around
/// [`encode_query_reply_into`].
pub fn encode_query_reply(id: u64, status: Status, value: u64) -> Bytes {
    let mut buf = Vec::with_capacity(17);
    encode_query_reply_into(&mut buf, id, status, value);
    Bytes::from(buf)
}

/// Decodes a client query reply envelope.
pub fn decode_query_reply<B: Buf>(mut buf: B) -> Result<(u64, Status, u64), DecodeError> {
    if buf.remaining() < 17 {
        return Err(DecodeError("truncated query reply"));
    }
    Ok((buf.get_u64(), Status::from_u8(buf.get_u8())?, buf.get_u64()))
}

// ---------------------------------------------------------------------------
// Framing

/// Begins a length-prefixed frame in `buf`: reserves the 4-byte prefix and
/// returns the offset to hand back to [`end_frame`]. Several frames can be
/// staged back-to-back in one buffer and flushed with a single `write_all`.
pub fn begin_frame(buf: &mut Vec<u8>) -> usize {
    let start = buf.len();
    buf.extend_from_slice(&[0u8; 4]);
    start
}

/// Ends the frame begun at `start`, patching the length prefix over the
/// bytes appended since [`begin_frame`].
pub fn end_frame(buf: &mut [u8], start: usize) {
    let len = buf.len() - start - 4;
    assert!(len <= MAX_FRAME);
    buf[start..start + 4].copy_from_slice(&(len as u32).to_be_bytes());
}

/// Writes a length-prefixed frame to a stream.
pub fn write_frame<W: std::io::Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)
}

/// Reads a length-prefixed frame from a stream.
pub fn read_frame<R: std::io::Read>(r: &mut R) -> std::io::Result<Bytes> {
    let mut payload = Vec::new();
    read_frame_into(r, &mut payload)?;
    Ok(Bytes::from(payload))
}

/// Reads a length-prefixed frame into a caller-owned scratch buffer
/// (cleared first), returning the payload length. Reusing one scratch
/// buffer per reader thread makes the steady-state read path
/// allocation-free once the buffer has grown to the connection's working
/// frame size.
pub fn read_frame_into<R: std::io::Read>(r: &mut R, buf: &mut Vec<u8>) -> std::io::Result<usize> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME",
        ));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(len)
}

// ---------------------------------------------------------------------------
// Buffer pool

/// A bounded pool of reusable encode buffers for concurrent frame writers.
///
/// Submission paths run on arbitrary caller threads, so they cannot keep a
/// per-thread scratch vec the way reader/responder loop threads do; the
/// pool gives them recycled buffers instead. Bounded two ways so bursts
/// cannot bloat it: at most `max_pooled` buffers are retained, and a
/// buffer that grew beyond `max_retained_capacity` is dropped rather than
/// parked (guarding against one giant frame pinning memory forever).
pub struct BufferPool {
    bufs: Mutex<Vec<Vec<u8>>>,
    max_pooled: usize,
    max_retained_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufferPool {
    /// A pool retaining at most `max_pooled` buffers of at most
    /// `max_retained_capacity` bytes each.
    pub fn new(max_pooled: usize, max_retained_capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            bufs: Mutex::new(Vec::with_capacity(max_pooled)),
            max_pooled,
            max_retained_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// A pool sized for a transport client: one buffer per plausibly
    /// concurrent submitter, capped at 64 KiB retained each.
    pub fn for_transport() -> Arc<Self> {
        Self::new(32, 64 << 10)
    }

    /// Takes a cleared buffer from the pool (or allocates a fresh one).
    pub fn get(self: &Arc<Self>) -> PooledBuf {
        let recycled = self.bufs.lock().pop();
        match &recycled {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        PooledBuf {
            buf: recycled.unwrap_or_default(),
            pool: Arc::clone(self),
        }
    }

    /// Buffers currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.bufs.lock().len()
    }

    /// A snapshot of the pool's hit/miss totals and current occupancy.
    pub fn counters(&self) -> PoolCounters {
        PoolCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            pooled: self.pooled() as u64,
        }
    }

    /// Emits an [`Event::PoolStats`] snapshot of this pool to `sink`.
    ///
    /// Call this at natural boundaries (shutdown, periodic flushes); the
    /// hot `get()` path only bumps relaxed atomics.
    pub fn emit_stats(&self, label: &'static str, sink: &dyn EventSink, at: Nanos) {
        let c = self.counters();
        sink.emit(&Event::PoolStats {
            at,
            pool: label,
            hits: c.hits,
            misses: c.misses,
            pooled: c.pooled,
        });
    }

    fn put_back(&self, mut buf: Vec<u8>) {
        if buf.capacity() > self.max_retained_capacity {
            return;
        }
        buf.clear();
        let mut bufs = self.bufs.lock();
        if bufs.len() < self.max_pooled {
            bufs.push(buf);
        }
    }
}

/// A pooled scratch buffer; returns to its [`BufferPool`] on drop.
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: Arc<BufferPool>,
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        self.pool.put_back(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn sample_subqueries() -> Vec<SubQuery> {
        vec![
            SubQuery::Neighbors(7),
            SubQuery::Degree(9),
            SubQuery::HasEdge(1, 2),
            SubQuery::NeighborsMany(vec![1, 2, 3].into()),
            SubQuery::DegreeMany(Vec::new().into()),
            SubQuery::CountIntersect(5, vec![1, 4, 9].into()),
        ]
    }

    #[test]
    fn subquery_round_trips() {
        let cases = sample_subqueries();
        let ctx = TraceContext {
            trace: TraceId(77),
            parent: SpanId(88),
            sampled: true,
        };
        for (i, sub) in cases.iter().enumerate() {
            let bytes = encode_subquery(i as u64, sub, None);
            let (id, got, got_ctx) = decode_subquery(bytes).unwrap();
            assert_eq!(id, i as u64);
            assert_eq!(&got, sub);
            assert_eq!(got_ctx, None);

            let bytes = encode_subquery(i as u64, sub, Some(&ctx));
            let (_, got, got_ctx) = decode_subquery(bytes).unwrap();
            assert_eq!(&got, sub);
            assert_eq!(got_ctx, Some(ctx));
        }
    }

    #[test]
    fn subquery_batch_round_trips() {
        let subs = sample_subqueries();
        let ctx = TraceContext {
            trace: TraceId(5),
            parent: SpanId(6),
            sampled: true,
        };
        for ctx in [None, Some(&ctx)] {
            let mut buf = Vec::new();
            encode_subquery_batch_into(&mut buf, 42, &subs, ctx);
            let (id, req, got_ctx) = decode_subrequest(&buf[..]).unwrap();
            assert_eq!(id, 42);
            assert_eq!(req, SubRequest::Batch(subs.clone()));
            assert_eq!(got_ctx.as_ref(), ctx);
        }
        // An empty batch is legal on the wire.
        let mut buf = Vec::new();
        encode_subquery_batch_into(&mut buf, 1, &[], None);
        let (_, req, _) = decode_subrequest(&buf[..]).unwrap();
        assert_eq!(req, SubRequest::Batch(Vec::new()));
        // The single-only decoder refuses batches.
        assert!(decode_subquery(&buf[..]).is_err());
    }

    #[test]
    fn subreply_round_trips() {
        let cases = [
            (Status::Ok, Some(SubResponse::Ids(vec![1, 2]))),
            (
                Status::Ok,
                Some(SubResponse::IdLists(
                    [vec![1u32], vec![]].into_iter().collect(),
                )),
            ),
            (Status::Ok, Some(SubResponse::Counts(vec![3, 4, 5]))),
            (Status::Ok, Some(SubResponse::Count(42))),
            (Status::Ok, Some(SubResponse::Flag(true))),
            (Status::Rejected, None),
            (Status::Error, None),
        ];
        for (i, (status, resp)) in cases.iter().enumerate() {
            let bytes = encode_subreply(i as u64, *status, resp.as_ref());
            let (id, s, r) = decode_subreply(bytes).unwrap();
            assert_eq!(id, i as u64);
            assert_eq!(s, *status);
            assert_eq!(&r, resp);
        }
    }

    #[test]
    fn cancel_request_round_trips() {
        let mut buf = Vec::new();
        encode_cancel_into(&mut buf, 0xDEAD_BEEF);
        let (id, req, ctx) = decode_subrequest(&buf[..]).unwrap();
        assert_eq!(id, 0xDEAD_BEEF);
        assert_eq!(req, SubRequest::Cancel);
        assert_eq!(ctx, None);
        // The single-only decoder refuses cancels.
        assert!(decode_subquery(&buf[..]).is_err());
    }

    #[test]
    fn subreply_batch_round_trips() {
        let outcomes = vec![
            SubOutcome::Ok(SubResponse::Count(7)),
            SubOutcome::Rejected,
            SubOutcome::Error,
            SubOutcome::Cancelled,
            SubOutcome::Ok(SubResponse::IdLists(
                [vec![1u32, 2], vec![3]].into_iter().collect(),
            )),
            SubOutcome::Ok(SubResponse::Flag(false)),
        ];
        let mut buf = Vec::new();
        encode_subreply_batch_into(&mut buf, 9, &outcomes);
        let (id, body) = decode_subreply_any(&buf[..]).unwrap();
        assert_eq!(id, 9);
        assert_eq!(body, SubReplyBody::Batch(outcomes));
        // The single-only decoder refuses batch replies.
        assert!(decode_subreply(&buf[..]).is_err());
        // Truncating inside the batch body errors, never panics.
        for cut in 0..buf.len() {
            assert!(decode_subreply_any(&buf[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn query_round_trips() {
        let ctx = TraceContext {
            trace: TraceId(123),
            parent: SpanId(456),
            sampled: false,
        };
        for kind in QueryKind::ALL {
            let q = Query { kind, u: 11, v: 22 };
            let (id, got, got_ctx) = decode_query(encode_query(3, &q, None)).unwrap();
            assert_eq!(id, 3);
            assert_eq!(got, q);
            assert_eq!(got_ctx, None);
            let (_, got, got_ctx) = decode_query(encode_query(3, &q, Some(&ctx))).unwrap();
            assert_eq!(got, q);
            assert_eq!(got_ctx, Some(ctx));
        }
        let (id, s, v) = decode_query_reply(encode_query_reply(4, Status::Ok, 99)).unwrap();
        assert_eq!((id, s, v), (4, Status::Ok, 99));
    }

    #[test]
    fn trace_ctx_rejects_bad_version_and_truncation() {
        let q = Query {
            kind: QueryKind::ALL[0],
            u: 1,
            v: 2,
        };
        let ctx = TraceContext {
            trace: TraceId(9),
            parent: SpanId(10),
            sampled: true,
        };
        let full = encode_query(1, &q, Some(&ctx));
        let raw = full.as_slice();
        // Truncate inside the trailing context: every prefix that cuts the
        // context short must error, never panic.
        for cut in 18..raw.len() {
            assert!(
                decode_query(&raw[..cut]).is_err(),
                "prefix of {cut} bytes should be rejected"
            );
        }
        // Corrupt the version byte (first byte after the 17-byte body).
        let mut bad = raw.to_vec();
        bad[17] = 2;
        assert_eq!(
            decode_query(&bad[..]),
            Err(DecodeError("unknown trace-context version"))
        );
    }

    #[test]
    fn truncated_payloads_error_cleanly() {
        assert!(decode_subquery(Bytes::from_static(&[0, 1, 2])).is_err());
        assert!(decode_subreply(Bytes::from_static(&[0; 9])).is_err());
        assert!(decode_query(Bytes::from_static(&[0; 5])).is_err());
        // Bad tags.
        let mut b = BytesMut::new();
        b.put_u64(1);
        b.put_u8(99);
        b.put_u32(0);
        assert!(decode_subquery(b.freeze()).is_err());
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().as_ref(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().as_ref(), b"");
        assert!(read_frame(&mut cursor).is_err()); // EOF
    }

    #[test]
    fn staged_frames_match_write_frame_layout() {
        // begin/end_frame in one buffer must produce byte-identical output
        // to write_frame per payload.
        let payloads: [&[u8]; 3] = [b"alpha", b"", b"bee"];
        let mut staged = Vec::new();
        for p in payloads {
            let s = begin_frame(&mut staged);
            staged.extend_from_slice(p);
            end_frame(&mut staged, s);
        }
        let mut reference = Vec::new();
        for p in payloads {
            write_frame(&mut reference, p).unwrap();
        }
        assert_eq!(staged, reference);
        // And read_frame_into walks them back out, reusing one scratch.
        let mut cursor = std::io::Cursor::new(staged);
        let mut scratch = Vec::new();
        for p in payloads {
            let n = read_frame_into(&mut cursor, &mut scratch).unwrap();
            assert_eq!(&scratch[..n], p);
        }
        assert!(read_frame_into(&mut cursor, &mut scratch).is_err());
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.extend_from_slice(&[0; 16]);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn buffer_pool_recycles_within_bounds() {
        let pool = BufferPool::new(2, 64);
        {
            let mut a = pool.get();
            a.extend_from_slice(&[1; 10]);
            let mut b = pool.get();
            b.extend_from_slice(&[2; 10]);
            let _c = pool.get();
        }
        // Only two buffers parked, despite three returns.
        assert_eq!(pool.pooled(), 2);
        // Reuse comes back cleared.
        let buf = pool.get();
        assert!(buf.is_empty());
        assert!(buf.capacity() > 0);
        drop(buf);
        // A buffer grown beyond the retention cap is dropped, not parked.
        {
            let mut big = pool.get();
            big.resize(1024, 0);
        }
        assert!(pool.bufs.lock().iter().all(|b| b.capacity() <= 64));
    }

    #[test]
    fn buffer_pool_counts_hits_and_misses() {
        let pool = BufferPool::new(2, 64);
        // Empty pool: first two gets are misses.
        let a = pool.get();
        let b = pool.get();
        drop(a);
        drop(b);
        // Both parked now; the next two gets are hits.
        let a = pool.get();
        let b = pool.get();
        let c = pool.counters();
        assert_eq!((c.hits, c.misses, c.pooled), (2, 2, 0));
        drop(a);
        drop(b);
        assert_eq!(pool.counters().pooled, 2);

        // The snapshot reaches a sink as one pool_stats event.
        let sink = bouncer_core::obs::MemorySink::new();
        pool.emit_stats("shard_client", &sink, 99);
        let events = sink.events();
        assert_eq!(events.len(), 1);
        match events[0] {
            Event::PoolStats {
                at,
                pool: label,
                hits,
                misses,
                pooled,
            } => {
                assert_eq!((at, label), (99, "shard_client"));
                assert_eq!((hits, misses, pooled), (2, 2, 2));
            }
            ref other => panic!("unexpected event {other:?}"),
        }
    }
}
