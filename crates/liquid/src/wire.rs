//! Binary wire protocol for the TCP transport.
//!
//! LIquid's brokers "offer REST endpoints"; the equivalent role here —
//! a network boundary in front of each host with its own serialization
//! cost — is played by a compact length-prefixed binary protocol:
//!
//! ```text
//! frame      := u32_be length, payload[length]
//! rpc        := u64 correlation-id, u8 tag, body
//! ```
//!
//! The same envelope carries broker-bound client queries and shard-bound
//! sub-queries; correlation ids let one connection multiplex many in-flight
//! requests (responses may arrive out of order).
//!
//! # Trace context
//!
//! Request envelopes (queries and sub-queries) may carry a **versioned
//! trailing trace-context field** so distributed traces survive the TCP
//! boundary:
//!
//! ```text
//! trace_ctx  := u8 version (=1), u64 trace, u64 parent, u8 flags (bit0 = sampled)
//! ```
//!
//! The field sits after the request body. Decoders that predate it never
//! required buffer exhaustion, so old peers simply ignore it, and a new
//! decoder reading an old frame sees zero remaining bytes and yields
//! `None` — the extension is backward- and forward-compatible. A present
//! but unknown version (or a truncated context) is a [`DecodeError`].

use bouncer_core::obs::{SpanId, TraceContext, TraceId};
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::graph::VertexId;
use crate::query::{Query, QueryKind, SubQuery, SubResponse};

/// Hard cap on frame payloads (guards against corrupt length prefixes).
pub const MAX_FRAME: usize = 64 << 20;

/// Decode failure: malformed or truncated payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub &'static str);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Outcome status on reply envelopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The request was serviced.
    Ok,
    /// Admission control rejected the request (the early error response of
    /// §2).
    Rejected,
    /// The host failed to process the request.
    Error,
}

impl Status {
    fn to_u8(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Rejected => 1,
            Status::Error => 2,
        }
    }

    fn from_u8(b: u8) -> Result<Self, DecodeError> {
        match b {
            0 => Ok(Status::Ok),
            1 => Ok(Status::Rejected),
            2 => Ok(Status::Error),
            _ => Err(DecodeError("bad status byte")),
        }
    }
}

/// Wire version of the trailing trace-context field.
const TRACE_CTX_VERSION: u8 = 1;

fn put_trace_ctx(buf: &mut BytesMut, ctx: Option<&TraceContext>) {
    if let Some(ctx) = ctx {
        buf.put_u8(TRACE_CTX_VERSION);
        buf.put_u64(ctx.trace.0);
        buf.put_u64(ctx.parent.0);
        buf.put_u8(u8::from(ctx.sampled));
    }
}

fn get_trace_ctx(buf: &mut Bytes) -> Result<Option<TraceContext>, DecodeError> {
    if buf.remaining() == 0 {
        return Ok(None);
    }
    let version = buf.get_u8();
    if version != TRACE_CTX_VERSION {
        return Err(DecodeError("unknown trace-context version"));
    }
    if buf.remaining() < 17 {
        return Err(DecodeError("truncated trace context"));
    }
    let trace = TraceId(buf.get_u64());
    let parent = SpanId(buf.get_u64());
    let flags = buf.get_u8();
    Ok(Some(TraceContext {
        trace,
        parent,
        sampled: flags & 1 != 0,
    }))
}

fn put_ids(buf: &mut BytesMut, ids: &[VertexId]) {
    buf.put_u32(ids.len() as u32);
    for &v in ids {
        buf.put_u32(v);
    }
}

fn get_ids(buf: &mut Bytes) -> Result<Vec<VertexId>, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError("truncated id list length"));
    }
    let n = buf.get_u32() as usize;
    if buf.remaining() < n * 4 {
        return Err(DecodeError("truncated id list"));
    }
    Ok((0..n).map(|_| buf.get_u32()).collect())
}

/// Encodes a sub-query request envelope, with an optional trailing trace
/// context.
pub fn encode_subquery(id: u64, sub: &SubQuery, ctx: Option<&TraceContext>) -> Bytes {
    let mut buf = BytesMut::with_capacity(34 + 4 * sub.batch_len());
    buf.put_u64(id);
    match sub {
        SubQuery::Neighbors(v) => {
            buf.put_u8(0);
            buf.put_u32(*v);
        }
        SubQuery::Degree(v) => {
            buf.put_u8(1);
            buf.put_u32(*v);
        }
        SubQuery::HasEdge(u, v) => {
            buf.put_u8(2);
            buf.put_u32(*u);
            buf.put_u32(*v);
        }
        SubQuery::NeighborsMany(vs) => {
            buf.put_u8(3);
            put_ids(&mut buf, vs);
        }
        SubQuery::DegreeMany(vs) => {
            buf.put_u8(4);
            put_ids(&mut buf, vs);
        }
        SubQuery::CountIntersect(v, ids) => {
            buf.put_u8(5);
            buf.put_u32(*v);
            put_ids(&mut buf, ids);
        }
    }
    put_trace_ctx(&mut buf, ctx);
    buf.freeze()
}

/// Decodes a sub-query request envelope (trailing trace context included,
/// when present).
pub fn decode_subquery(
    mut buf: Bytes,
) -> Result<(u64, SubQuery, Option<TraceContext>), DecodeError> {
    if buf.remaining() < 9 {
        return Err(DecodeError("truncated sub-query header"));
    }
    let id = buf.get_u64();
    let tag = buf.get_u8();
    let need = |buf: &Bytes, n: usize| {
        if buf.remaining() < n {
            Err(DecodeError("truncated sub-query body"))
        } else {
            Ok(())
        }
    };
    let sub = match tag {
        0 => {
            need(&buf, 4)?;
            SubQuery::Neighbors(buf.get_u32())
        }
        1 => {
            need(&buf, 4)?;
            SubQuery::Degree(buf.get_u32())
        }
        2 => {
            need(&buf, 8)?;
            SubQuery::HasEdge(buf.get_u32(), buf.get_u32())
        }
        3 => SubQuery::NeighborsMany(get_ids(&mut buf)?),
        4 => SubQuery::DegreeMany(get_ids(&mut buf)?),
        5 => {
            need(&buf, 4)?;
            let v = buf.get_u32();
            SubQuery::CountIntersect(v, get_ids(&mut buf)?)
        }
        _ => return Err(DecodeError("bad sub-query tag")),
    };
    let ctx = get_trace_ctx(&mut buf)?;
    Ok((id, sub, ctx))
}

/// Encodes a sub-query reply envelope.
pub fn encode_subreply(id: u64, status: Status, resp: Option<&SubResponse>) -> Bytes {
    let mut buf = BytesMut::with_capacity(32);
    buf.put_u64(id);
    buf.put_u8(status.to_u8());
    if let Some(resp) = resp {
        match resp {
            SubResponse::Ids(ids) => {
                buf.put_u8(0);
                put_ids(&mut buf, ids);
            }
            SubResponse::IdLists(lists) => {
                buf.put_u8(1);
                buf.put_u32(lists.len() as u32);
                for l in lists {
                    put_ids(&mut buf, l);
                }
            }
            SubResponse::Counts(cs) => {
                buf.put_u8(2);
                buf.put_u32(cs.len() as u32);
                for &c in cs {
                    buf.put_u32(c);
                }
            }
            SubResponse::Count(c) => {
                buf.put_u8(3);
                buf.put_u64(*c);
            }
            SubResponse::Flag(b) => {
                buf.put_u8(4);
                buf.put_u8(*b as u8);
            }
        }
    } else {
        buf.put_u8(255);
    }
    buf.freeze()
}

/// Decodes a sub-query reply envelope.
pub fn decode_subreply(mut buf: Bytes) -> Result<(u64, Status, Option<SubResponse>), DecodeError> {
    if buf.remaining() < 10 {
        return Err(DecodeError("truncated sub-reply header"));
    }
    let id = buf.get_u64();
    let status = Status::from_u8(buf.get_u8())?;
    let tag = buf.get_u8();
    let resp = match tag {
        0 => Some(SubResponse::Ids(get_ids(&mut buf)?)),
        1 => {
            if buf.remaining() < 4 {
                return Err(DecodeError("truncated list count"));
            }
            let n = buf.get_u32() as usize;
            let mut lists = Vec::with_capacity(n);
            for _ in 0..n {
                lists.push(get_ids(&mut buf)?);
            }
            Some(SubResponse::IdLists(lists))
        }
        2 => {
            if buf.remaining() < 4 {
                return Err(DecodeError("truncated counts"));
            }
            let n = buf.get_u32() as usize;
            if buf.remaining() < n * 4 {
                return Err(DecodeError("truncated counts body"));
            }
            Some(SubResponse::Counts((0..n).map(|_| buf.get_u32()).collect()))
        }
        3 => {
            if buf.remaining() < 8 {
                return Err(DecodeError("truncated count"));
            }
            Some(SubResponse::Count(buf.get_u64()))
        }
        4 => {
            if buf.remaining() < 1 {
                return Err(DecodeError("truncated flag"));
            }
            Some(SubResponse::Flag(buf.get_u8() != 0))
        }
        255 => None,
        _ => return Err(DecodeError("bad sub-reply tag")),
    };
    Ok((id, status, resp))
}

/// Encodes a client query request envelope, with an optional trailing
/// trace context.
pub fn encode_query(id: u64, q: &Query, ctx: Option<&TraceContext>) -> Bytes {
    let mut buf = BytesMut::with_capacity(35);
    buf.put_u64(id);
    buf.put_u8(q.kind.index() as u8);
    buf.put_u32(q.u);
    buf.put_u32(q.v);
    put_trace_ctx(&mut buf, ctx);
    buf.freeze()
}

/// Decodes a client query request envelope (trailing trace context
/// included, when present).
pub fn decode_query(mut buf: Bytes) -> Result<(u64, Query, Option<TraceContext>), DecodeError> {
    if buf.remaining() < 17 {
        return Err(DecodeError("truncated query"));
    }
    let id = buf.get_u64();
    let kind =
        QueryKind::from_index(buf.get_u8() as usize).ok_or(DecodeError("bad query kind"))?;
    let q = Query {
        kind,
        u: buf.get_u32(),
        v: buf.get_u32(),
    };
    let ctx = get_trace_ctx(&mut buf)?;
    Ok((id, q, ctx))
}

/// Encodes a client query reply envelope.
pub fn encode_query_reply(id: u64, status: Status, value: u64) -> Bytes {
    let mut buf = BytesMut::with_capacity(17);
    buf.put_u64(id);
    buf.put_u8(status.to_u8());
    buf.put_u64(value);
    buf.freeze()
}

/// Decodes a client query reply envelope.
pub fn decode_query_reply(mut buf: Bytes) -> Result<(u64, Status, u64), DecodeError> {
    if buf.remaining() < 17 {
        return Err(DecodeError("truncated query reply"));
    }
    Ok((buf.get_u64(), Status::from_u8(buf.get_u8())?, buf.get_u64()))
}

/// Writes a length-prefixed frame to a stream.
pub fn write_frame<W: std::io::Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)
}

/// Reads a length-prefixed frame from a stream.
pub fn read_frame<R: std::io::Read>(r: &mut R) -> std::io::Result<Bytes> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Bytes::from(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subquery_round_trips() {
        let cases = [
            SubQuery::Neighbors(7),
            SubQuery::Degree(9),
            SubQuery::HasEdge(1, 2),
            SubQuery::NeighborsMany(vec![1, 2, 3]),
            SubQuery::DegreeMany(vec![]),
            SubQuery::CountIntersect(5, vec![1, 4, 9]),
        ];
        let ctx = TraceContext {
            trace: TraceId(77),
            parent: SpanId(88),
            sampled: true,
        };
        for (i, sub) in cases.iter().enumerate() {
            let bytes = encode_subquery(i as u64, sub, None);
            let (id, got, got_ctx) = decode_subquery(bytes).unwrap();
            assert_eq!(id, i as u64);
            assert_eq!(&got, sub);
            assert_eq!(got_ctx, None);

            let bytes = encode_subquery(i as u64, sub, Some(&ctx));
            let (_, got, got_ctx) = decode_subquery(bytes).unwrap();
            assert_eq!(&got, sub);
            assert_eq!(got_ctx, Some(ctx));
        }
    }

    #[test]
    fn subreply_round_trips() {
        let cases = [
            (Status::Ok, Some(SubResponse::Ids(vec![1, 2]))),
            (Status::Ok, Some(SubResponse::IdLists(vec![vec![1], vec![]]))),
            (Status::Ok, Some(SubResponse::Counts(vec![3, 4, 5]))),
            (Status::Ok, Some(SubResponse::Count(42))),
            (Status::Ok, Some(SubResponse::Flag(true))),
            (Status::Rejected, None),
            (Status::Error, None),
        ];
        for (i, (status, resp)) in cases.iter().enumerate() {
            let bytes = encode_subreply(i as u64, *status, resp.as_ref());
            let (id, s, r) = decode_subreply(bytes).unwrap();
            assert_eq!(id, i as u64);
            assert_eq!(s, *status);
            assert_eq!(&r, resp);
        }
    }

    #[test]
    fn query_round_trips() {
        let ctx = TraceContext {
            trace: TraceId(123),
            parent: SpanId(456),
            sampled: false,
        };
        for kind in QueryKind::ALL {
            let q = Query { kind, u: 11, v: 22 };
            let (id, got, got_ctx) = decode_query(encode_query(3, &q, None)).unwrap();
            assert_eq!(id, 3);
            assert_eq!(got, q);
            assert_eq!(got_ctx, None);
            let (_, got, got_ctx) = decode_query(encode_query(3, &q, Some(&ctx))).unwrap();
            assert_eq!(got, q);
            assert_eq!(got_ctx, Some(ctx));
        }
        let (id, s, v) = decode_query_reply(encode_query_reply(4, Status::Ok, 99)).unwrap();
        assert_eq!((id, s, v), (4, Status::Ok, 99));
    }

    #[test]
    fn trace_ctx_rejects_bad_version_and_truncation() {
        let q = Query {
            kind: QueryKind::ALL[0],
            u: 1,
            v: 2,
        };
        let ctx = TraceContext {
            trace: TraceId(9),
            parent: SpanId(10),
            sampled: true,
        };
        let full = encode_query(1, &q, Some(&ctx));
        let raw = full.as_slice();
        // Truncate inside the trailing context: every prefix that cuts the
        // context short must error, never panic.
        for cut in 18..raw.len() {
            assert!(
                decode_query(Bytes::from(raw[..cut].to_vec())).is_err(),
                "prefix of {cut} bytes should be rejected"
            );
        }
        // Corrupt the version byte (first byte after the 17-byte body).
        let mut bad = raw.to_vec();
        bad[17] = 2;
        assert_eq!(
            decode_query(Bytes::from(bad)),
            Err(DecodeError("unknown trace-context version"))
        );
    }

    #[test]
    fn truncated_payloads_error_cleanly() {
        assert!(decode_subquery(Bytes::from_static(&[0, 1, 2])).is_err());
        assert!(decode_subreply(Bytes::from_static(&[0; 9])).is_err());
        assert!(decode_query(Bytes::from_static(&[0; 5])).is_err());
        // Bad tags.
        let mut b = BytesMut::new();
        b.put_u64(1);
        b.put_u8(99);
        b.put_u32(0);
        assert!(decode_subquery(b.freeze()).is_err());
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().as_ref(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().as_ref(), b"");
        assert!(read_frame(&mut cursor).is_err()); // EOF
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.extend_from_slice(&[0; 16]);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }
}
