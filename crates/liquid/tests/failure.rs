//! Failure injection: the cluster's behavior when pieces go away.
//!
//! The paper motivates admission control partly with "unplanned reduction
//! in the system's capacity … from network outages, node failures" (§1);
//! these tests check that our substrate degrades the way a production
//! system must — failed sub-queries become failed queries, not hangs or
//! panics, and the surviving hosts keep serving.

use std::sync::Arc;
use std::time::Duration;

use bouncer_core::obs::TraceContext;
use bouncer_core::policy::AlwaysAccept;
use bouncer_metrics::MonotonicClock;
use crossbeam::channel::Receiver;
use liquid::broker::{Broker, BrokerConfig, ClientOutcome, RouteStrategy};
use liquid::graph::{Graph, GraphConfig};
use liquid::query::{Query, QueryKind, SubQuery};
use liquid::shard::{ShardConfig, ShardHost, SubOutcome};
use liquid::transport::{
    CancelHandle, InProcShardClient, ShardClient, TcpShardClient, TcpShardServer,
};

fn graph() -> Graph {
    Graph::generate(&GraphConfig {
        vertices: 5_000,
        edges_per_vertex: 5,
        seed: 13,
    })
}

fn spawn_shards(g: &Graph, n: usize) -> Vec<Arc<ShardHost>> {
    let clock: Arc<MonotonicClock> = Arc::new(MonotonicClock::new());
    (0..n)
        .map(|s| {
            ShardHost::spawn(
                Arc::new(g.shard_slice(s, n)),
                Arc::new(AlwaysAccept::new()),
                clock.clone(),
                ShardConfig::default(),
            )
        })
        .collect()
}

/// A dead shard (closed gate) fails queries that need it, while queries
/// answerable by the surviving shard still succeed.
#[test]
fn queries_survive_a_shard_outage_partially() {
    let g = graph();
    let shards = spawn_shards(&g, 2);
    let clients: Vec<Arc<dyn ShardClient>> = shards
        .iter()
        .map(|h| Arc::new(InProcShardClient::new(Arc::clone(h))) as Arc<dyn ShardClient>)
        .collect();
    let broker = Broker::spawn(
        clients,
        Arc::new(AlwaysAccept::new()),
        Arc::new(MonotonicClock::new()),
        BrokerConfig {
            subquery_timeout: Duration::from_millis(500),
            ..BrokerConfig::default()
        },
    );

    // Kill shard 1 (odd vertices).
    Arc::clone(&shards[1]).shutdown();

    // Degree of an even vertex: shard 0 answers.
    let ok = broker.execute(Query {
        kind: QueryKind::Qt1Degree,
        u: 4,
        v: 0,
    });
    assert!(matches!(ok, ClientOutcome::Ok(_)), "{ok:?}");

    // Degree of an odd vertex: the dead shard can't answer. Its closed
    // gate refuses the sub-query, which surfaces to the client as a
    // shard-side rejection — the same fail-fast signal as load shedding,
    // and the right trigger for client failover either way. No hang.
    let dead = broker.execute(Query {
        kind: QueryKind::Qt1Degree,
        u: 5,
        v: 0,
    });
    assert!(
        matches!(dead, ClientOutcome::ShardRejected | ClientOutcome::Failed),
        "{dead:?}"
    );

    broker.shutdown();
    Arc::clone(&shards[0]).shutdown();
}

/// Submissions to a closed shard host fail fast as rejections, not hangs.
#[test]
fn closed_shard_rejects_submissions_immediately() {
    let g = graph();
    let shards = spawn_shards(&g, 1);
    let host = Arc::clone(&shards[0]);
    Arc::clone(&host).shutdown();
    let rx = host.submit(SubQuery::Degree(0));
    // The gate is closed: the push fails and a rejection is delivered.
    assert_eq!(
        rx.recv_timeout(Duration::from_secs(1)).unwrap(),
        SubOutcome::Rejected
    );
}

/// Dropping a TCP shard server mid-conversation fails in-flight and future
/// requests with errors instead of deadlocking the broker-side client.
#[test]
fn tcp_disconnect_fails_pending_requests() {
    let g = graph();
    let shards = spawn_shards(&g, 1);
    let server = TcpShardServer::serve(Arc::clone(&shards[0]), "127.0.0.1:0").unwrap();
    let client = TcpShardClient::connect(server.addr(), 1).unwrap();

    // Healthy round trip first.
    let rx = client.submit(SubQuery::Degree(2), None);
    assert!(matches!(
        rx.recv_timeout(Duration::from_secs(2)).unwrap(),
        SubOutcome::Ok(_)
    ));

    // Take the backend down: stop accepting AND close the shard host so the
    // per-connection handlers drain and sockets die.
    server.stop();
    Arc::clone(&shards[0]).shutdown();

    // New submissions either error on write or get failed by the reader
    // thread's drain path; either way the channel resolves quickly.
    let rx = client.submit(SubQuery::Degree(4), None);
    match rx.recv_timeout(Duration::from_secs(5)) {
        Ok(SubOutcome::Error) | Ok(SubOutcome::Rejected) => {}
        Ok(other) => panic!("unexpected outcome after disconnect: {other:?}"),
        Err(_) => panic!("request hung after server shutdown"),
    }
}

/// A client wrapper that delays every batch reply by `delay`, turning the
/// wrapped replica into a straggler. The submission still reaches the real
/// host immediately (the queue and cancel bookkeeping stay honest); only
/// the broker-visible reply is late.
struct StragglerClient {
    inner: Arc<dyn ShardClient>,
    delay: Duration,
}

impl ShardClient for StragglerClient {
    fn submit(&self, sub: SubQuery, ctx: Option<TraceContext>) -> Receiver<SubOutcome> {
        self.inner.submit(sub, ctx)
    }

    fn submit_batch(
        &self,
        subs: Vec<SubQuery>,
        ctx: Option<TraceContext>,
    ) -> Receiver<Vec<SubOutcome>> {
        self.submit_batch_cancellable(subs, ctx).0
    }

    fn submit_batch_cancellable(
        &self,
        subs: Vec<SubQuery>,
        ctx: Option<TraceContext>,
    ) -> (Receiver<Vec<SubOutcome>>, CancelHandle) {
        let (inner_rx, handle) = self.inner.submit_batch_cancellable(subs, ctx);
        let (tx, rx) = crossbeam::channel::bounded(1);
        let delay = self.delay;
        std::thread::spawn(move || {
            std::thread::sleep(delay);
            if let Ok(outcomes) = inner_rx.recv() {
                let _ = tx.send(outcomes);
            }
        });
        (rx, handle)
    }
}

/// Hedged fan-out masks a straggling replica: with every primary reply
/// held back far beyond the hedge delay, queries complete through the
/// second replica well inside the sub-query timeout, and the broker both
/// fires and resolves hedges (cancelling the losers).
#[test]
fn hedged_fanout_masks_a_straggling_replica() {
    let g = graph();
    let n_shards = 2;
    let replicas = 2;
    let clock: Arc<MonotonicClock> = Arc::new(MonotonicClock::new());
    let slices: Vec<_> = (0..n_shards)
        .map(|s| Arc::new(g.shard_slice(s, n_shards)))
        .collect();
    // Physical hosts, replica-major: both replicas of a shard share the
    // same Arc'd partition.
    let hosts: Vec<Arc<ShardHost>> = (0..n_shards * replicas)
        .map(|p| {
            ShardHost::spawn(
                Arc::clone(&slices[p / replicas]),
                Arc::new(AlwaysAccept::new()),
                clock.clone(),
                ShardConfig::default(),
            )
        })
        .collect();
    // The primary of shard `s` is replica `s % R`; wrap exactly that one
    // in a straggler so every hedged round must win through the other.
    let groups: Vec<Vec<Arc<dyn ShardClient>>> = (0..n_shards)
        .map(|s| {
            (0..replicas)
                .map(|r| {
                    let inner: Arc<dyn ShardClient> =
                        Arc::new(InProcShardClient::new(Arc::clone(&hosts[s * replicas + r])));
                    if r == s % replicas {
                        Arc::new(StragglerClient {
                            inner,
                            delay: Duration::from_millis(80),
                        }) as Arc<dyn ShardClient>
                    } else {
                        inner
                    }
                })
                .collect()
        })
        .collect();
    let broker = Broker::spawn_replicated(
        groups,
        RouteStrategy::Hedged,
        Arc::new(AlwaysAccept::new()),
        Arc::new(MonotonicClock::new()),
        BrokerConfig {
            subquery_timeout: Duration::from_secs(2),
            ..BrokerConfig::default()
        },
    );

    for u in 0..20 {
        let got = broker.execute(Query {
            kind: QueryKind::Qt1Degree,
            u,
            v: 0,
        });
        assert!(matches!(got, ClientOutcome::Ok(_)), "u={u}: {got:?}");
    }
    let hc = broker.hedge_counters();
    assert!(hc.hedges >= 20, "expected a hedge per query, got {hc:?}");
    assert!(hc.cancels >= 20, "every hedge resolves by cancelling: {hc:?}");

    broker.shutdown();
    for h in hosts {
        h.shutdown();
    }
}

/// A broker closed while clients wait resolves their channels (drop side)
/// rather than leaving them blocked forever.
#[test]
fn broker_shutdown_resolves_waiting_clients() {
    let g = graph();
    let shards = spawn_shards(&g, 1);
    let clients: Vec<Arc<dyn ShardClient>> = shards
        .iter()
        .map(|h| Arc::new(InProcShardClient::new(Arc::clone(h))) as Arc<dyn ShardClient>)
        .collect();
    let broker = Broker::spawn(
        clients,
        Arc::new(AlwaysAccept::new()),
        Arc::new(MonotonicClock::new()),
        BrokerConfig::default(),
    );
    let rx = broker.submit(Query {
        kind: QueryKind::Qt1Degree,
        u: 2,
        v: 0,
    });
    // The submitted query may complete or the channel may drop on close —
    // but it must resolve within the timeout.
    broker.shutdown();
    match rx.recv_timeout(Duration::from_secs(2)) {
        Ok(_) => {}
        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {}
        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
            panic!("client left hanging across broker shutdown")
        }
    }
    Arc::clone(&shards[0]).shutdown();
}
