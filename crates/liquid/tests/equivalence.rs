//! Batched ≡ unbatched equivalence: the coalesced fan-out path must be
//! observably identical to the one-message-per-sub-query path it replaced.
//!
//! The same randomized query mix runs through a `batch_fanout: true` and a
//! `batch_fanout: false` cluster — on both transports — and every per-query
//! outcome must match exactly: results for serviced queries, and the
//! admission decision itself (`Ok` / `Rejected` / `ShardRejected` / ...).
//! Queries are submitted sequentially (closed loop) so admission decisions
//! are deterministic: an unloaded AcceptFraction shard tier admits
//! everything, and any deviation between the two paths would surface as a
//! mismatched outcome rather than racy noise.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bouncer_core::policy::{AdmissionPolicy, AlwaysAccept, Decision, RejectReason};
use bouncer_core::types::TypeId;
use bouncer_metrics::Nanos;
use liquid::broker::{BrokerConfig, ClientOutcome};
use liquid::cluster::{Cluster, ClusterConfig, TransportKind};
use liquid::graph::GraphConfig;
use liquid::query::{Query, QueryKind};
use liquid::shard::ShardConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn config(transport: TransportKind, batch_fanout: bool) -> ClusterConfig {
    ClusterConfig {
        n_shards: 3,
        n_brokers: 1,
        graph: GraphConfig {
            vertices: 1_500,
            edges_per_vertex: 4,
            seed: 11,
        },
        shard: ShardConfig {
            engines: 2,
            ..ShardConfig::default()
        },
        broker: BrokerConfig {
            engines: 2,
            batch_fanout,
            ..BrokerConfig::default()
        },
        transport,
        tcp_connections: 2,
        // The shard tier's AcceptFraction sheds probabilistically once
        // measured utilization crosses the target — which scheduler noise
        // can trigger even unloaded. Equivalence needs admission decisions
        // that depend only on the injected broker policy, so pin the
        // target out of reach.
        shard_max_utilization: 1e9,
        ..ClusterConfig::default()
    }
}

fn run_mix(cluster: &Cluster, queries: &[Query]) -> Vec<ClientOutcome> {
    queries.iter().map(|&q| cluster.execute(q)).collect()
}

fn random_mix(vertices: u32, per_kind: usize) -> Vec<Query> {
    let mut rng = SmallRng::seed_from_u64(0xE0_51CA);
    let mut queries = Vec::new();
    for _ in 0..per_kind {
        for kind in QueryKind::ALL {
            queries.push(Query::random(kind, vertices, &mut rng));
        }
    }
    queries
}

fn assert_equivalent(transport: TransportKind) {
    let batched = Cluster::spawn(&config(transport, true), |_reg, _p| {
        Arc::new(AlwaysAccept::new())
    });
    let unbatched = Cluster::spawn(&config(transport, false), |_reg, _p| {
        Arc::new(AlwaysAccept::new())
    });
    assert_eq!(batched.vertices(), unbatched.vertices());

    let queries = random_mix(batched.vertices(), 8);
    let got_batched = run_mix(&batched, &queries);
    let got_unbatched = run_mix(&unbatched, &queries);
    for (i, (b, u)) in got_batched.iter().zip(&got_unbatched).enumerate() {
        assert_eq!(b, u, "query #{i} {:?} diverged ({transport:?})", queries[i]);
    }
    // Sanity: the mix actually exercised the data path — an unloaded
    // cluster with AlwaysAccept brokers services every query.
    assert!(
        got_batched
            .iter()
            .all(|o| matches!(o, ClientOutcome::Ok(_))),
        "expected every query serviced"
    );

    batched.shutdown();
    unbatched.shutdown();
}

#[test]
fn batched_equals_unbatched_in_proc() {
    assert_equivalent(TransportKind::InProc);
}

#[test]
fn batched_equals_unbatched_over_tcp() {
    assert_equivalent(TransportKind::Tcp);
}

/// Deterministically rejects every `n`-th query, so admission parity is
/// exercised on both the accept and the reject branch. Closed-loop
/// submission makes the call sequence (and therefore the decision
/// sequence) identical across clusters.
#[derive(Debug)]
struct RejectEveryNth {
    n: u64,
    calls: AtomicU64,
}

impl AdmissionPolicy for RejectEveryNth {
    fn name(&self) -> &str {
        "reject-every-nth"
    }
    fn admit(&self, _ty: TypeId, _now: Nanos) -> Decision {
        if self.calls.fetch_add(1, Ordering::Relaxed).is_multiple_of(self.n) {
            Decision::Reject(RejectReason::PredictedSloViolation)
        } else {
            Decision::Accept
        }
    }
}

fn random_mix_seeded(seed: u64, vertices: u32, per_kind: usize) -> Vec<Query> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut queries = Vec::new();
    for _ in 0..per_kind {
        for kind in QueryKind::ALL {
            queries.push(Query::random(kind, vertices, &mut rng));
        }
    }
    queries
}

/// The tentpole equivalence matrix: the thread-per-core rings data path
/// must be observably identical to the channel path it bypasses — same
/// results byte for byte (`ClientOutcome` derives `Eq` over the full
/// response payload) and the same admission decision per query — across
/// several fixed query-mix seeds.
#[test]
fn rings_equals_channels_across_seeds() {
    for seed in [0xA11CEu64, 0x0B0B, 0xC0FFEE] {
        let policy = |_reg: &_, _p: u32| -> Arc<dyn AdmissionPolicy> {
            Arc::new(RejectEveryNth {
                n: 5,
                calls: AtomicU64::new(0),
            })
        };
        let rings = Cluster::spawn(&config(TransportKind::Rings, true), policy);
        let channels = Cluster::spawn(&config(TransportKind::InProc, true), policy);
        assert_eq!(rings.vertices(), channels.vertices());

        let queries = random_mix_seeded(seed, rings.vertices(), 4);
        let got_rings = run_mix(&rings, &queries);
        let got_channels = run_mix(&channels, &queries);
        for (i, (r, c)) in got_rings.iter().zip(&got_channels).enumerate() {
            assert_eq!(
                r, c,
                "query #{i} {:?} diverged between rings and channels (seed {seed:#x})",
                queries[i]
            );
        }
        // Sanity: both branches of the matrix actually ran — the policy
        // rejected some queries and the shards serviced the rest.
        let rejected = got_rings
            .iter()
            .filter(|o| matches!(o, ClientOutcome::Rejected(_)))
            .count();
        let serviced = got_rings
            .iter()
            .filter(|o| matches!(o, ClientOutcome::Ok(_)))
            .count();
        assert!(rejected > 0 && serviced > 0, "{rejected}/{serviced}");
        assert_eq!(rejected + serviced, queries.len());

        rings.shutdown();
        channels.shutdown();
    }
}

/// The replica-group invariant: replication must never change what a
/// client observes. At `R = 1` the router normalizes every strategy to
/// primary-only — provably the flat data path — and at `R = 2` the
/// replicas materialize the same partition, so the per-query outcome
/// sequence (results *and* admission decisions, `ClientOutcome` derives
/// `Eq` over the full payload) must be byte-identical to the unreplicated
/// baseline under every routing strategy. Hedges may or may not fire on a
/// given round; either way the winner carries the same answer.
fn assert_replication_transparent(transport: TransportKind, seeds: &[u64]) {
    use liquid::broker::RouteStrategy;
    let policy = |_reg: &_, _p: u32| -> Arc<dyn AdmissionPolicy> {
        Arc::new(RejectEveryNth {
            n: 5,
            calls: AtomicU64::new(0),
        })
    };
    for &seed in seeds {
        let flat = Cluster::spawn(&config(transport, true), policy);
        let queries = random_mix_seeded(seed, flat.vertices(), 2);
        let want = run_mix(&flat, &queries);
        flat.shutdown();
        // The baseline itself must exercise both admission branches.
        assert!(want.iter().any(|o| matches!(o, ClientOutcome::Rejected(_))));
        assert!(want.iter().any(|o| matches!(o, ClientOutcome::Ok(_))));

        for (replicas, strategy) in [
            (1, RouteStrategy::LoadBalanced),
            (1, RouteStrategy::Hedged),
            (2, RouteStrategy::PrimaryOnly),
            (2, RouteStrategy::LoadBalanced),
            (2, RouteStrategy::Hedged),
        ] {
            let cfg = ClusterConfig {
                replicas,
                strategy,
                ..config(transport, true)
            };
            let cluster = Cluster::spawn(&cfg, policy);
            let got = run_mix(&cluster, &queries);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g, w,
                    "query #{i} {:?} diverged from the flat baseline \
                     (R={replicas}, {strategy:?}, {transport:?}, seed {seed:#x})",
                    queries[i]
                );
            }
            cluster.shutdown();
        }
    }
}

#[test]
fn replication_transparent_in_proc() {
    assert_replication_transparent(TransportKind::InProc, &[0xA11CE, 0x0B0B, 0xC0FFEE]);
}

#[test]
fn replication_transparent_over_rings() {
    assert_replication_transparent(TransportKind::Rings, &[0xA11CE, 0x0B0B, 0xC0FFEE]);
}

#[test]
fn replication_transparent_over_tcp() {
    assert_replication_transparent(TransportKind::Tcp, &[0xA11CE, 0x0B0B, 0xC0FFEE]);
}
