//! Batched ≡ unbatched equivalence: the coalesced fan-out path must be
//! observably identical to the one-message-per-sub-query path it replaced.
//!
//! The same randomized query mix runs through a `batch_fanout: true` and a
//! `batch_fanout: false` cluster — on both transports — and every per-query
//! outcome must match exactly: results for serviced queries, and the
//! admission decision itself (`Ok` / `Rejected` / `ShardRejected` / ...).
//! Queries are submitted sequentially (closed loop) so admission decisions
//! are deterministic: an unloaded AcceptFraction shard tier admits
//! everything, and any deviation between the two paths would surface as a
//! mismatched outcome rather than racy noise.

use std::sync::Arc;

use bouncer_core::policy::AlwaysAccept;
use liquid::broker::{BrokerConfig, ClientOutcome};
use liquid::cluster::{Cluster, ClusterConfig, TransportKind};
use liquid::graph::GraphConfig;
use liquid::query::{Query, QueryKind};
use liquid::shard::ShardConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn config(transport: TransportKind, batch_fanout: bool) -> ClusterConfig {
    ClusterConfig {
        n_shards: 3,
        n_brokers: 1,
        graph: GraphConfig {
            vertices: 1_500,
            edges_per_vertex: 4,
            seed: 11,
        },
        shard: ShardConfig {
            engines: 2,
            ..ShardConfig::default()
        },
        broker: BrokerConfig {
            engines: 2,
            batch_fanout,
            ..BrokerConfig::default()
        },
        transport,
        tcp_connections: 2,
        ..ClusterConfig::default()
    }
}

fn run_mix(cluster: &Cluster, queries: &[Query]) -> Vec<ClientOutcome> {
    queries.iter().map(|&q| cluster.execute(q)).collect()
}

fn random_mix(vertices: u32, per_kind: usize) -> Vec<Query> {
    let mut rng = SmallRng::seed_from_u64(0xE0_51CA);
    let mut queries = Vec::new();
    for _ in 0..per_kind {
        for kind in QueryKind::ALL {
            queries.push(Query::random(kind, vertices, &mut rng));
        }
    }
    queries
}

fn assert_equivalent(transport: TransportKind) {
    let batched = Cluster::spawn(&config(transport, true), |_reg, _p| {
        Arc::new(AlwaysAccept::new())
    });
    let unbatched = Cluster::spawn(&config(transport, false), |_reg, _p| {
        Arc::new(AlwaysAccept::new())
    });
    assert_eq!(batched.vertices(), unbatched.vertices());

    let queries = random_mix(batched.vertices(), 8);
    let got_batched = run_mix(&batched, &queries);
    let got_unbatched = run_mix(&unbatched, &queries);
    for (i, (b, u)) in got_batched.iter().zip(&got_unbatched).enumerate() {
        assert_eq!(b, u, "query #{i} {:?} diverged ({transport:?})", queries[i]);
    }
    // Sanity: the mix actually exercised the data path — an unloaded
    // cluster with AlwaysAccept brokers services every query.
    assert!(
        got_batched
            .iter()
            .all(|o| matches!(o, ClientOutcome::Ok(_))),
        "expected every query serviced"
    );

    batched.shutdown();
    unbatched.shutdown();
}

#[test]
fn batched_equals_unbatched_in_proc() {
    assert_equivalent(TransportKind::InProc);
}

#[test]
fn batched_equals_unbatched_over_tcp() {
    assert_equivalent(TransportKind::Tcp);
}
