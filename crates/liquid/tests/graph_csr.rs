//! Property tests pinning the CSR graph engine to its retained
//! references: the flat `offsets`/`targets` representation against the
//! legacy `Vec<Vec<VertexId>>` adjacency ([`liquid::graph::reference`]),
//! the zero-clone sub-CSR shard slices against the old cloned slices,
//! and the adaptive intersection kernel against the per-element
//! binary-search filter.

use liquid::graph::{intersect_count, reference::VecGraph, Graph, GraphConfig};
use proptest::prelude::*;

fn arb_cfg() -> impl Strategy<Value = GraphConfig> {
    (64u32..2_048, 1u32..8, any::<u64>()).prop_map(|(vertices, edges_per_vertex, seed)| {
        GraphConfig {
            vertices,
            edges_per_vertex,
            seed,
        }
    })
}

/// A sorted, duplicate-free id list — the only shape the intersection
/// kernels are defined over (adjacency lists are stored this way).
fn arb_sorted_ids() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..512, 0..96).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

proptest! {
    /// The CSR engine and the retained Vec-of-Vecs reference agree on
    /// every query surface — neighbors, degree, has_edge, edge_count —
    /// across random generator configs. The generators share the RNG
    /// accept/reject stream, so the graphs must be identical, not just
    /// isomorphic.
    #[test]
    fn csr_matches_vec_reference(cfg in arb_cfg()) {
        let csr = Graph::generate(&cfg);
        let vec = VecGraph::generate(&cfg);
        prop_assert_eq!(csr.vertex_count(), vec.vertex_count());
        prop_assert_eq!(csr.edge_count(), vec.edge_count());
        for v in 0..cfg.vertices {
            prop_assert_eq!(csr.neighbors(v), vec.neighbors(v), "neighbors({})", v);
            prop_assert_eq!(csr.degree(v), vec.degree(v), "degree({})", v);
        }
        // has_edge spot-checks: every real edge plus a probe ring of
        // non-neighbors around each vertex.
        for v in (0..cfg.vertices).step_by(7) {
            for &t in csr.neighbors(v) {
                prop_assert!(csr.has_edge(v, t) && vec.has_edge(v, t));
            }
            let probe = (v + 1) % cfg.vertices;
            prop_assert_eq!(csr.has_edge(v, probe), vec.has_edge(v, probe));
        }
    }

    /// Sub-CSR shard slices expose exactly the owned rows the legacy
    /// cloned slices held, across every shard count the cluster spawns.
    #[test]
    fn shard_slices_match_cloned_reference(cfg in arb_cfg()) {
        let csr = Graph::generate(&cfg);
        let vec = VecGraph::generate(&cfg);
        for n_shards in 1..=8usize {
            for shard in 0..n_shards {
                let sub = csr.shard_slice(shard, n_shards);
                let cloned = vec.shard_slice_cloned(shard, n_shards);
                prop_assert_eq!(sub.shard(), shard);
                prop_assert_eq!(sub.total_vertices(), cfg.vertices);
                let mut owned = 0usize;
                for v in 0..cfg.vertices {
                    if Graph::owner(v, n_shards) == shard {
                        let (cv, list) = &cloned[owned];
                        prop_assert_eq!(*cv, v);
                        prop_assert_eq!(
                            sub.neighbors(v),
                            Some(list.as_slice()),
                            "shard {}/{} vertex {}", shard, n_shards, v
                        );
                        prop_assert_eq!(sub.degree(v), Some(list.len() as u32));
                        owned += 1;
                    } else {
                        prop_assert_eq!(sub.neighbors(v), None);
                        prop_assert_eq!(sub.degree(v), None);
                    }
                }
                prop_assert_eq!(owned, cloned.len());
            }
        }
    }

    /// The adaptive merge/gallop/filter kernel equals the legacy
    /// binary-search filter on arbitrary sorted sets — including the
    /// empty, disjoint, subset, and identical shapes below.
    #[test]
    fn intersect_matches_binary_filter(a in arb_sorted_ids(), b in arb_sorted_ids()) {
        prop_assert_eq!(
            intersect_count(&a, &b),
            VecGraph::intersect_count_binary(&a, &b)
        );
        prop_assert_eq!(
            intersect_count(&b, &a),
            VecGraph::intersect_count_binary(&a, &b)
        );
    }

    /// Skew stress for the gallop path: a short probe list against a
    /// long base drawn from the same universe, both directions.
    #[test]
    fn intersect_matches_on_skewed_pairs(
        short in prop::collection::vec(0u32..100_000, 0..12),
        base in prop::collection::vec(0u32..100_000, 256..1_024),
    ) {
        let norm = |mut v: Vec<u32>| { v.sort_unstable(); v.dedup(); v };
        let (short, base) = (norm(short), norm(base));
        prop_assert_eq!(
            intersect_count(&short, &base),
            VecGraph::intersect_count_binary(&short, &base)
        );
    }
}

#[test]
fn intersect_edge_shapes() {
    let cases: &[(&[u32], &[u32], u64)] = &[
        (&[], &[], 0),
        (&[], &[1, 2, 3], 0),
        (&[5], &[], 0),
        (&[1, 3, 5], &[2, 4, 6], 0),              // disjoint
        (&[2, 4], &[1, 2, 3, 4, 5], 2),           // subset
        (&[7, 8, 9], &[7, 8, 9], 3),              // identical
        (&[0, u32::MAX], &[u32::MAX], 1),         // boundary values
    ];
    for &(a, b, want) in cases {
        assert_eq!(intersect_count(a, b), want, "{a:?} ∩ {b:?}");
        assert_eq!(intersect_count(b, a), want, "{b:?} ∩ {a:?}");
        assert_eq!(VecGraph::intersect_count_binary(a, b), want);
    }
    // The gallop threshold exactly: short of 8 against 128 elements
    // (ratio 16) with matches at the window edges the exponential scan
    // stops on.
    let base: Vec<u32> = (0..128).map(|i| i * 3).collect();
    let short: Vec<u32> = vec![0, 3, 93, 189, 285, 333, 378, 381];
    assert_eq!(
        intersect_count(&short, &base),
        VecGraph::intersect_count_binary(&short, &base)
    );
}
