//! End-to-end distributed tracing acceptance: a traced TCP cluster must
//! yield complete span trees (client root → front dispatch → broker query
//! → rounds → shard spans) whose latency breakdown accounts for the
//! measured end-to-end time.

use std::sync::Arc;

use bouncer_core::obs::trace_report::{analyze, parse_spans};
use bouncer_core::obs::{MemorySink, Tracer, TracerConfig};
use bouncer_core::policy::AlwaysAccept;
use liquid::broker::BrokerConfig;
use liquid::cluster::{Cluster, ClusterConfig, TransportKind};
use liquid::front::{RemoteOutcome, TcpBrokerClient, TcpBrokerServer};
use liquid::graph::GraphConfig;
use liquid::query::{Query, QueryKind};
use liquid::shard::ShardConfig;

#[test]
fn traced_tcp_cluster_yields_complete_trees_with_accounted_latency() {
    let sink = Arc::new(MemorySink::new());
    let tracer = Arc::new(Tracer::new(sink.clone(), TracerConfig::default()));
    let cfg = ClusterConfig {
        n_shards: 2,
        n_brokers: 1,
        transport: TransportKind::Tcp,
        tcp_connections: 2,
        graph: GraphConfig {
            vertices: 2_000,
            edges_per_vertex: 4,
            seed: 9,
        },
        shard: ShardConfig {
            engines: 2,
            ..ShardConfig::default()
        },
        broker: BrokerConfig {
            engines: 2,
            ..BrokerConfig::default()
        },
        tracer: Some(tracer.clone()),
        ..ClusterConfig::default()
    };
    let cluster = Cluster::spawn(&cfg, |_reg, _p| Arc::new(AlwaysAccept::new()));
    // The full remote path: TCP front door in front of the broker, and a
    // traced client sharing the cluster clock so client-side and
    // broker-side span timestamps are directly comparable.
    let server =
        TcpBrokerServer::serve(Arc::clone(&cluster.brokers()[0]), "127.0.0.1:0").unwrap();
    let client = TcpBrokerClient::connect_traced(
        server.addr(),
        2,
        tracer.clone(),
        Arc::clone(cluster.clock()),
    )
    .unwrap();

    const N: usize = 60;
    let kinds = [
        QueryKind::Qt1Degree,
        QueryKind::Qt5MutualCount,
        QueryKind::Qt7TwoHopCount,
        QueryKind::Qt10Distance3,
    ];
    for i in 0..N {
        let q = Query {
            kind: kinds[i % kinds.len()],
            u: (i as u32 * 13) % 2_000,
            v: (i as u32 * 13 + 7) % 2_000,
        };
        let out = client.execute(q);
        assert!(matches!(out, RemoteOutcome::Ok(_)), "query {i}: {out:?}");
    }
    server.stop();
    cluster.shutdown();
    tracer.flush();
    assert_eq!(tracer.sampled_total(), N as u64, "sample_every=1 keeps all");
    assert_eq!(tracer.dropped_total(), 0);

    // Reassemble through the same JSONL path `trace-report` consumes.
    let lines: Vec<String> = sink.events().iter().map(|e| e.to_json()).collect();
    let records = parse_spans(&lines.join("\n")).unwrap();
    let report = analyze(records);
    assert_eq!(report.traces, N, "one tree per traced query");
    assert_eq!(report.orphan_spans, 0, "every span's parent must resolve");
    assert_eq!(report.rootless_traces, 0);
    assert!(report.all_complete());

    // The breakdown must account for the measured end-to-end time: the
    // components sum to within 5% of each root span's duration (the
    // acceptance bound; the decomposition is exact by construction).
    assert_eq!(report.breakdowns.len(), N);
    for b in &report.breakdowns {
        assert_eq!(b.status, "ok");
        let sum = b.component_sum();
        let diff = sum.abs_diff(b.total);
        assert!(
            diff as f64 <= 0.05 * b.total as f64,
            "breakdown sum {sum} vs end-to-end {} (diff {diff})",
            b.total
        );
        // Remote traces spend real time on the wire; the client-side
        // residual lives in `other`.
        assert!(b.total > 0);
    }
    // The multi-round plans exercised the critical-path machinery: at
    // least one trace has ≥2 fan-out rounds with a straggler per round.
    assert!(
        report
            .breakdowns
            .iter()
            .any(|b| b.rounds >= 2 && b.stragglers.len() == b.rounds),
        "expected a multi-round trace with stragglers"
    );
    // Shard-tier time is visible somewhere (the Fig. 13 signal).
    assert!(report
        .breakdowns
        .iter()
        .any(|b| b.shard_queue + b.shard_service > 0));
}
