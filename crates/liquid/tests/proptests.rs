//! Property-based tests: wire-protocol round trips and fuzz, graph
//! invariants, and shard/broker agreement.

use bouncer_core::obs::{SpanId, TraceContext, TraceId};
use bytes::Bytes;
use liquid::graph::{Graph, GraphConfig};
use liquid::query::{IdLists, Query, QueryKind, SubQuery, SubResponse};
use liquid::shard::SubOutcome;
use liquid::wire::{
    decode_query, decode_query_reply, decode_subquery, decode_subreply, decode_subreply_any,
    decode_subrequest, encode_query, encode_query_reply, encode_subquery,
    encode_subquery_batch_into, encode_subreply, encode_subreply_batch_into, read_frame,
    write_frame, Status, SubReplyBody, SubRequest,
};
use proptest::prelude::*;

fn arb_ids() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(any::<u32>(), 0..64)
}

fn arb_id_lists() -> impl Strategy<Value = IdLists> {
    prop::collection::vec(arb_ids(), 0..8).prop_map(|lists| lists.into_iter().collect())
}

fn arb_ctx() -> impl Strategy<Value = Option<TraceContext>> {
    prop::option::of((any::<u64>(), any::<u64>(), any::<bool>()).prop_map(
        |(trace, parent, sampled)| TraceContext {
            trace: TraceId(trace),
            parent: SpanId(parent),
            sampled,
        },
    ))
}

fn arb_subquery() -> impl Strategy<Value = SubQuery> {
    prop_oneof![
        any::<u32>().prop_map(SubQuery::Neighbors),
        any::<u32>().prop_map(SubQuery::Degree),
        (any::<u32>(), any::<u32>()).prop_map(|(u, v)| SubQuery::HasEdge(u, v)),
        arb_ids().prop_map(|ids| SubQuery::NeighborsMany(ids.into())),
        arb_ids().prop_map(|ids| SubQuery::DegreeMany(ids.into())),
        (any::<u32>(), arb_ids()).prop_map(|(v, ids)| SubQuery::CountIntersect(v, ids.into())),
    ]
}

fn arb_subresponse() -> impl Strategy<Value = SubResponse> {
    prop_oneof![
        arb_ids().prop_map(SubResponse::Ids),
        arb_id_lists().prop_map(SubResponse::IdLists),
        prop::collection::vec(any::<u32>(), 0..32).prop_map(SubResponse::Counts),
        any::<u64>().prop_map(SubResponse::Count),
        any::<bool>().prop_map(SubResponse::Flag),
    ]
}

fn arb_suboutcome() -> impl Strategy<Value = SubOutcome> {
    prop_oneof![
        arb_subresponse().prop_map(SubOutcome::Ok),
        Just(SubOutcome::Rejected),
        Just(SubOutcome::Error),
    ]
}

proptest! {
    /// Every sub-query round-trips through the wire codec, with and
    /// without a trailing trace context.
    #[test]
    fn subquery_codec_round_trips(
        id in any::<u64>(),
        sub in arb_subquery(),
        ctx in arb_ctx(),
    ) {
        let (got_id, got, got_ctx) =
            decode_subquery(encode_subquery(id, &sub, ctx.as_ref())).unwrap();
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got, sub);
        prop_assert_eq!(got_ctx, ctx);
    }

    /// Every sub-reply round-trips, with and without a body.
    #[test]
    fn subreply_codec_round_trips(
        id in any::<u64>(),
        status_pick in 0u8..3,
        resp in prop::option::of(arb_subresponse()),
    ) {
        let status = match status_pick {
            0 => Status::Ok,
            1 => Status::Rejected,
            _ => Status::Error,
        };
        let (got_id, got_status, got_resp) =
            decode_subreply(encode_subreply(id, status, resp.as_ref())).unwrap();
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got_status, status);
        prop_assert_eq!(got_resp, resp);
    }

    /// Sub-query **batch** envelopes round-trip: any mix of sub-query
    /// bodies, with and without a trailing trace context, and singles keep
    /// decoding through the batch-aware entry point.
    #[test]
    fn subquery_batch_codec_round_trips(
        id in any::<u64>(),
        subs in prop::collection::vec(arb_subquery(), 0..12),
        ctx in arb_ctx(),
    ) {
        let mut buf = Vec::new();
        encode_subquery_batch_into(&mut buf, id, &subs, ctx.as_ref());
        let (got_id, got, got_ctx) = decode_subrequest(&buf[..]).unwrap();
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got, SubRequest::Batch(subs));
        prop_assert_eq!(got_ctx, ctx);
    }

    /// Batched sub-reply envelopes round-trip with per-item statuses.
    #[test]
    fn subreply_batch_codec_round_trips(
        id in any::<u64>(),
        outcomes in prop::collection::vec(arb_suboutcome(), 0..12),
    ) {
        let mut buf = Vec::new();
        encode_subreply_batch_into(&mut buf, id, &outcomes);
        let (got_id, body) = decode_subreply_any(&buf[..]).unwrap();
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(body, SubReplyBody::Batch(outcomes));
    }

    /// Every strict prefix of a valid batch frame (request or reply) is
    /// rejected with an error — a batch cannot silently lose tail items.
    #[test]
    fn truncated_batch_frames_are_rejected(
        id in any::<u64>(),
        subs in prop::collection::vec(arb_subquery(), 0..6),
        outcomes in prop::collection::vec(arb_suboutcome(), 0..6),
        ctx in arb_ctx(),
    ) {
        let mut req = Vec::new();
        encode_subquery_batch_into(&mut req, id, &subs, ctx.as_ref());
        for cut in 0..req.len() {
            // A cut that removes exactly the optional trace-context tail
            // still decodes (backward compatibility); everything else must
            // error. No prefix may ever panic.
            let body_len = req.len() - if ctx.is_some() { 18 } else { 0 };
            match decode_subrequest(&req[..cut]) {
                Ok((gid, got, gctx)) => {
                    prop_assert_eq!(cut, body_len);
                    prop_assert_eq!(gid, id);
                    prop_assert_eq!(got, SubRequest::Batch(subs.clone()));
                    prop_assert_eq!(gctx, None);
                }
                Err(_) => prop_assert_ne!(cut, body_len),
            }
        }
        let mut rep = Vec::new();
        encode_subreply_batch_into(&mut rep, id, &outcomes);
        for cut in 0..rep.len() {
            prop_assert!(decode_subreply_any(&rep[..cut]).is_err(), "cut={}", cut);
        }
    }

    /// Query and query-reply envelopes round-trip, the query with and
    /// without a trailing trace context.
    #[test]
    fn query_codec_round_trips(
        id in any::<u64>(),
        kind_idx in 0usize..11,
        u in any::<u32>(),
        v in any::<u32>(),
        value in any::<u64>(),
        ctx in arb_ctx(),
    ) {
        let q = Query { kind: QueryKind::from_index(kind_idx).unwrap(), u, v };
        let (gid, gq, gctx) = decode_query(encode_query(id, &q, ctx.as_ref())).unwrap();
        prop_assert_eq!((gid, gq, gctx), (id, q, ctx));
        let (rid, s, rv) = decode_query_reply(encode_query_reply(id, Status::Ok, value)).unwrap();
        prop_assert_eq!((rid, s, rv), (id, Status::Ok, value));
    }

    /// Arbitrary bytes never panic the decoders — they error or parse.
    #[test]
    fn decoders_tolerate_garbage(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let b = Bytes::from(bytes);
        let _ = decode_subquery(b.clone());
        let _ = decode_subreply(b.clone());
        let _ = decode_subrequest(b.clone());
        let _ = decode_subreply_any(b.clone());
        let _ = decode_query(b.clone());
        let _ = decode_query_reply(b);
    }

    /// Every strict prefix of a valid encoded frame either decodes (when
    /// the cut only dropped an optional tail) or errors — never panics.
    #[test]
    fn truncated_frames_never_panic(
        id in any::<u64>(),
        sub in arb_subquery(),
        resp in prop::option::of(arb_subresponse()),
        ctx in arb_ctx(),
    ) {
        let q = encode_subquery(id, &sub, ctx.as_ref());
        for cut in 0..q.as_slice().len() {
            let _ = decode_subquery(Bytes::from(q.as_slice()[..cut].to_vec()));
        }
        let r = encode_subreply(id, Status::Ok, resp.as_ref());
        for cut in 0..r.as_slice().len() {
            let _ = decode_subreply(Bytes::from(r.as_slice()[..cut].to_vec()));
        }
    }

    /// A framed stream cut mid-frame errors out of `read_frame` cleanly.
    #[test]
    fn truncated_frame_stream_errors(
        payload in prop::collection::vec(any::<u8>(), 0..64),
        keep in 0usize..68,
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let keep = keep.min(buf.len().saturating_sub(1));
        buf.truncate(keep);
        let mut cursor = std::io::Cursor::new(buf);
        prop_assert!(read_frame(&mut cursor).is_err());
    }

    /// Frames written back-to-back are read back intact, in order.
    #[test]
    fn frame_stream_round_trips(payloads in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..256), 1..10,
    )) {
        let mut buf = Vec::new();
        for p in &payloads {
            write_frame(&mut buf, p).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for p in &payloads {
            let frame = read_frame(&mut cursor).unwrap();
            prop_assert_eq!(frame.as_ref(), p.as_slice());
        }
        prop_assert!(read_frame(&mut cursor).is_err());
    }

    /// Generated graphs are simple (no self-loops, no duplicate edges),
    /// symmetric, and within the expected edge budget, for any seed.
    #[test]
    fn graph_generation_invariants(seed in any::<u64>(), m in 2u32..6) {
        let g = Graph::generate(&GraphConfig {
            vertices: 300,
            edges_per_vertex: m,
            seed,
        });
        let mut edges = 0u64;
        for v in 0..g.vertex_count() {
            let ns = g.neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted+dedup at {v}");
            for &u in ns {
                prop_assert_ne!(u, v, "self loop");
                prop_assert!(g.has_edge(u, v), "symmetry {v}-{u}");
            }
            edges += ns.len() as u64;
        }
        edges /= 2;
        // Preferential attachment adds at most m edges per new vertex plus
        // the seed clique.
        let n = 300u64;
        let m = m as u64;
        prop_assert!(edges <= n * m + m * (m + 1) / 2);
        prop_assert!(edges >= n.saturating_sub(m + 1), "graph too sparse: {edges}");
    }

    /// Shard slices partition the graph: each vertex's adjacency lives on
    /// exactly its owner shard.
    #[test]
    fn shard_partition_is_exact(seed in any::<u64>(), n_shards in 1usize..6) {
        let g = Graph::generate(&GraphConfig {
            vertices: 200,
            edges_per_vertex: 3,
            seed,
        });
        let slices: Vec<_> = (0..n_shards).map(|s| g.shard_slice(s, n_shards)).collect();
        for v in 0..g.vertex_count() {
            let mut holders = 0;
            for slice in &slices {
                if let Some(ns) = slice.neighbors(v) {
                    prop_assert_eq!(ns, g.neighbors(v));
                    holders += 1;
                }
            }
            prop_assert_eq!(holders, 1, "vertex {} held by {} shards", v, holders);
        }
    }
}
