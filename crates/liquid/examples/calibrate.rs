//! Calibration probe: per-type query latencies and cluster capacity.
use bouncer_core::policy::AlwaysAccept;
use liquid::cluster::{Cluster, ClusterConfig};
use liquid::query::{Query, QueryKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let cfg = ClusterConfig::default();
    let cluster = Cluster::spawn(&cfg, |_r, _p| Arc::new(AlwaysAccept::new()));
    let n = cluster.vertices();
    let mut rng = SmallRng::seed_from_u64(1);
    println!("graph: {} vertices", n);
    for kind in QueryKind::ALL {
        let mut lat: Vec<f64> = Vec::new();
        for _ in 0..300 {
            let q = Query::random(kind, n, &mut rng);
            let t0 = Instant::now();
            let _ = cluster.execute(q);
            lat.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = lat.iter().sum::<f64>() / lat.len() as f64;
        println!("{:5} mean={:.3}ms p50={:.3}ms p90={:.3}ms", kind.name(), mean, lat[150], lat[270]);
    }
    // Capacity with published mix proportions.
    use bouncer_workload::mix::LIQUID_MIX_PROPORTIONS;
    let cum: Vec<f64> = LIQUID_MIX_PROPORTIONS.iter().scan(0.0, |a, &(_, p)| { *a += p; Some(*a) }).collect();
    let total: f64 = cum[cum.len()-1];
    let qps = cluster.probe_capacity(Duration::from_secs(3), 64, move |rng| {
        use rand::RngExt;
        let u: f64 = rng.random::<f64>() * total;
        let idx = cum.partition_point(|&c| c < u).min(10);
        Query::random(QueryKind::ALL[idx], n, rng)
    });
    println!("capacity (mix, closed loop 64 workers): {:.0} QPS", qps);
    cluster.shutdown();
}
