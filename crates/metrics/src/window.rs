//! Sliding-window accepted/received counters per query type — the `SW`
//! structure of Algorithms 2 and 3.
//!
//! "The strategy operates on a sliding window `SW` with duration `D` and time
//! step `Δ`, where `D ≫ Δ` (e.g. D = 1 s and Δ = 10 ms). The sliding window
//! tracks the number of accepted queries (`aqc`) and received queries (`rqc`)
//! per query type." (§4.1)
//!
//! Counting is lock-free; a per-type *rolling total* is maintained alongside
//! the ring slots so `accepted_count` / `received_count` — and the all-types
//! average acceptance ratio that Algorithm 3 computes on every overridden
//! rejection — are O(1) atomic loads instead of O(slots) sums.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use crate::ring::RingRotator;
use crate::time::Nanos;

struct Slot {
    accepted: Box<[AtomicU64]>,
    received: Box<[AtomicU64]>,
}

impl Slot {
    fn new(n_types: usize) -> Self {
        Self {
            accepted: (0..n_types).map(|_| AtomicU64::new(0)).collect(),
            received: (0..n_types).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Per-query-type accepted/received counts over a sliding window.
pub struct WindowedCounters {
    slots: Box<[Slot]>,
    /// Rolling totals; `i64` because a racing flush can transiently observe
    /// a slot increment before the matching total increment. Reads clamp at
    /// zero, bounding the error to the handful of in-flight operations.
    accepted_total: Box<[AtomicI64]>,
    received_total: Box<[AtomicI64]>,
    rotator: RingRotator,
    n_types: usize,
}

impl std::fmt::Debug for WindowedCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedCounters")
            .field("n_types", &self.n_types)
            .finish()
    }
}

impl WindowedCounters {
    /// Creates a window of duration `duration` advanced in steps of `step`,
    /// tracking `n_types` query types. `duration` should be much larger than
    /// `step` (the paper suggests D = 1 s, Δ = 10 ms).
    pub fn new(n_types: usize, duration: Nanos, step: Nanos) -> Self {
        assert!(n_types > 0, "need at least one query type");
        assert!(step > 0 && duration >= 2 * step, "window must span >= 2 steps");
        let n_slots = (duration / step) as usize;
        Self {
            slots: (0..n_slots).map(|_| Slot::new(n_types)).collect(),
            accepted_total: (0..n_types).map(|_| AtomicI64::new(0)).collect(),
            received_total: (0..n_types).map(|_| AtomicI64::new(0)).collect(),
            rotator: RingRotator::new(step, n_slots),
            n_types,
        }
    }

    /// Number of query types this window tracks.
    #[inline]
    pub fn n_types(&self) -> usize {
        self.n_types
    }

    #[inline]
    fn rotate(&self, now: Nanos) {
        self.rotator.maybe_rotate(now, |idx| {
            let slot = &self.slots[idx];
            for t in 0..self.n_types {
                let a = slot.accepted[t].swap(0, Ordering::AcqRel);
                if a != 0 {
                    self.accepted_total[t].fetch_sub(a as i64, Ordering::AcqRel);
                }
                let r = slot.received[t].swap(0, Ordering::AcqRel);
                if r != 0 {
                    self.received_total[t].fetch_sub(r as i64, Ordering::AcqRel);
                }
            }
        });
    }

    /// Records one received query of type `type_idx`, and whether it was
    /// accepted. (`SW.IncrementQueryCount` / `SW.IncrementAcceptedQueryCount`.)
    #[inline]
    pub fn record(&self, type_idx: usize, accepted: bool, now: Nanos) {
        self.rotate(now);
        let idx = self.rotator.physical_index(self.rotator.slot_number(now));
        let slot = &self.slots[idx];
        // Totals first: a flush that races with us may then miss the slot
        // increment (leaving the sample counted until the next wrap) but can
        // never drive a total negative by more than the in-flight ops.
        self.received_total[type_idx].fetch_add(1, Ordering::AcqRel);
        slot.received[type_idx].fetch_add(1, Ordering::AcqRel);
        if accepted {
            self.accepted_total[type_idx].fetch_add(1, Ordering::AcqRel);
            slot.accepted[type_idx].fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Accepted queries of `type_idx` within the window (`GetAcceptedQueryCount`).
    #[inline]
    pub fn accepted_count(&self, type_idx: usize, now: Nanos) -> u64 {
        self.rotate(now);
        self.accepted_total[type_idx].load(Ordering::Acquire).max(0) as u64
    }

    /// Received (accepted + rejected) queries of `type_idx` within the window
    /// (`GetQueryCount`).
    #[inline]
    pub fn received_count(&self, type_idx: usize, now: Nanos) -> u64 {
        self.rotate(now);
        self.received_total[type_idx].load(Ordering::Acquire).max(0) as u64
    }

    /// Both counts with a single rotation check.
    #[inline]
    pub fn counts(&self, type_idx: usize, now: Nanos) -> (u64, u64) {
        self.rotate(now);
        (
            self.accepted_total[type_idx].load(Ordering::Acquire).max(0) as u64,
            self.received_total[type_idx].load(Ordering::Acquire).max(0) as u64,
        )
    }

    /// Visits `(accepted, received)` for every type with one rotation check —
    /// used by Algorithm 3's average-acceptance-ratio computation.
    #[inline]
    pub fn for_each_type(&self, now: Nanos, mut f: impl FnMut(usize, u64, u64)) {
        self.rotate(now);
        for t in 0..self.n_types {
            f(
                t,
                self.accepted_total[t].load(Ordering::Acquire).max(0) as u64,
                self.received_total[t].load(Ordering::Acquire).max(0) as u64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: Nanos = 1_000; // 1000ns window
    const STEP: Nanos = 10;

    #[test]
    fn counts_accumulate_within_window() {
        let w = WindowedCounters::new(2, D, STEP);
        w.record(0, true, 0);
        w.record(0, false, 1);
        w.record(1, true, 2);
        assert_eq!(w.counts(0, 5), (1, 2));
        assert_eq!(w.counts(1, 5), (1, 1));
    }

    #[test]
    fn counts_expire_after_window() {
        let w = WindowedCounters::new(1, D, STEP);
        w.record(0, true, 0);
        assert_eq!(w.received_count(0, 500), 1);
        // After a full window duration the slot has been recycled.
        assert_eq!(w.received_count(0, D + STEP), 0);
        assert_eq!(w.accepted_count(0, D + STEP), 0);
    }

    #[test]
    fn partial_expiry_drops_only_old_slots() {
        let w = WindowedCounters::new(1, D, STEP);
        w.record(0, true, 0); // slot 0
        w.record(0, true, 500); // slot 50
        // At t=1005 slot 0 (covering [0,10)) has expired, slot 50 has not.
        assert_eq!(w.accepted_count(0, 1_005), 1);
        // At t=1505 both are gone.
        assert_eq!(w.accepted_count(0, 1_505), 0);
    }

    #[test]
    fn for_each_type_reports_all() {
        let w = WindowedCounters::new(3, D, STEP);
        w.record(0, true, 0);
        w.record(2, false, 0);
        let mut seen = Vec::new();
        w.for_each_type(1, |t, a, r| seen.push((t, a, r)));
        assert_eq!(seen, vec![(0, 1, 1), (1, 0, 0), (2, 0, 1)]);
    }

    #[test]
    fn rejected_only_affects_received() {
        let w = WindowedCounters::new(1, D, STEP);
        for i in 0..10 {
            w.record(0, false, i);
        }
        assert_eq!(w.counts(0, 20), (0, 10));
    }

    #[test]
    fn long_idle_period_clears_everything() {
        let w = WindowedCounters::new(2, D, STEP);
        for i in 0..100 {
            w.record(i as usize % 2, true, i);
        }
        assert_eq!(w.counts(0, 100), (50, 50));
        // Jump far beyond any multiple of the ring size.
        assert_eq!(w.counts(0, 1_000_000), (0, 0));
        assert_eq!(w.counts(1, 1_000_000), (0, 0));
    }

    #[test]
    fn totals_match_slot_sums_under_concurrency() {
        use std::sync::Arc;
        let w = Arc::new(WindowedCounters::new(4, 1_000_000, 10_000));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || {
                    for i in 0..50_000u64 {
                        w.record(t, i % 3 != 0, i * 17 % 900_000);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // All records landed within one window duration, nothing expired.
        for t in 0..4 {
            let (a, r) = w.counts(t, 900_000);
            assert_eq!(r, 50_000);
            assert!(a > 30_000 && a < 35_000, "a={a}");
        }
    }
}
