//! Nanosecond time base shared by simulated and real clocks.
//!
//! All latencies, wait times, and timestamps in this workspace are plain
//! `u64` nanosecond counts relative to an arbitrary epoch (simulation start
//! or process start). A type alias rather than a newtype keeps the arithmetic
//! in estimator hot paths (Eq. 2–4 of the paper) free of wrapper noise.

/// Nanoseconds since an arbitrary epoch, or a duration in nanoseconds.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICROSECOND: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLISECOND: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SECOND: Nanos = 1_000_000_000;

/// Converts whole microseconds to [`Nanos`].
#[inline]
pub const fn micros(us: u64) -> Nanos {
    us * MICROSECOND
}

/// Converts whole milliseconds to [`Nanos`].
#[inline]
pub const fn millis(ms: u64) -> Nanos {
    ms * MILLISECOND
}

/// Converts whole seconds to [`Nanos`].
#[inline]
pub const fn secs(s: u64) -> Nanos {
    s * SECOND
}

/// Converts fractional milliseconds to [`Nanos`], rounding to nearest.
#[inline]
pub fn millis_f64(ms: f64) -> Nanos {
    (ms * MILLISECOND as f64).round() as Nanos
}

/// Converts [`Nanos`] to fractional milliseconds (for reporting).
#[inline]
pub fn as_millis_f64(ns: Nanos) -> f64 {
    ns as f64 / MILLISECOND as f64
}

/// Converts [`Nanos`] to fractional seconds (for reporting).
#[inline]
pub fn as_secs_f64(ns: Nanos) -> f64 {
    ns as f64 / SECOND as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(micros(7), 7_000);
        assert_eq!(millis(7), 7_000_000);
        assert_eq!(secs(7), 7_000_000_000);
        assert_eq!(millis_f64(1.5), 1_500_000);
        assert_eq!(as_millis_f64(millis(18)), 18.0);
        assert_eq!(as_secs_f64(secs(3)), 3.0);
    }

    #[test]
    fn fractional_millis_round() {
        assert_eq!(millis_f64(0.0005), 500);
        // Rounds to nearest nanosecond.
        assert_eq!(millis_f64(0.000_000_4), 0);
        assert_eq!(millis_f64(0.000_000_6), 1);
    }
}
