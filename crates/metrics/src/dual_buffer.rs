//! The paper's dual-buffer histogram technique (§3, footnote 4).
//!
//! "While one histogram is only read, a second histogram is being populated.
//! At the end of a time interval the new and old histograms are swapped
//! atomically, and the old histogram is reset before being populated again."
//!
//! Reads therefore always see the *previous* interval's distribution — a
//! stable snapshot that changes only at swap points, which is what makes
//! per-query percentile lookups cheap and consistent within an interval.
//!
//! This implementation also covers the retention rule from Appendix A: when
//! a query type goes quiet, swapping would replace its histogram with an
//! empty one, so [`DualHistogram::swap`] keeps the previous interval's data
//! when the populated buffer holds fewer than a configured minimum number of
//! samples ("we prefer stale data to no data").

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::histogram::{AtomicHistogram, HistogramSnapshot};

/// Outcome of a swap attempt, mostly useful for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapOutcome {
    /// Buffers were swapped; reads now serve the just-finished interval.
    Swapped,
    /// The populated buffer had too few samples; the read buffer was
    /// retained and the populated buffer keeps accumulating (Appendix A).
    Retained,
}

/// A pair of [`AtomicHistogram`]s: writers record into the *active* buffer,
/// readers query the *frozen* one populated during the previous interval.
///
/// A writer that races with [`swap`](Self::swap) may deposit a sample into
/// the buffer that just froze; the paper's technique has the same benign
/// window and the effect is bounded by the number of in-flight recordings.
pub struct DualHistogram {
    buffers: [AtomicHistogram; 2],
    /// Index of the buffer currently being populated.
    active: AtomicUsize,
    /// Samples below this threshold cause `swap` to retain the read buffer.
    min_samples_to_swap: u64,
}

impl std::fmt::Debug for DualHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DualHistogram")
            .field("frozen_count", &self.frozen().count())
            .field("active_count", &self.active().count())
            .finish()
    }
}

impl DualHistogram {
    /// Creates an empty dual histogram that always swaps (threshold 0).
    pub fn new() -> Self {
        Self::with_min_samples(0)
    }

    /// Creates a dual histogram that retains the frozen buffer whenever the
    /// populated buffer holds fewer than `min_samples` entries at swap time.
    pub fn with_min_samples(min_samples: u64) -> Self {
        Self {
            buffers: [AtomicHistogram::new(), AtomicHistogram::new()],
            active: AtomicUsize::new(0),
            min_samples_to_swap: min_samples,
        }
    }

    #[inline]
    fn active(&self) -> &AtomicHistogram {
        &self.buffers[self.active.load(Ordering::Acquire)]
    }

    #[inline]
    fn frozen(&self) -> &AtomicHistogram {
        &self.buffers[1 - self.active.load(Ordering::Acquire)]
    }

    /// Records one sample into the buffer being populated.
    #[inline]
    pub fn record(&self, value: u64) {
        self.active().record(value);
    }

    /// Ends the current interval: freezes the populated buffer for reading
    /// and resets the previously read buffer for population — unless the
    /// populated buffer is under the retention threshold, in which case the
    /// read buffer is kept and population continues (Appendix A).
    pub fn swap(&self) -> SwapOutcome {
        let active = self.active.load(Ordering::Acquire);
        if self.buffers[active].count() < self.min_samples_to_swap {
            return SwapOutcome::Retained;
        }
        let next = 1 - active;
        self.buffers[next].reset();
        self.active.store(next, Ordering::Release);
        SwapOutcome::Swapped
    }

    /// Number of samples in the frozen (readable) buffer.
    #[inline]
    pub fn read_count(&self) -> u64 {
        self.frozen().count()
    }

    /// `true` if the frozen buffer holds no samples (cold start).
    #[inline]
    pub fn is_cold(&self) -> bool {
        self.frozen().is_empty()
    }

    /// Mean of the frozen buffer, or `None` if cold.
    #[inline]
    pub fn mean(&self) -> Option<f64> {
        self.frozen().mean()
    }

    /// Quantile of the frozen buffer, or `None` if cold.
    #[inline]
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        self.frozen().value_at_quantile(q)
    }

    /// Several quantiles of the frozen buffer in one cumulative scan (see
    /// [`AtomicHistogram::values_at_quantiles`]).
    #[inline]
    pub fn values_at_quantiles(&self, qs: &[f64], out: &mut [Option<u64>]) {
        self.frozen().values_at_quantiles(qs, out)
    }

    /// Snapshot of the frozen buffer.
    pub fn read_snapshot(&self) -> HistogramSnapshot {
        self.frozen().snapshot()
    }

    /// Number of samples accumulated so far in the buffer being populated.
    #[inline]
    pub fn populating_count(&self) -> u64 {
        self.active().count()
    }

    /// Mean of the buffer being populated (the *current*, still-open
    /// interval), or `None` if it is empty.
    ///
    /// Readers normally use the frozen buffer; this accessor lets a policy
    /// bridge a type whose frozen buffer went empty with the freshest
    /// partial data instead of flying blind for a whole interval.
    #[inline]
    pub fn populating_mean(&self) -> Option<f64> {
        self.active().mean()
    }

    /// Quantile of the buffer being populated, or `None` if it is empty.
    #[inline]
    pub fn populating_quantile(&self, q: f64) -> Option<u64> {
        self.active().value_at_quantile(q)
    }

    /// Several quantiles of the populating buffer in one cumulative scan.
    #[inline]
    pub fn populating_quantiles(&self, qs: &[f64], out: &mut [Option<u64>]) {
        self.active().values_at_quantiles(qs, out)
    }
}

impl Default for DualHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_see_previous_interval_only() {
        let d = DualHistogram::new();
        d.record(100);
        d.record(200);
        // Nothing frozen yet: cold.
        assert!(d.is_cold());
        assert_eq!(d.mean(), None);

        assert_eq!(d.swap(), SwapOutcome::Swapped);
        assert_eq!(d.read_count(), 2);
        assert_eq!(d.mean(), Some(150.0));

        // New interval's samples are invisible until the next swap.
        d.record(1_000_000);
        assert_eq!(d.mean(), Some(150.0));

        assert_eq!(d.swap(), SwapOutcome::Swapped);
        assert_eq!(d.read_count(), 1);
        assert!(d.mean().unwrap() > 900_000.0);
    }

    #[test]
    fn swap_resets_the_new_active_buffer() {
        let d = DualHistogram::new();
        d.record(1);
        d.swap();
        d.record(2);
        d.swap();
        // The buffer that held {1} must have been reset before repopulation.
        assert_eq!(d.read_count(), 1);
        d.swap();
        assert_eq!(d.read_count(), 0);
    }

    #[test]
    fn retention_keeps_stale_data_over_no_data() {
        let d = DualHistogram::with_min_samples(10);
        for _ in 0..10 {
            d.record(500);
        }
        assert_eq!(d.swap(), SwapOutcome::Swapped);
        assert_eq!(d.read_count(), 10);

        // Traffic lull: only 3 samples this interval -> retain.
        for _ in 0..3 {
            d.record(900);
        }
        assert_eq!(d.swap(), SwapOutcome::Retained);
        assert_eq!(d.read_count(), 10);
        assert_eq!(d.mean(), Some(500.0));

        // The under-threshold samples keep accumulating and eventually swap.
        for _ in 0..7 {
            d.record(900);
        }
        assert_eq!(d.swap(), SwapOutcome::Swapped);
        assert_eq!(d.read_count(), 10);
        assert_eq!(d.mean(), Some(900.0));
    }

    #[test]
    fn concurrent_record_and_swap_is_safe() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let d = Arc::new(DualHistogram::new());
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let d = Arc::clone(&d);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        d.record(n % 10_000);
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        for _ in 0..1_000 {
            d.swap();
            let _ = d.value_at_quantile(0.9);
            let _ = d.mean();
        }
        stop.store(true, Ordering::Relaxed);
        let written: u64 = writers.into_iter().map(|t| t.join().unwrap()).sum();
        assert!(written > 0);
    }
}
