//! Internal helper: time-based ring rotation shared by the sliding-window
//! structures ([`crate::window`], [`crate::moving`]).
//!
//! A window of duration `D` with step `Δ` is a ring of `D/Δ` slots. Writers
//! and readers call [`RingRotator::maybe_rotate`] with the current time; when
//! the time has moved into a new slot, expired slots are flushed through a
//! caller-provided closure under a mutex (rotation is rare — once per `Δ` —
//! while counting itself stays lock-free).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::time::Nanos;

pub(crate) struct RingRotator {
    slot_duration: Nanos,
    n_slots: u64,
    /// Highest slot number that has been rotated to.
    cursor: AtomicU64,
    lock: Mutex<()>,
}

impl RingRotator {
    pub(crate) fn new(slot_duration: Nanos, n_slots: usize) -> Self {
        assert!(slot_duration > 0, "slot duration must be positive");
        assert!(n_slots >= 2, "need at least two slots");
        Self {
            slot_duration,
            n_slots: n_slots as u64,
            cursor: AtomicU64::new(0),
            lock: Mutex::new(()),
        }
    }

    #[inline]
    pub(crate) fn slot_number(&self, now: Nanos) -> u64 {
        now / self.slot_duration
    }

    #[inline]
    pub(crate) fn physical_index(&self, slot_number: u64) -> usize {
        (slot_number % self.n_slots) as usize
    }

    /// If `now` falls in a newer slot than the cursor, flushes every expired
    /// slot through `flush(physical_index)` and advances the cursor.
    ///
    /// Returns `true` if a rotation happened.
    #[inline]
    pub(crate) fn maybe_rotate(&self, now: Nanos, flush: impl FnMut(usize)) -> bool {
        let slot_no = self.slot_number(now);
        if slot_no <= self.cursor.load(Ordering::Acquire) {
            return false;
        }
        self.rotate_slow(slot_no, flush)
    }

    #[cold]
    fn rotate_slow(&self, slot_no: u64, mut flush: impl FnMut(usize)) -> bool {
        let _guard = self.lock.lock();
        let cursor = self.cursor.load(Ordering::Acquire);
        if slot_no <= cursor {
            return false; // another thread rotated first
        }
        // Each physical slot needs flushing at most once, so when the gap
        // exceeds the ring size only the trailing `n_slots` numbers matter.
        let first = (cursor + 1).max(slot_no.saturating_sub(self.n_slots - 1));
        for s in first..=slot_no {
            flush(self.physical_index(s));
        }
        self.cursor.store(slot_no, Ordering::Release);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotates_once_per_slot() {
        let r = RingRotator::new(10, 4);
        let mut flushed = Vec::new();
        assert!(!r.maybe_rotate(5, |i| flushed.push(i)));
        assert!(r.maybe_rotate(10, |i| flushed.push(i)));
        assert_eq!(flushed, vec![1]);
        assert!(!r.maybe_rotate(15, |i| flushed.push(i)));
        assert!(r.maybe_rotate(25, |i| flushed.push(i)));
        assert_eq!(flushed, vec![1, 2]);
    }

    #[test]
    fn large_gap_flushes_each_slot_once() {
        let r = RingRotator::new(10, 4);
        let mut flushed = Vec::new();
        assert!(r.maybe_rotate(1_000, |i| flushed.push(i)));
        flushed.sort_unstable();
        assert_eq!(flushed, vec![0, 1, 2, 3]);
    }

    #[test]
    fn multi_slot_gap_flushes_intermediate_slots() {
        let r = RingRotator::new(10, 8);
        r.maybe_rotate(10, |_| {});
        let mut flushed = Vec::new();
        r.maybe_rotate(45, |i| flushed.push(i));
        assert_eq!(flushed, vec![2, 3, 4]);
    }
}
