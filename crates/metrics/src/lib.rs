//! Measurement substrate for the Bouncer admission-control reproduction.
//!
//! Every admission policy in the paper is *measurement-based*: decisions are
//! driven by statistics gathered from recent query executions. This crate
//! provides those building blocks, shared by the simulator (virtual time) and
//! the LIquid-like real system (wall-clock time):
//!
//! * [`time`] / [`clock`] — a nanosecond time base and pluggable clocks, so
//!   the same policy code runs under simulated and real time.
//! * [`histogram`] — a concurrent log-linear histogram (HdrHistogram-style)
//!   with lock-free recording and cheap mean/percentile queries.
//! * [`dual_buffer`] — the paper's dual-buffer technique (§3, footnote 4):
//!   one histogram is read while a second is populated; the two are swapped
//!   atomically at the end of each time interval.
//! * [`estimate`] — the interval-cached estimate table + running demand
//!   counter that keep the admission decision O(1) in type count and
//!   histogram size (rebuilt at dual-buffer swap points).
//! * [`sliding`] — a sliding-window histogram (§7's proposed alternative to
//!   non-overlapping windows), used by the histogram-mode ablation.
//! * [`window`] — per-query-type sliding-window accepted/received counters
//!   (the `SW` structure of Algorithms 2 and 3), with O(1) rolling totals.
//! * [`moving`] — sliding-window moving averages of processing time and
//!   arrival rate (`pt_mavg`, `qps_mavg`) used by MaxQWT and AcceptFraction.
//! * [`spsc`] — bounded single-producer/single-consumer rings with in-place
//!   slot access and park/unpark backoff, the hop primitive of the liquid
//!   cluster's thread-per-core `rings` transport.

#![warn(missing_docs)]

pub mod clock;
pub mod dual_buffer;
pub mod estimate;
pub mod histogram;
pub mod moving;
pub(crate) mod ring;
pub mod sliding;
pub mod spsc;
pub mod time;
pub mod window;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use dual_buffer::DualHistogram;
pub use estimate::{EstimateEntry, EstimateTable};
pub use histogram::{AtomicHistogram, HistogramSnapshot};
pub use moving::MovingStats;
pub use sliding::SlidingHistogram;
pub use time::Nanos;
pub use window::WindowedCounters;
