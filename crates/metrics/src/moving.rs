//! Sliding-window moving statistics: `pt_mavg` and `qps_mavg`.
//!
//! MaxQWT (§5.2.2) estimates the mean queue wait time from "the moving
//! average of query processing times in a sliding window of duration `D` and
//! time step `Δ`, with `D ≫ Δ`" (Eq. 5), and AcceptFraction (§5.2.3)
//! additionally needs "the moving average of the incoming traffic rate in
//! queries per second". Both default to D = 60 s, Δ = 1 s in the paper.
//!
//! One [`MovingStats`] instance provides both: each recorded sample
//! contributes to a windowed (count, sum) pair, so `mean()` gives `pt_mavg`
//! over the samples and `rate_per_sec()` gives `qps_mavg` when every arrival
//! records a sample.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use crate::ring::RingRotator;
use crate::time::{Nanos, SECOND};

struct Slot {
    count: AtomicU64,
    sum: AtomicU64,
}

/// Windowed (count, sum) statistics with O(1) reads.
pub struct MovingStats {
    slots: Box<[Slot]>,
    /// Rolling totals; `i64` for the same benign race tolerance as
    /// [`crate::window::WindowedCounters`] — reads clamp at zero.
    count_total: AtomicI64,
    sum_total: AtomicI64,
    rotator: RingRotator,
    duration: Nanos,
    /// Time of the first recorded sample (`u64::MAX` until then), used to
    /// avoid over-dividing the rate before a full window has elapsed.
    started: AtomicU64,
}

impl std::fmt::Debug for MovingStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MovingStats")
            .field("duration", &self.duration)
            .finish()
    }
}

impl MovingStats {
    /// Creates a window of `duration` advanced in steps of `step`.
    pub fn new(duration: Nanos, step: Nanos) -> Self {
        assert!(step > 0 && duration >= 2 * step, "window must span >= 2 steps");
        let n_slots = (duration / step) as usize;
        Self {
            slots: (0..n_slots)
                .map(|_| Slot {
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                })
                .collect(),
            count_total: AtomicI64::new(0),
            sum_total: AtomicI64::new(0),
            rotator: RingRotator::new(step, n_slots),
            duration,
            started: AtomicU64::new(u64::MAX),
        }
    }

    #[inline]
    fn rotate(&self, now: Nanos) {
        self.rotator.maybe_rotate(now, |idx| {
            let slot = &self.slots[idx];
            let c = slot.count.swap(0, Ordering::AcqRel);
            if c != 0 {
                self.count_total.fetch_sub(c as i64, Ordering::AcqRel);
            }
            let s = slot.sum.swap(0, Ordering::AcqRel);
            if s != 0 {
                self.sum_total.fetch_sub(s as i64, Ordering::AcqRel);
            }
        });
    }

    /// Records one sample (e.g. a query's processing time in nanoseconds).
    #[inline]
    pub fn record(&self, value: u64, now: Nanos) {
        self.rotate(now);
        self.started.fetch_min(now, Ordering::AcqRel);
        let idx = self.rotator.physical_index(self.rotator.slot_number(now));
        let slot = &self.slots[idx];
        self.count_total.fetch_add(1, Ordering::AcqRel);
        self.sum_total.fetch_add(value as i64, Ordering::AcqRel);
        slot.count.fetch_add(1, Ordering::AcqRel);
        slot.sum.fetch_add(value, Ordering::AcqRel);
    }

    /// Number of samples currently inside the window.
    #[inline]
    pub fn count(&self, now: Nanos) -> u64 {
        self.rotate(now);
        self.count_total.load(Ordering::Acquire).max(0) as u64
    }

    /// Moving average of the samples in the window (`pt_mavg`), or `None` if
    /// the window is empty.
    #[inline]
    pub fn mean(&self, now: Nanos) -> Option<f64> {
        self.rotate(now);
        let c = self.count_total.load(Ordering::Acquire).max(0);
        if c == 0 {
            return None;
        }
        let s = self.sum_total.load(Ordering::Acquire).max(0);
        Some(s as f64 / c as f64)
    }

    /// Moving average of the sample arrival rate in events per second
    /// (`qps_mavg` when every arrival records a sample).
    ///
    /// Before a full window has elapsed since the first sample, divides by
    /// the elapsed time instead of the window duration so early readings are
    /// not biased low.
    pub fn rate_per_sec(&self, now: Nanos) -> f64 {
        self.rotate(now);
        let c = self.count_total.load(Ordering::Acquire).max(0) as f64;
        let started = self.started.load(Ordering::Acquire);
        if started == u64::MAX {
            return 0.0;
        }
        let step = self.duration / self.slots.len() as u64;
        let elapsed = now.saturating_sub(started).clamp(step, self.duration);
        c * SECOND as f64 / elapsed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{millis, secs};

    #[test]
    fn mean_over_window() {
        let m = MovingStats::new(secs(60), secs(1));
        m.record(10, 0);
        m.record(20, millis(500));
        m.record(60, secs(2));
        assert_eq!(m.mean(secs(3)), Some(30.0));
        assert_eq!(m.count(secs(3)), 3);
    }

    #[test]
    fn empty_window_has_no_mean() {
        let m = MovingStats::new(secs(60), secs(1));
        assert_eq!(m.mean(0), None);
        assert_eq!(m.count(0), 0);
        assert_eq!(m.rate_per_sec(0), 0.0);
    }

    #[test]
    fn samples_expire() {
        let m = MovingStats::new(secs(10), secs(1));
        m.record(100, 0);
        assert_eq!(m.mean(secs(5)), Some(100.0));
        assert_eq!(m.mean(secs(11)), None);
    }

    #[test]
    fn rate_uses_elapsed_before_full_window() {
        let m = MovingStats::new(secs(60), secs(1));
        for i in 0..100 {
            m.record(1, millis(i * 10)); // 100 samples in 1s
        }
        let r = m.rate_per_sec(secs(1));
        assert!((r - 100.0).abs() < 15.0, "rate={r}");
    }

    #[test]
    fn rate_uses_window_when_warm() {
        let m = MovingStats::new(secs(10), secs(1));
        // 10 samples/s for 20s; only the last 10s stay in the window.
        for i in 0..200 {
            m.record(1, millis(i * 100));
        }
        let r = m.rate_per_sec(secs(20));
        assert!((r - 10.0).abs() < 2.0, "rate={r}");
    }

    #[test]
    fn rolling_mean_follows_recent_values() {
        let m = MovingStats::new(secs(10), secs(1));
        for i in 0..10 {
            m.record(100, secs(i));
        }
        for i in 10..20 {
            m.record(500, secs(i));
        }
        // At t=20s, all 100-valued samples have expired.
        let mean = m.mean(secs(20)).unwrap();
        assert!(mean > 480.0, "mean={mean}");
    }
}
