//! Interval-cached estimate table for the admission hot path.
//!
//! The paper stresses that Bouncer's estimations are "deliberately
//! inexpensive" (§3) because the decision sits on the critical path of every
//! query. The dual-buffer technique makes that cheapness structural: between
//! histogram swaps the frozen buffer never changes, so `pt_mean(type)` and
//! `pt_pX(type)` are **constants** for the whole interval. This module
//! caches those constants once per interval so a decision is a handful of
//! relaxed atomic loads instead of an O(types × buckets) recomputation.
//!
//! Two pieces:
//!
//! * A table of per-type [`EstimateEntry`]s — cached mean (fixed-point),
//!   warm/cold flag, and the resolved `(pt_pX, SLO_pX)` pairs for each SLO
//!   target. Every field is an individual atomic, so readers never see a
//!   torn value; a reader racing a rebuild may combine fields from two
//!   refreshes for one decision, a transient the estimation error budget of
//!   §3 already tolerates (single-threaded drivers — the simulator, the
//!   proptests — always see a fully consistent table).
//! * A running demand counter replacing Eq. 2's sum: the owner adds a
//!   type's cached mean on enqueue and subtracts it on dequeue — both sides
//!   read the *same* atomic cell — and every refresh of a cached mean
//!   compensates the counter by `queued × (new − old)`. The counter is
//!   therefore *exactly* `Σ queued(t) × mean(t)` at all times, not an
//!   approximation that drifts: integer adds and subtracts cancel exactly
//!   (no floating-point accumulation error), and the full rebuild re-anchors
//!   the sum each interval, bounding even racy-window error to the handful
//!   of in-flight operations during a swap.
//!
//! Means are stored in unsigned fixed point with [`FP_SHIFT`] fractional
//! bits (the counter itself is signed so a racing subtract-before-add cannot
//! wrap); at 8 bits the quantization error is under 4 ps per queued query —
//! orders of magnitude below the histogram's own 1.6 % bucket width.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Fractional bits of the fixed-point mean representation.
pub const FP_SHIFT: u32 = 8;
/// The fixed-point representation of 1.0.
pub const FP_ONE: u64 = 1 << FP_SHIFT;

/// Converts a mean (in nanoseconds) to fixed point.
#[inline]
pub fn mean_to_fp(mean_ns: f64) -> u64 {
    (mean_ns * FP_ONE as f64).round() as u64
}

/// Converts a fixed-point value back to (fractional) nanoseconds.
#[inline]
pub fn fp_to_ns(fp: u64) -> f64 {
    fp as f64 / FP_ONE as f64
}

/// Sentinel for "no percentile estimate" in a target slot (cold type with a
/// cold general fallback — Algorithm 1 skips the check entirely).
const PT_NONE: u64 = u64::MAX;

/// One query type's cached estimates.
///
/// `targets` holds the *resolved* per-percentile pairs: the `pt_pX` the
/// policy would have looked up (own histogram or general fallback) and the
/// SLO limit in effect (per-type SLO once warm, default SLO during warm-up).
/// Resolving at rebuild time keeps the read side free of any fallback or
/// warm-up branching.
#[derive(Debug)]
pub struct EstimateEntry {
    mean_fp: AtomicU64,
    warm: AtomicBool,
    n_targets: AtomicUsize,
    pts: Box<[AtomicU64]>,
    limits: Box<[AtomicU64]>,
}

impl EstimateEntry {
    fn new(max_targets: usize) -> Self {
        Self {
            mean_fp: AtomicU64::new(0),
            warm: AtomicBool::new(false),
            n_targets: AtomicUsize::new(0),
            pts: (0..max_targets).map(|_| AtomicU64::new(PT_NONE)).collect(),
            limits: (0..max_targets).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Cached mean in fixed point (0 when the type has no estimate; Eq. 2
    /// treats an unknown mean as contributing nothing).
    #[inline]
    pub fn mean_fp(&self) -> u64 {
        self.mean_fp.load(Ordering::Relaxed)
    }

    /// `true` once the type's own frozen histogram satisfies the warm-up
    /// sample threshold.
    #[inline]
    pub fn is_warm(&self) -> bool {
        self.warm.load(Ordering::Relaxed)
    }

    /// Number of resolved SLO target slots.
    #[inline]
    pub fn n_targets(&self) -> usize {
        self.n_targets.load(Ordering::Relaxed)
    }

    /// Target slot `i`: `(pt_pX, limit)`. `pt_pX` is `None` when neither the
    /// type nor the general histogram had data for this percentile.
    #[inline]
    pub fn target(&self, i: usize) -> (Option<u64>, u64) {
        let pt = self.pts[i].load(Ordering::Relaxed);
        let limit = self.limits[i].load(Ordering::Relaxed);
        ((pt != PT_NONE).then_some(pt), limit)
    }
}

/// The per-policy table: one [`EstimateEntry`] per registered query type
/// plus the running Eq. 2 demand counter.
#[derive(Debug)]
pub struct EstimateTable {
    entries: Box<[EstimateEntry]>,
    demand_fp: AtomicI64,
}

impl EstimateTable {
    /// A table for `n_types` query types, each with room for up to
    /// `max_targets` SLO percentile targets.
    pub fn new(n_types: usize, max_targets: usize) -> Self {
        Self {
            entries: (0..n_types).map(|_| EstimateEntry::new(max_targets)).collect(),
            demand_fp: AtomicI64::new(0),
        }
    }

    /// Number of types the table covers.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the table covers no types.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for type index `ty`.
    #[inline]
    pub fn entry(&self, ty: usize) -> &EstimateEntry {
        &self.entries[ty]
    }

    /// The running `Σ queued(t) × mean(t)` in fixed point. Clamped at zero
    /// by readers; a transiently negative value only occurs when a dequeue
    /// races an enqueue of the same in-flight query.
    #[inline]
    pub fn demand_fp(&self) -> i64 {
        self.demand_fp.load(Ordering::Relaxed)
    }

    /// Eq. 2's numerator in nanoseconds: the queued work currently priced
    /// into the counter.
    #[inline]
    pub fn demand_ns(&self) -> f64 {
        fp_to_ns(self.demand_fp().max(0) as u64)
    }

    /// Prices one enqueued query of type `ty` into the demand counter.
    #[inline]
    pub fn on_enqueued(&self, ty: usize) {
        let m = self.entries[ty].mean_fp.load(Ordering::Relaxed);
        self.demand_fp.fetch_add(m as i64, Ordering::Relaxed);
    }

    /// Removes one dequeued query of type `ty` from the demand counter —
    /// reading the same cell `on_enqueued` read, so the pair cancels exactly
    /// even across a table refresh (the refresh itself compensates for the
    /// queued population, see [`set_mean`](Self::set_mean)).
    #[inline]
    pub fn on_dequeued(&self, ty: usize) {
        let m = self.entries[ty].mean_fp.load(Ordering::Relaxed);
        self.demand_fp.fetch_sub(m as i64, Ordering::Relaxed);
    }

    /// Installs a new cached mean for `ty`, compensating the demand counter
    /// for the `queued` queries already priced at the old mean so the
    /// invariant `demand = Σ queued × mean` survives the refresh.
    pub fn set_mean(&self, ty: usize, mean_fp: u64, queued: u64) {
        let old = self.entries[ty].mean_fp.swap(mean_fp, Ordering::Relaxed);
        let delta = (mean_fp as i128 - old as i128) * queued as i128;
        self.demand_fp
            .fetch_add(clamp_i64(delta), Ordering::Relaxed);
    }

    /// Re-anchors the demand counter to an exactly recomputed
    /// `Σ queued × mean` (called from the interval rebuild, wiping out any
    /// error a racing enqueue/dequeue window may have left behind).
    pub fn reanchor_demand(&self, queued_by_type: impl Iterator<Item = u64>) {
        let mut total: i128 = 0;
        for (entry, queued) in self.entries.iter().zip(queued_by_type) {
            total += entry.mean_fp.load(Ordering::Relaxed) as i128 * queued as i128;
        }
        self.demand_fp.store(clamp_i64(total), Ordering::Relaxed);
    }

    /// Marks `ty` warm or cold (which SLO its limits were resolved from).
    pub fn set_warm(&self, ty: usize, warm: bool) {
        self.entries[ty].warm.store(warm, Ordering::Relaxed);
    }

    /// Installs the resolved `(pt_pX, limit)` pairs for `ty`.
    ///
    /// # Panics
    /// If `targets` exceeds the `max_targets` capacity of the table.
    pub fn set_targets(&self, ty: usize, targets: &[(Option<u64>, u64)]) {
        let entry = &self.entries[ty];
        assert!(
            targets.len() <= entry.pts.len(),
            "SLO has {} targets but the table was sized for {}",
            targets.len(),
            entry.pts.len()
        );
        for (i, (pt, limit)) in targets.iter().enumerate() {
            entry.pts[i].store(pt.unwrap_or(PT_NONE), Ordering::Relaxed);
            entry.limits[i].store(*limit, Ordering::Relaxed);
        }
        entry.n_targets.store(targets.len(), Ordering::Relaxed);
    }
}

#[inline]
fn clamp_i64(v: i128) -> i64 {
    v.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enqueue_dequeue_pairs_cancel_exactly() {
        let t = EstimateTable::new(2, 2);
        t.set_mean(0, mean_to_fp(1_000.5), 0);
        t.set_mean(1, mean_to_fp(250.25), 0);
        for _ in 0..1_000 {
            t.on_enqueued(0);
            t.on_enqueued(1);
        }
        for _ in 0..1_000 {
            t.on_dequeued(1);
            t.on_dequeued(0);
        }
        assert_eq!(t.demand_fp(), 0);
    }

    #[test]
    fn refresh_compensates_for_queued_population() {
        let t = EstimateTable::new(1, 1);
        t.set_mean(0, mean_to_fp(100.0), 0);
        for _ in 0..10 {
            t.on_enqueued(0);
        }
        assert_eq!(t.demand_ns(), 1_000.0);

        // Mid-flight refresh: 10 queued queries were priced at 100ns; the
        // new mean is 130ns, so the counter must jump by 10 x 30ns.
        t.set_mean(0, mean_to_fp(130.0), 10);
        assert_eq!(t.demand_ns(), 1_300.0);

        // Dequeues after the refresh subtract the *new* mean and drain the
        // counter to exactly zero.
        for _ in 0..10 {
            t.on_dequeued(0);
        }
        assert_eq!(t.demand_fp(), 0);
    }

    #[test]
    fn reanchor_restores_the_invariant() {
        let t = EstimateTable::new(3, 1);
        for ty in 0..3 {
            t.set_mean(ty, mean_to_fp((ty as f64 + 1.0) * 10.0), 0);
        }
        // Scramble the counter, then re-anchor against queued = [5, 0, 2].
        t.demand_fp.store(123_456, Ordering::Relaxed);
        t.reanchor_demand([5u64, 0, 2].into_iter());
        assert_eq!(t.demand_ns(), 5.0 * 10.0 + 2.0 * 30.0);
    }

    #[test]
    fn targets_round_trip_including_none() {
        let t = EstimateTable::new(1, 3);
        t.set_targets(0, &[(Some(500), 1_000), (None, 2_000)]);
        t.set_warm(0, true);
        let e = t.entry(0);
        assert!(e.is_warm());
        assert_eq!(e.n_targets(), 2);
        assert_eq!(e.target(0), (Some(500), 1_000));
        assert_eq!(e.target(1), (None, 2_000));
    }

    #[test]
    fn negative_transients_clamp_to_zero_demand() {
        let t = EstimateTable::new(1, 1);
        t.set_mean(0, mean_to_fp(50.0), 0);
        t.on_dequeued(0); // dequeue racing ahead of its enqueue
        assert!(t.demand_fp() < 0);
        assert_eq!(t.demand_ns(), 0.0);
        t.on_enqueued(0);
        assert_eq!(t.demand_fp(), 0);
    }
}
