//! Sliding-window histogram: the paper's proposed alternative to
//! non-overlapping dual-buffer windows (§7 future work: "update processing
//! time histograms in a sliding window, instead of non-overlapping
//! windows").
//!
//! A ring of `K` interval sub-histograms; recording goes into the slot for
//! the current interval, reads merge the last `K` completed-plus-current
//! intervals. Compared with [`DualHistogram`](crate::DualHistogram):
//!
//! * reads see a window of `K·interval` trailing data instead of exactly
//!   the previous interval — smoother percentiles, slower reaction;
//! * fresh samples are visible immediately (no swap boundary);
//! * reads are more expensive — each read runs a cumulative scan across
//!   every sub-histogram — which is why the paper's production system used
//!   the dual-buffer scheme.
//!
//! Rotation reuses the same time-based ring discipline as the window
//! counters; an interval with no activity is cleared lazily when the ring
//! wraps back onto its slot.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::histogram::AtomicHistogram;
use crate::time::Nanos;

/// A histogram over a sliding window of `K` intervals.
pub struct SlidingHistogram {
    slots: Box<[AtomicHistogram]>,
    /// Slot-number (now / interval) currently stored in each slot.
    epochs: Box<[AtomicU64]>,
    interval: Nanos,
    rotate_lock: Mutex<()>,
    cursor: AtomicU64,
}

impl std::fmt::Debug for SlidingHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlidingHistogram")
            .field("intervals", &self.slots.len())
            .field("interval_ns", &self.interval)
            .finish()
    }
}

impl SlidingHistogram {
    /// Creates a window of `intervals` sub-histograms, each covering
    /// `interval` nanoseconds.
    pub fn new(intervals: usize, interval: Nanos) -> Self {
        assert!(intervals >= 2, "need at least two intervals");
        assert!(interval > 0, "interval must be positive");
        Self {
            slots: (0..intervals).map(|_| AtomicHistogram::new()).collect(),
            epochs: (0..intervals).map(|_| AtomicU64::new(u64::MAX)).collect(),
            interval,
            rotate_lock: Mutex::new(()),
            cursor: AtomicU64::new(0),
        }
    }

    #[inline]
    fn slot_no(&self, now: Nanos) -> u64 {
        now / self.interval
    }

    /// Clears slots whose data has fallen out of the window.
    fn rotate(&self, now: Nanos) {
        let current = self.slot_no(now);
        if self.cursor.load(Ordering::Acquire) >= current {
            return;
        }
        let _guard = self.rotate_lock.lock();
        let cursor = self.cursor.load(Ordering::Acquire);
        if cursor >= current {
            return;
        }
        let k = self.slots.len() as u64;
        let first = (cursor + 1).max(current.saturating_sub(k - 1));
        for s in first..=current {
            let idx = (s % k) as usize;
            self.slots[idx].reset();
            self.epochs[idx].store(s, Ordering::Release);
        }
        self.cursor.store(current, Ordering::Release);
    }

    /// Records a sample at time `now`.
    #[inline]
    pub fn record(&self, value: u64, now: Nanos) {
        self.rotate(now);
        let s = self.slot_no(now);
        let idx = (s % self.slots.len() as u64) as usize;
        // The very first interval is never rotated into existence; claim
        // its epoch on first use.
        let _ = self.epochs[idx].compare_exchange(
            u64::MAX,
            s,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        // A racing rotation may clear this sample; bounded, benign loss —
        // the same tolerance every estimator in this crate accepts.
        self.slots[idx].record(value);
    }

    /// Visits the sub-histograms currently inside the window.
    fn live_slots(&self, now: Nanos) -> impl Iterator<Item = &AtomicHistogram> {
        let current = self.slot_no(now);
        let k = self.slots.len() as u64;
        self.slots.iter().enumerate().filter_map(move |(i, h)| {
            let epoch = self.epochs[i].load(Ordering::Acquire);
            (epoch != u64::MAX && epoch + k > current).then_some(h)
        })
    }

    /// Samples currently inside the window.
    pub fn count(&self, now: Nanos) -> u64 {
        self.rotate(now);
        self.live_slots(now).map(|h| h.count()).sum()
    }

    /// Mean over the window, or `None` if empty.
    pub fn mean(&self, now: Nanos) -> Option<f64> {
        self.rotate(now);
        let mut total = 0u64;
        let mut weighted = 0.0;
        for h in self.live_slots(now) {
            let n = h.count();
            if let Some(m) = h.mean() {
                total += n;
                weighted += m * n as f64;
            }
        }
        (total > 0).then(|| weighted / total as f64)
    }

    /// Quantile over the window, or `None` if empty.
    ///
    /// Still a `K`-way read, but runs one cumulative scan directly across
    /// the live sub-histograms, bounded by their high-water marks — no
    /// snapshot copies or merges (the seed allocated and merged `K` full
    /// 1 920-bucket snapshots per read).
    pub fn value_at_quantile(&self, q: f64, now: Nanos) -> Option<u64> {
        let mut out = [None];
        self.values_at_quantiles(&[q], now, &mut out);
        out[0]
    }

    /// One cross-slot cumulative pass answering several quantiles at once;
    /// the estimate-table rebuild uses this to price every SLO percentile of
    /// a type in a single scan. Same contract as
    /// [`AtomicHistogram::values_at_quantiles`].
    pub fn values_at_quantiles(&self, qs: &[f64], now: Nanos, out: &mut [Option<u64>]) {
        use crate::histogram::{value_of, BUCKETS};
        assert_eq!(qs.len(), out.len(), "qs/out length mismatch");
        self.rotate(now);
        out.fill(None);
        let live: Vec<&AtomicHistogram> = self.live_slots(now).collect();
        let mut total = 0u64;
        let mut hwm = 0usize;
        for h in &live {
            total += h.count();
            hwm = hwm.max(h.hwm_bound());
        }
        if total == 0 {
            return;
        }
        let mut remaining = qs.len();
        let mut cumulative = 0u64;
        for i in 0..hwm {
            cumulative += live.iter().map(|h| h.bucket(i)).sum::<u64>();
            for (q, slot) in qs.iter().zip(out.iter_mut()) {
                if slot.is_none() {
                    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
                    if cumulative >= rank {
                        *slot = Some(value_of(i));
                        remaining -= 1;
                    }
                }
            }
            if remaining == 0 {
                return;
            }
        }
        if remaining > 0 {
            // Concurrent-writer shortfall: highest non-empty bucket, full range.
            let fallback = (0..BUCKETS)
                .rev()
                .find(|&i| live.iter().any(|h| h.bucket(i) > 0))
                .map(value_of);
            for slot in out.iter_mut() {
                if slot.is_none() {
                    *slot = fallback;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;

    #[test]
    fn fresh_samples_are_visible_immediately() {
        let h = SlidingHistogram::new(4, secs(1));
        h.record(100, 0);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.mean(0), Some(100.0));
        // Log-linear quantization: within one bucket width of the value.
        let p50 = h.value_at_quantile(0.5, 0).unwrap();
        assert!(p50.abs_diff(100) <= 4, "p50={p50}");
    }

    #[test]
    fn window_merges_recent_intervals() {
        let h = SlidingHistogram::new(3, secs(1));
        h.record(10, 0); // interval 0
        h.record(20, secs(1)); // interval 1
        h.record(30, secs(2)); // interval 2
        assert_eq!(h.count(secs(2)), 3);
        assert_eq!(h.mean(secs(2)), Some(20.0));
    }

    #[test]
    fn old_intervals_fall_out() {
        let h = SlidingHistogram::new(3, secs(1));
        h.record(1_000, 0);
        h.record(10, secs(2));
        // At t=3s, interval 0 has left the 3-interval window.
        assert_eq!(h.count(secs(3)), 1);
        assert_eq!(h.mean(secs(3)), Some(10.0));
        // At t=5s, everything is gone.
        assert_eq!(h.count(secs(5)), 0);
        assert_eq!(h.mean(secs(5)), None);
        assert_eq!(h.value_at_quantile(0.9, secs(5)), None);
    }

    #[test]
    fn long_gap_clears_all_slots() {
        let h = SlidingHistogram::new(4, secs(1));
        for i in 0..8 {
            h.record(i, secs(i));
        }
        assert_eq!(h.count(secs(1_000)), 0);
    }

    #[test]
    fn quantiles_merge_across_intervals() {
        let h = SlidingHistogram::new(4, secs(1));
        for v in 0..100u64 {
            h.record(v * 1_000, secs(v % 3));
        }
        let p50 = h.value_at_quantile(0.5, secs(2)).unwrap();
        assert!((p50 as i64 - 49_000).unsigned_abs() < 3_000, "p50={p50}");
    }

    #[test]
    fn smoother_than_dual_buffer_under_shift() {
        // A level shift at t=3s: sliding window (4 intervals) moves
        // gradually; reads mix old and new data.
        let h = SlidingHistogram::new(4, secs(1));
        for i in 0..3 {
            for _ in 0..100 {
                h.record(10_000, secs(i));
            }
        }
        for _ in 0..100 {
            h.record(50_000, secs(3));
        }
        let mean = h.mean(secs(3)).unwrap();
        assert!((mean - 20_000.0).abs() < 500.0, "mean={mean}");
    }

    #[test]
    fn multi_quantile_pass_matches_individual_lookups() {
        let h = SlidingHistogram::new(4, secs(1));
        for v in 0..500u64 {
            h.record(v * 997, secs(v % 3));
        }
        let qs = [0.9, 0.1, 0.5, 1.0];
        let mut out = [None; 4];
        h.values_at_quantiles(&qs, secs(2), &mut out);
        for (q, got) in qs.iter().zip(out.iter()) {
            assert_eq!(*got, h.value_at_quantile(*q, secs(2)), "q={q}");
        }
    }

    #[test]
    fn concurrent_recording_is_safe() {
        use std::sync::Arc;
        let h = Arc::new(SlidingHistogram::new(4, 1_000_000));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..20_000u64 {
                        h.record(t * 100 + i % 50, i * 100);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert!(h.count(2_000_000) > 0);
    }
}
