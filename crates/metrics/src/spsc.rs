//! Bounded single-producer/single-consumer rings for the thread-per-core
//! data path.
//!
//! A [`channel`] is a fixed-capacity power-of-two ring of pre-initialized
//! slots with one [`Producer`] and one [`Consumer`] handle. Because each
//! side is a unique owner, the only shared state is a pair of monotone
//! indices — no mutex, no CAS loop, no allocation — and a slot is accessed
//! in place through closures ([`Producer::try_push`],
//! [`Consumer::try_pop`]), so payload buffers stay resident in the ring and
//! are reused across messages.
//!
//! Head and tail live on separate cache lines ([`Padded`]) so the producer
//! and consumer cores do not false-share, and each side caches the opposite
//! index, refreshing it only when the ring looks full (producer) or empty
//! (consumer) — the steady-state push/pop executes one relaxed load, one
//! slot write, and one release store.
//!
//! Blocking is cooperative: every ring carries an [`Arc<Waker>`] naming its
//! consumer. A producer's push ends with a `SeqCst` fence and a relaxed
//! state load, waking the consumer only if it advertised itself as parked
//! (the crossbeam-parker handshake), so an awake consumer costs a push
//! nothing but the fence. One waker may be shared by many rings: an engine
//! thread that serves several rings parks once for all of them and is woken
//! by whichever producer arrives first.

use std::cell::UnsafeCell;
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::Thread;
use std::time::{Duration, Instant};

/// Pads (and aligns) a value to a 64-byte cache line so two adjacent
/// atomics never false-share.
#[repr(align(64))]
struct Padded<T>(T);

/// No registered consumer thread yet.
const WAKER_EMPTY: u32 = 0;
/// A consumer thread is registered and running.
const WAKER_IDLE: u32 = 1;
/// The consumer advertised it is parked (or about to park).
const WAKER_PARKED: u32 = 2;
/// A producer claimed the exclusive right to read the thread cell and
/// unpark it.
const WAKER_WAKING: u32 = 3;

/// Park/unpark rendezvous for one consumer thread, shareable across every
/// ring that thread consumes.
///
/// The registered [`Thread`] handle lives in a plain cell; exclusivity is
/// arbitrated through the state machine instead of a lock. Writes happen
/// only in [`Waker::register_current`] (the unique consumer, never while a
/// producer holds `WAKING`); reads happen only under a successfully claimed
/// `PARKED -> WAKING` transition. The consumer re-registers each time it
/// prepares to park, so handles stay correct even when consumption moves
/// between threads (a front lane claimed by different client threads).
pub struct Waker {
    state: AtomicU32,
    thread: UnsafeCell<Option<Thread>>,
}

// SAFETY: the `thread` cell is only written by the (unique) consumer while
// no producer is in the `WAKING` state, and only read by the single
// producer that won the `PARKED -> WAKING` CAS; `register_current` spins
// out any in-flight reader first.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// A fresh waker with no registered consumer.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            state: AtomicU32::new(WAKER_EMPTY),
            thread: UnsafeCell::new(None),
        })
    }

    /// Registers the calling thread as the consumer this waker unparks.
    ///
    /// Must only be called by the current (unique) consumer of the rings
    /// sharing this waker.
    pub fn register_current(&self) {
        // Wait out a producer that is still reading the previous handle.
        while self.state.load(Ordering::Acquire) == WAKER_WAKING {
            std::hint::spin_loop();
        }
        // SAFETY: we are the unique consumer and no producer is reading
        // (producers only read under WAKING, excluded above and unreachable
        // again until we store PARKED).
        unsafe { *self.thread.get() = Some(std::thread::current()) };
        self.state.store(WAKER_IDLE, Ordering::Release);
    }

    /// Advertises the consumer as parked. Call [`Waker::register_current`]
    /// first, re-check every ring, then [`Waker::park`]; re-checking after
    /// this store closes the lost-wakeup window against the producers'
    /// post-push fence.
    pub fn prepare_park(&self) {
        self.state.store(WAKER_PARKED, Ordering::SeqCst);
        fence(Ordering::SeqCst);
    }

    /// Cancels an advertised park (new work was found on the re-check).
    pub fn cancel_park(&self) {
        // Leave WAKING alone: the producer will store IDLE when done.
        let _ = self.state.compare_exchange(
            WAKER_PARKED,
            WAKER_IDLE,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    /// Parks the calling thread for at most `timeout`, then clears the
    /// parked advertisement. Returns spuriously at will; callers loop.
    pub fn park(&self, timeout: Duration) {
        if self.state.load(Ordering::SeqCst) == WAKER_PARKED {
            std::thread::park_timeout(timeout);
        }
        self.cancel_park();
    }

    /// Wakes the consumer if (and only if) it advertised itself parked.
    /// Cheap when the consumer is running: one relaxed load.
    #[inline]
    pub fn wake(&self) {
        if self.state.load(Ordering::Relaxed) == WAKER_PARKED {
            self.wake_slow();
        }
    }

    #[cold]
    fn wake_slow(&self) {
        if self
            .state
            .compare_exchange(
                WAKER_PARKED,
                WAKER_WAKING,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            // SAFETY: winning the CAS grants exclusive read access; the
            // consumer spins while WAKING before rewriting the cell.
            let handle = unsafe { (*self.thread.get()).clone() };
            self.state.store(WAKER_IDLE, Ordering::Release);
            if let Some(t) = handle {
                t.unpark();
            }
        }
    }
}

/// State shared by the two endpoints of one ring.
struct Shared<T> {
    buf: Box<[UnsafeCell<T>]>,
    mask: usize,
    /// Next slot to pop; written only by the consumer.
    head: Padded<AtomicUsize>,
    /// Next slot to push; written only by the producer.
    tail: Padded<AtomicUsize>,
    closed: AtomicBool,
    waker: Arc<Waker>,
}

// SAFETY: slots are handed off between exactly one producer and one
// consumer through the release/acquire index pair; a slot between head and
// tail is owned by the consumer, otherwise by the producer.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

/// The pushing endpoint of a ring. Not clonable: single producer.
pub struct Producer<T> {
    ring: Arc<Shared<T>>,
    /// Last observed head; refreshed only when the ring looks full.
    cached_head: usize,
}

/// The popping endpoint of a ring. Not clonable: single consumer.
pub struct Consumer<T> {
    ring: Arc<Shared<T>>,
    /// Last observed tail; refreshed only when the ring looks empty.
    cached_tail: usize,
}

/// A bounded SPSC ring of at least `capacity` pre-initialized slots
/// (rounded up to a power of two), whose consumer parks on `waker`.
pub fn channel<T: Default>(capacity: usize, waker: Arc<Waker>) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf: Box<[UnsafeCell<T>]> = (0..cap).map(|_| UnsafeCell::new(T::default())).collect();
    let ring = Arc::new(Shared {
        buf,
        mask: cap - 1,
        head: Padded(AtomicUsize::new(0)),
        tail: Padded(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
        waker,
    });
    (
        Producer {
            ring: Arc::clone(&ring),
            cached_head: 0,
        },
        Consumer {
            ring,
            cached_tail: 0,
        },
    )
}

/// A read-only occupancy probe for one ring, detached from the endpoint
/// pair: clonable, shareable with any thread, and alive after both
/// endpoints drop. It reads only the shared head/tail indices — never the
/// slots — so observers (the health sampler's ring-occupancy gauge) cost
/// the data path nothing.
pub struct RingProbe<T> {
    ring: Arc<Shared<T>>,
}

impl<T> Clone for RingProbe<T> {
    fn clone(&self) -> Self {
        Self {
            ring: Arc::clone(&self.ring),
        }
    }
}

impl<T> RingProbe<T> {
    /// Messages currently in flight (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.ring
            .tail
            .0
            .load(Ordering::Acquire)
            .wrapping_sub(self.ring.head.0.load(Ordering::Acquire))
    }

    /// Whether the ring is currently empty (approximate).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slot count (always a power of two).
    pub fn capacity(&self) -> usize {
        self.ring.buf.len()
    }
}

impl<T> Producer<T> {
    /// Slot count (always a power of two).
    pub fn capacity(&self) -> usize {
        self.ring.buf.len()
    }

    /// An occupancy probe onto this ring (see [`RingProbe`]).
    pub fn probe(&self) -> RingProbe<T> {
        RingProbe {
            ring: Arc::clone(&self.ring),
        }
    }

    /// Messages currently in flight (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.ring
            .tail
            .0
            .load(Ordering::Relaxed)
            .wrapping_sub(self.ring.head.0.load(Ordering::Acquire))
    }

    /// Whether the ring is currently empty (approximate).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes one message in place through `fill` and publishes it, waking
    /// a parked consumer. Returns `false` (without calling `fill`) when the
    /// ring is full or closed.
    #[inline]
    pub fn try_push(&mut self, fill: impl FnOnce(&mut T)) -> bool {
        let tail = self.ring.tail.0.load(Ordering::Relaxed);
        if tail.wrapping_sub(self.cached_head) == self.ring.buf.len() {
            self.cached_head = self.ring.head.0.load(Ordering::Acquire);
            if tail.wrapping_sub(self.cached_head) == self.ring.buf.len() {
                return false;
            }
        }
        if self.ring.closed.load(Ordering::Acquire) {
            return false;
        }
        // SAFETY: slot `tail` is not visible to the consumer until the
        // release store below, and we are the only producer.
        unsafe { fill(&mut *self.ring.buf[tail & self.ring.mask].get()) };
        self.ring.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        // Store->load barrier against the consumer's prepare_park/re-check
        // sequence, then wake only an advertised-parked consumer.
        fence(Ordering::SeqCst);
        self.ring.waker.wake();
        true
    }

    /// Pushes up to `n` messages with one index publication and one wake;
    /// `fill(i, slot)` writes the `i`-th. Returns how many were pushed.
    pub fn push_batch(&mut self, n: usize, mut fill: impl FnMut(usize, &mut T)) -> usize {
        let tail = self.ring.tail.0.load(Ordering::Relaxed);
        let mut free = self
            .ring
            .buf
            .len()
            .wrapping_sub(tail.wrapping_sub(self.cached_head));
        if free < n {
            self.cached_head = self.ring.head.0.load(Ordering::Acquire);
            free = self
                .ring
                .buf
                .len()
                .wrapping_sub(tail.wrapping_sub(self.cached_head));
        }
        if self.ring.closed.load(Ordering::Acquire) {
            return 0;
        }
        let take = n.min(free);
        for i in 0..take {
            // SAFETY: slots `tail..tail+take` are producer-owned until the
            // single release store below.
            unsafe { fill(i, &mut *self.ring.buf[tail.wrapping_add(i) & self.ring.mask].get()) };
        }
        if take > 0 {
            self.ring
                .tail
                .0
                .store(tail.wrapping_add(take), Ordering::Release);
            fence(Ordering::SeqCst);
            self.ring.waker.wake();
        }
        take
    }

    /// Marks the ring closed and wakes the consumer so it can observe the
    /// close. Already-published messages remain poppable.
    pub fn close(&self) {
        self.ring.closed.store(true, Ordering::Release);
        fence(Ordering::SeqCst);
        self.ring.waker.wake();
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.close();
    }
}

impl<T> Consumer<T> {
    /// Slot count (always a power of two).
    pub fn capacity(&self) -> usize {
        self.ring.buf.len()
    }

    /// Messages currently in flight (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.ring
            .tail
            .0
            .load(Ordering::Acquire)
            .wrapping_sub(self.ring.head.0.load(Ordering::Relaxed))
    }

    /// Whether the ring is currently empty (approximate).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the producer closed the ring **and** everything published
    /// has been popped.
    pub fn is_drained(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire) && self.is_empty()
    }

    /// An occupancy probe onto this ring (see [`RingProbe`]).
    pub fn probe(&self) -> RingProbe<T> {
        RingProbe {
            ring: Arc::clone(&self.ring),
        }
    }

    /// The waker producers use to unpark this ring's consumer.
    pub fn waker(&self) -> &Arc<Waker> {
        &self.ring.waker
    }

    /// Reads the oldest message in place through `read` (which may also
    /// scavenge the slot's buffers) and releases its slot. Returns `None`
    /// when the ring is empty.
    #[inline]
    pub fn try_pop<R>(&mut self, read: impl FnOnce(&mut T) -> R) -> Option<R> {
        let head = self.ring.head.0.load(Ordering::Relaxed);
        if self.cached_tail == head {
            self.cached_tail = self.ring.tail.0.load(Ordering::Acquire);
            if self.cached_tail == head {
                return None;
            }
        }
        // SAFETY: slot `head` was published by the producer's release store
        // and is ours until the release store below.
        let r = unsafe { read(&mut *self.ring.buf[head & self.ring.mask].get()) };
        self.ring.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(r)
    }

    /// Pops up to `max` messages with one index publication; `read(slot)`
    /// sees each in FIFO order. Returns how many were popped.
    pub fn pop_batch(&mut self, max: usize, mut read: impl FnMut(&mut T)) -> usize {
        let head = self.ring.head.0.load(Ordering::Relaxed);
        let mut avail = self.cached_tail.wrapping_sub(head);
        if avail < max {
            self.cached_tail = self.ring.tail.0.load(Ordering::Acquire);
            avail = self.cached_tail.wrapping_sub(head);
        }
        let take = max.min(avail);
        for i in 0..take {
            // SAFETY: slots `head..head+take` were published by the
            // producer and are consumer-owned until the store below.
            unsafe { read(&mut *self.ring.buf[head.wrapping_add(i) & self.ring.mask].get()) };
        }
        if take > 0 {
            self.ring
                .head
                .0
                .store(head.wrapping_add(take), Ordering::Release);
        }
        take
    }

    /// Pops one message, spinning briefly then parking on the ring's waker
    /// until one arrives, `timeout` elapses, or the ring is drained and
    /// closed. Registers the calling thread with the waker, so the caller
    /// must be the ring's (current) unique consumer.
    pub fn pop_wait<R>(
        &mut self,
        timeout: Duration,
        read: impl FnOnce(&mut T) -> R,
    ) -> Option<R> {
        // Being the unique consumer, observing non-empty guarantees the
        // subsequent try_pop succeeds, so the FnOnce is consumed exactly
        // once on the success path.
        const SPINS: usize = 64;
        for _ in 0..SPINS {
            if !self.is_empty() {
                return self.try_pop(read);
            }
            std::hint::spin_loop();
        }
        let deadline = Instant::now() + timeout;
        let waker = Arc::clone(&self.ring.waker);
        waker.register_current();
        loop {
            if !self.is_empty() {
                return self.try_pop(read);
            }
            if self.ring.closed.load(Ordering::Acquire) {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            waker.prepare_park();
            // Re-check after advertising PARKED (paired with the
            // producer's post-publish fence) to close the lost-wakeup
            // window, then park for the remaining budget.
            if !self.is_empty() || self.ring.closed.load(Ordering::Acquire) {
                waker.cancel_park();
                continue;
            }
            waker.park((deadline - now).min(Duration::from_millis(1)));
        }
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        // Let a producer blocked on "full" observe the close; there is no
        // producer-side parking, so no wake is needed.
        self.ring.closed.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_full_empty_boundaries() {
        let (mut tx, mut rx) = channel::<u64>(4, Waker::new());
        assert_eq!(tx.capacity(), 4);
        assert!(rx.try_pop(|_| ()).is_none(), "fresh ring is empty");
        for i in 0..4u64 {
            assert!(tx.try_push(|s| *s = i));
        }
        assert!(!tx.try_push(|s| *s = 99), "full ring rejects a push");
        for i in 0..4u64 {
            assert_eq!(rx.try_pop(|s| *s), Some(i));
        }
        assert!(rx.try_pop(|_| ()).is_none(), "drained ring is empty");
        // Wraparound: keep cycling past the physical end several times.
        for round in 0..10u64 {
            for i in 0..3 {
                assert!(tx.try_push(|s| *s = round * 10 + i));
            }
            for i in 0..3 {
                assert_eq!(rx.try_pop(|s| *s), Some(round * 10 + i));
            }
        }
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = channel::<u8>(5, Waker::new());
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = channel::<u8>(0, Waker::new());
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn batch_push_pop_round_trip() {
        let (mut tx, mut rx) = channel::<u64>(8, Waker::new());
        assert_eq!(tx.push_batch(5, |i, s| *s = i as u64), 5);
        assert_eq!(tx.push_batch(10, |i, s| *s = 100 + i as u64), 3, "only 3 free");
        let mut got = Vec::new();
        assert_eq!(rx.pop_batch(6, |s| got.push(*s)), 6);
        assert_eq!(got, vec![0, 1, 2, 3, 4, 100]);
        assert_eq!(rx.pop_batch(6, |s| got.push(*s)), 2);
        assert_eq!(&got[6..], &[101, 102]);
        assert_eq!(rx.pop_batch(1, |_| unreachable!("empty")), 0);
    }

    #[test]
    fn slots_retain_their_buffers_across_messages() {
        // The whole point of in-place access: a slot's Vec keeps its
        // capacity from one message to the next.
        let (mut tx, mut rx) = channel::<Vec<u32>>(2, Waker::new());
        assert!(tx.try_push(|v| {
            v.clear();
            v.extend_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        }));
        let cap_before = rx.try_pop(|v| v.capacity()).unwrap();
        assert!(cap_before >= 8);
        // Advance one full lap so the next push lands in the same slot.
        assert!(tx.try_push(|v| v.clear()));
        assert_eq!(rx.try_pop(|v| v.len()), Some(0));
        assert!(tx.try_push(|v| {
            assert!(v.capacity() >= 8, "slot buffer was reused");
            v.clear();
            v.push(42);
        }));
        assert_eq!(rx.try_pop(|v| v[0]), Some(42));
    }

    #[test]
    fn two_thread_stress_with_wraparound() {
        // Tiny capacity forces constant full/empty boundary crossings and
        // wraparound while both sides run flat out. Waits yield rather than
        // spin so the test stays fast on a single-core host.
        const N: u64 = 20_000;
        let (mut tx, mut rx) = channel::<u64>(4, Waker::new());
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                while !tx.try_push(|s| *s = i) {
                    std::thread::yield_now();
                }
            }
        });
        let mut expected = 0u64;
        while expected < N {
            if let Some(v) = rx.try_pop(|s| *s) {
                assert_eq!(v, expected, "messages arrive in order, none lost");
                expected += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn two_thread_stress_with_parking_consumer() {
        const N: u64 = 10_000;
        let (mut tx, mut rx) = channel::<u64>(8, Waker::new());
        let consumer = std::thread::spawn(move || {
            let mut sum = 0u64;
            for _ in 0..N {
                sum += rx
                    .pop_wait(Duration::from_secs(10), |s| *s)
                    .expect("producer is still running");
            }
            sum
        });
        for i in 0..N {
            while !tx.try_push(|s| *s = i) {
                std::thread::yield_now();
            }
            if i % 97 == 0 {
                // Give the consumer a chance to drain and park, exercising
                // the park/wake handshake rather than the fast path only.
                std::thread::sleep(Duration::from_micros(50));
            }
        }
        assert_eq!(consumer.join().unwrap(), N * (N - 1) / 2);
    }

    #[test]
    fn pop_wait_times_out_on_an_idle_ring() {
        let (_tx, mut rx) = channel::<u64>(4, Waker::new());
        let start = Instant::now();
        assert_eq!(rx.pop_wait(Duration::from_millis(20), |s| *s), None);
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn close_wakes_and_drains() {
        let (mut tx, mut rx) = channel::<u64>(4, Waker::new());
        assert!(tx.try_push(|s| *s = 7));
        tx.close();
        assert!(!tx.try_push(|s| *s = 8), "closed ring rejects pushes");
        // Published messages survive the close...
        assert_eq!(rx.pop_wait(Duration::from_secs(1), |s| *s), Some(7));
        // ...then the consumer observes the drain without waiting out the
        // full timeout.
        let start = Instant::now();
        assert_eq!(rx.pop_wait(Duration::from_secs(30), |s| *s), None);
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(rx.is_drained());
    }

    #[test]
    fn dropping_the_producer_closes_the_ring() {
        let (tx, mut rx) = channel::<u64>(4, Waker::new());
        let waiter = std::thread::spawn(move || rx.pop_wait(Duration::from_secs(30), |s| *s));
        std::thread::sleep(Duration::from_millis(10));
        drop(tx);
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn probe_tracks_occupancy_without_consuming() {
        let (mut tx, mut rx) = channel::<u64>(4, Waker::new());
        let probe = tx.probe();
        assert_eq!(probe.len(), 0);
        assert!(probe.is_empty());
        assert_eq!(probe.capacity(), 4);
        assert!(tx.try_push(|s| *s = 1));
        assert!(tx.try_push(|s| *s = 2));
        assert_eq!(probe.len(), 2, "probe sees pushes");
        assert_eq!(rx.try_pop(|s| *s), Some(1));
        assert_eq!(probe.len(), 1, "probe sees pops");
        // Probes from either endpoint agree, survive endpoint drops, and
        // clone freely.
        let probe2 = rx.probe().clone();
        drop(tx);
        drop(rx);
        assert_eq!(probe.len(), 1);
        assert_eq!(probe2.len(), 1);
    }

    #[test]
    fn shared_waker_serves_multiple_rings() {
        let waker = Waker::new();
        let (mut tx_a, mut rx_a) = channel::<u64>(4, Arc::clone(&waker));
        let (mut tx_b, mut rx_b) = channel::<u64>(4, Arc::clone(&waker));
        let consumer = std::thread::spawn(move || {
            rx_a.waker().register_current();
            let mut got = Vec::new();
            while got.len() < 2 {
                let mut progress = false;
                if let Some(v) = rx_a.try_pop(|s| *s) {
                    got.push(v);
                    progress = true;
                }
                if let Some(v) = rx_b.try_pop(|s| *s) {
                    got.push(v);
                    progress = true;
                }
                if !progress {
                    let waker = Arc::clone(rx_a.waker());
                    waker.prepare_park();
                    if rx_a.is_empty() && rx_b.is_empty() {
                        waker.park(Duration::from_millis(1));
                    } else {
                        waker.cancel_park();
                    }
                }
            }
            got.sort_unstable();
            got
        });
        std::thread::sleep(Duration::from_millis(5));
        assert!(tx_a.try_push(|s| *s = 1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(tx_b.try_push(|s| *s = 2));
        assert_eq!(consumer.join().unwrap(), vec![1, 2]);
    }
}
