//! Concurrent log-linear histogram for processing-time distributions.
//!
//! Bouncer "adopts the natural approach of maintaining approximations for
//! these distributions in histograms, one per query type" (§3). The policy
//! sits on the critical path of every query, so recording must be cheap and
//! thread-safe: buckets are `AtomicU64`s and recording is a single relaxed
//! `fetch_add` plus mean/extremum bookkeeping — no locks.
//!
//! # Bucket layout
//!
//! The value range is covered by a log-linear scheme (the same idea as
//! HdrHistogram): values below 32 map exactly; above that, each power-of-two
//! range is split into 32 linear sub-buckets, giving a worst-case relative
//! quantization error of about 1.6 % — far below the estimation error the
//! paper deliberately accepts in Eq. 2–4. With nanosecond units the full
//! `u64` range needs only 1 920 buckets (15 KiB per histogram).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of low-order bits of precision: 2^5 = 32 linear sub-buckets per
/// power-of-two range.
const PRECISION_BITS: u32 = 5;
const SUB_BUCKETS: u64 = 1 << PRECISION_BITS; // 32
/// Total bucket count: 32 exact values + 59 log ranges x 32 sub-buckets.
pub(crate) const BUCKETS: usize = ((64 - PRECISION_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// Maps a value to its bucket index.
#[inline]
fn index_of(value: u64) -> usize {
    if value < SUB_BUCKETS {
        value as usize
    } else {
        let g = 63 - value.leading_zeros() as u64; // g >= PRECISION_BITS
        let sub = (value >> (g - PRECISION_BITS as u64)) & (SUB_BUCKETS - 1);
        ((g - PRECISION_BITS as u64 + 1) * SUB_BUCKETS + sub) as usize
    }
}

/// The midpoint of the value range covered by a bucket index — the value we
/// report for samples that landed in that bucket.
#[inline]
pub(crate) fn value_of(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        index
    } else {
        let g = index / SUB_BUCKETS - 1 + PRECISION_BITS as u64;
        let sub = index % SUB_BUCKETS;
        let width = 1u64 << (g - PRECISION_BITS as u64);
        (1u64 << g) + sub * width + width / 2
    }
}

/// A thread-safe histogram with lock-free recording.
///
/// Reads (`mean`, `value_at_quantile`) use relaxed loads and may observe a
/// momentarily inconsistent count/bucket pair under concurrent writes; the
/// resulting error is bounded by the handful of in-flight samples, which is
/// well within the accuracy the policy already trades away for speed (§3).
/// Use [`AtomicHistogram::snapshot`] when exact self-consistency matters.
pub struct AtomicHistogram {
    counts: Box<[AtomicU64]>,
    total: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// High-water mark: one past the highest bucket index that has ever held
    /// a sample since the last `reset`. Quantile scans stop here instead of
    /// walking all ~1 920 buckets — with millisecond-scale latencies the
    /// occupied prefix is a few hundred buckets at most.
    hwm: AtomicUsize,
}

impl std::fmt::Debug for AtomicHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicHistogram")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .finish()
    }
}

impl AtomicHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let counts = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            counts,
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            hwm: AtomicUsize::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let i = index_of(value);
        // Raise the high-water mark before the bucket so a reader that sees
        // the new count usually sees the new mark too; the rare miss falls
        // back to the full-range scan below.
        self.hwm.fetch_max(i + 1, Ordering::Relaxed);
        self.counts[i].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// `true` if no samples have been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Arithmetic mean of the recorded samples (exact, not quantized), or
    /// `None` if empty.
    #[inline]
    pub fn mean(&self) -> Option<f64> {
        let n = self.total.load(Ordering::Relaxed);
        if n == 0 {
            return None;
        }
        Some(self.sum.load(Ordering::Relaxed) as f64 / n as f64)
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        if self.is_empty() {
            None
        } else {
            Some(self.min.load(Ordering::Relaxed))
        }
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        if self.is_empty() {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    /// The value at quantile `q` (`0.0..=1.0`), or `None` if empty.
    ///
    /// Uses the "lowest value with cumulative count >= ceil(q * n)" rule, so
    /// `q = 0.5` on {1, 2, 3, 4} reports (the bucket of) 2.
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        let total = self.total.load(Ordering::Relaxed);
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let hwm = self.hwm.load(Ordering::Relaxed).min(BUCKETS);
        let mut cumulative = 0u64;
        for (i, c) in self.counts[..hwm].iter().enumerate() {
            cumulative += c.load(Ordering::Relaxed);
            if cumulative >= rank {
                return Some(value_of(i));
            }
        }
        // Concurrent writers may have bumped `total` (or the mark) after we
        // read them; fall back to the highest non-empty bucket, full range.
        self.highest_bucket_value()
    }

    /// One cumulative pass answering several quantiles at once — the
    /// estimate-table rebuild asks for every SLO percentile of a type in a
    /// single scan instead of one scan per percentile. `out[i]` receives the
    /// value at `qs[i]`; the slices must have equal length. `qs` need not be
    /// sorted (SLO target lists are tiny, so each bucket checks all pending
    /// entries).
    pub fn values_at_quantiles(&self, qs: &[f64], out: &mut [Option<u64>]) {
        assert_eq!(qs.len(), out.len(), "qs/out length mismatch");
        let total = self.total.load(Ordering::Relaxed);
        if total == 0 {
            out.fill(None);
            return;
        }
        out.fill(None);
        let mut remaining = qs.len();
        let hwm = self.hwm.load(Ordering::Relaxed).min(BUCKETS);
        let mut cumulative = 0u64;
        for (i, c) in self.counts[..hwm].iter().enumerate() {
            cumulative += c.load(Ordering::Relaxed);
            for (q, slot) in qs.iter().zip(out.iter_mut()) {
                if slot.is_none() {
                    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
                    if cumulative >= rank {
                        *slot = Some(value_of(i));
                        remaining -= 1;
                    }
                }
            }
            if remaining == 0 {
                return;
            }
        }
        if remaining > 0 {
            // Concurrent-writer shortfall (same as `value_at_quantile`).
            let fallback = self.highest_bucket_value();
            for slot in out.iter_mut() {
                if slot.is_none() {
                    *slot = fallback;
                }
            }
        }
    }

    fn highest_bucket_value(&self) -> Option<u64> {
        self.counts
            .iter()
            .enumerate()
            .rev()
            .find(|(_, c)| c.load(Ordering::Relaxed) > 0)
            .map(|(i, _)| value_of(i))
    }

    /// Relaxed load of one bucket — lets the sliding window run cumulative
    /// scans directly across its sub-histograms without snapshotting them.
    #[inline]
    pub(crate) fn bucket(&self, i: usize) -> u64 {
        self.counts[i].load(Ordering::Relaxed)
    }

    /// The live high-water mark, clamped to the bucket range.
    #[inline]
    pub(crate) fn hwm_bound(&self) -> usize {
        self.hwm.load(Ordering::Relaxed).min(BUCKETS)
    }

    /// Clears all samples.
    pub fn reset(&self) {
        for c in self.counts.iter() {
            c.store(0, Ordering::Relaxed);
        }
        self.total.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        self.hwm.store(0, Ordering::Relaxed);
    }

    /// Copies the current contents into an immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total = counts.iter().sum();
        // The copy is exact, so recompute the mark from it rather than trust
        // the racy live one.
        let hwm = counts.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
        HistogramSnapshot {
            counts,
            total,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            hwm,
        }
    }
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// An immutable, self-consistent copy of a histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// One past the highest non-empty bucket (exact: computed from the
    /// copied counts), bounding quantile scans.
    hwm: usize,
}

impl HistogramSnapshot {
    /// Number of samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// `true` if the snapshot holds no samples.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum as f64 / self.total as f64)
        }
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        if self.total == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        if self.total == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// The value at quantile `q` (`0.0..=1.0`), or `None` if empty.
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, c) in self.counts[..self.hwm].iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return Some(value_of(i));
            }
        }
        unreachable!("rank <= total by construction, and hwm covers every non-empty bucket")
    }

    /// Merges another snapshot into this one — e.g. to aggregate per-host
    /// statistics across the brokers of a cluster.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.hwm = self.hwm.max(other.hwm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = AtomicHistogram::new();
        for v in 0..32 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(31));
        assert_eq!(h.value_at_quantile(0.0), Some(0));
        assert_eq!(h.value_at_quantile(1.0), Some(31));
    }

    #[test]
    fn index_value_round_trip_bounds_error() {
        // Every value must land in a bucket whose representative value is
        // within the bucket's width (relative error <= 1/32).
        for &v in &[
            1u64,
            31,
            32,
            33,
            63,
            64,
            100,
            1_000,
            123_456,
            1_000_000,
            987_654_321,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let rep = value_of(index_of(v));
            let err = rep.abs_diff(v) as f64 / v as f64;
            assert!(err <= 1.0 / 32.0, "value {v} rep {rep} err {err}");
        }
    }

    #[test]
    fn indices_are_monotone_and_in_range() {
        let mut last = 0usize;
        let mut v = 1u64;
        while v < u64::MAX / 2 {
            let i = index_of(v);
            assert!(i >= last, "index not monotone at {v}");
            assert!(i < BUCKETS);
            last = i;
            v = v.saturating_mul(2).saturating_add(v / 3 + 1);
        }
        assert!(index_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn median_of_known_distribution() {
        let h = AtomicHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1_000); // 1ms..1000ms in us-scale ns
        }
        let p50 = h.value_at_quantile(0.5).unwrap();
        let expected = 500_000u64;
        let err = p50.abs_diff(expected) as f64 / expected as f64;
        assert!(err < 0.04, "p50={p50} err={err}");
        let p90 = h.value_at_quantile(0.9).unwrap();
        let err = p90.abs_diff(900_000) as f64 / 900_000.0;
        assert!(err < 0.04, "p90={p90} err={err}");
    }

    #[test]
    fn mean_is_exact() {
        let h = AtomicHistogram::new();
        h.record(10);
        h.record(20);
        h.record(33);
        assert_eq!(h.mean(), Some(21.0));
    }

    #[test]
    fn empty_histogram_returns_none() {
        let h = AtomicHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.value_at_quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn reset_clears_everything() {
        let h = AtomicHistogram::new();
        h.record(5);
        h.record(500);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.value_at_quantile(0.9), None);
    }

    #[test]
    fn snapshot_matches_live() {
        let h = AtomicHistogram::new();
        for v in [3u64, 1_000, 50_000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), h.mean());
        assert_eq!(s.value_at_quantile(0.5), h.value_at_quantile(0.5));
        assert_eq!(s.min(), Some(3));
        assert_eq!(s.max(), Some(1_000_000));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i % 997);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 80_000);
    }

    #[test]
    fn merged_snapshots_equal_combined_recording() {
        let a = AtomicHistogram::new();
        let b = AtomicHistogram::new();
        let all = AtomicHistogram::new();
        for v in 0..1000u64 {
            let target = if v % 2 == 0 { &a } else { &b };
            target.record(v * 997);
            all.record(v * 997);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let expected = all.snapshot();
        assert_eq!(merged.count(), expected.count());
        assert_eq!(merged.mean(), expected.mean());
        assert_eq!(merged.min(), expected.min());
        assert_eq!(merged.max(), expected.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(merged.value_at_quantile(q), expected.value_at_quantile(q));
        }
    }

    #[test]
    fn high_water_mark_tracks_highest_bucket_and_resets() {
        let h = AtomicHistogram::new();
        h.record(5);
        assert_eq!(h.hwm.load(Ordering::Relaxed), index_of(5) + 1);
        h.record(1_000_000);
        assert_eq!(h.hwm.load(Ordering::Relaxed), index_of(1_000_000) + 1);
        // Lower values never move the mark back down.
        h.record(50);
        assert_eq!(h.hwm.load(Ordering::Relaxed), index_of(1_000_000) + 1);
        h.reset();
        assert_eq!(h.hwm.load(Ordering::Relaxed), 0);
        // Bounded and unbounded scans agree after reuse.
        h.record(77);
        assert_eq!(h.value_at_quantile(1.0), Some(value_of(index_of(77))));
    }

    #[test]
    fn multi_quantile_pass_matches_individual_lookups() {
        let h = AtomicHistogram::new();
        for v in 1..=5000u64 {
            h.record(v * 317);
        }
        // Deliberately unsorted and with duplicates.
        let qs = [0.99, 0.5, 0.9, 0.5, 0.0, 1.0];
        let mut out = [None; 6];
        h.values_at_quantiles(&qs, &mut out);
        for (q, got) in qs.iter().zip(out.iter()) {
            assert_eq!(*got, h.value_at_quantile(*q), "q={q}");
        }

        let empty = AtomicHistogram::new();
        let mut out = [Some(1)];
        empty.values_at_quantiles(&[0.5], &mut out);
        assert_eq!(out, [None]);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let h = AtomicHistogram::new();
        for v in 0..10_000u64 {
            h.record(v * v % 1_000_003);
        }
        let mut last = 0;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.value_at_quantile(q).unwrap();
            assert!(v >= last, "quantile regression at q={q}");
            last = v;
        }
    }
}
