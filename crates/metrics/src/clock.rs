//! Pluggable clocks so the same policy code runs in simulation and production.
//!
//! The paper evaluates identical policy logic in a discrete-event simulator
//! (§5.3) and on the LIquid cluster (§5.4). We achieve that by making every
//! time-dependent component take the current time as an explicit [`Nanos`]
//! argument or read it from a [`Clock`]: the simulator drives a
//! [`ManualClock`], the real system a [`MonotonicClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::time::Nanos;

/// A source of monotonically non-decreasing timestamps.
pub trait Clock: Send + Sync {
    /// Returns the current time in nanoseconds since the clock's epoch.
    fn now(&self) -> Nanos;
}

/// Wall-clock time anchored to process start, backed by [`Instant`].
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// Creates a clock whose epoch is the moment of creation.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    #[inline]
    fn now(&self) -> Nanos {
        self.epoch.elapsed().as_nanos() as Nanos
    }
}

/// A manually advanced clock for simulations and tests.
///
/// Cloning shares the underlying time cell, so a simulator can hold one
/// handle and hand clones to the components it drives.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now: Arc<AtomicU64>,
}

impl ManualClock {
    /// Creates a clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock starting at `start`.
    pub fn starting_at(start: Nanos) -> Self {
        let clock = Self::new();
        clock.set(start);
        clock
    }

    /// Sets the current time. Panics in debug builds if time would go
    /// backwards — event-driven simulators must process events in order.
    pub fn set(&self, now: Nanos) {
        let prev = self.now.swap(now, Ordering::Release);
        debug_assert!(prev <= now, "ManualClock moved backwards: {prev} -> {now}");
    }

    /// Advances the clock by `delta` and returns the new time.
    pub fn advance(&self, delta: Nanos) -> Nanos {
        self.now.fetch_add(delta, Ordering::AcqRel) + delta
    }
}

impl Clock for ManualClock {
    #[inline]
    fn now(&self) -> Nanos {
        self.now.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_set_and_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now(), 0);
        c.set(10);
        assert_eq!(c.now(), 10);
        assert_eq!(c.advance(5), 15);
        assert_eq!(c.now(), 15);
    }

    #[test]
    fn manual_clock_clones_share_time() {
        let a = ManualClock::new();
        let b = a.clone();
        a.set(42);
        assert_eq!(b.now(), 42);
    }

    #[test]
    fn monotonic_clock_is_nondecreasing() {
        let c = MonotonicClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn starting_at_sets_epoch() {
        let c = ManualClock::starting_at(1_000);
        assert_eq!(c.now(), 1_000);
    }
}
