//! Property-based tests for the measurement substrate.

use bouncer_metrics::histogram::AtomicHistogram;
use bouncer_metrics::window::WindowedCounters;
use bouncer_metrics::MovingStats;
use proptest::prelude::*;

/// Exact quantile on sorted data using the same "lowest value with cumulative
/// count >= ceil(q*n)" rule the histogram implements.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    /// The histogram's quantile must stay within its quantization error
    /// (one part in 32) of the exact quantile of the recorded samples.
    #[test]
    fn histogram_quantile_tracks_exact(
        mut values in prop::collection::vec(0u64..=10_000_000_000, 1..500),
        qs in prop::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let h = AtomicHistogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in qs {
            let approx = h.value_at_quantile(q).unwrap();
            let exact = exact_quantile(&values, q);
            // Bucket midpoints can deviate by half a bucket width either way.
            let tolerance = (exact / 32).max(1);
            prop_assert!(
                approx.abs_diff(exact) <= tolerance,
                "q={q} approx={approx} exact={exact}"
            );
        }
    }

    /// Count and mean are exact regardless of the values recorded.
    #[test]
    fn histogram_count_and_mean_are_exact(
        values in prop::collection::vec(0u64..=1_000_000_000, 1..300),
    ) {
        let h = AtomicHistogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let exact_mean = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
        prop_assert!((h.mean().unwrap() - exact_mean).abs() < 1e-6);
        prop_assert_eq!(h.min(), values.iter().min().copied());
        prop_assert_eq!(h.max(), values.iter().max().copied());
    }

    /// Quantiles are monotone in q for arbitrary data.
    #[test]
    fn histogram_quantiles_monotone(
        values in prop::collection::vec(0u64..=u64::MAX / 2, 1..200),
    ) {
        let h = AtomicHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut last = 0u64;
        for i in 0..=20 {
            let v = h.value_at_quantile(i as f64 / 20.0).unwrap();
            prop_assert!(v >= last);
            last = v;
        }
    }

    /// Windowed counters match a brute-force recount over the same event
    /// sequence, for any sequence of (type, accepted, time-delta) events.
    #[test]
    fn window_counts_match_bruteforce(
        events in prop::collection::vec(
            (0usize..4, any::<bool>(), 0u64..200),
            1..300,
        ),
    ) {
        const DURATION: u64 = 1_000;
        const STEP: u64 = 50;
        let w = WindowedCounters::new(4, DURATION, STEP);
        let mut now = 0u64;
        let mut log: Vec<(u64, usize, bool)> = Vec::new();
        for (ty, acc, dt) in events {
            now += dt;
            w.record(ty, acc, now);
            log.push((now, ty, acc));
        }
        // The window retains exactly the slots for slot numbers in
        // (slot(now) - n_slots, slot(now)]: an event at time t is live iff
        // slot(t) > slot(now) - n_slots.
        let n_slots = DURATION / STEP;
        let cur_slot = now / STEP;
        for ty in 0..4 {
            let mut acc = 0u64;
            let mut recv = 0u64;
            for &(t, ety, ea) in &log {
                let live = t / STEP + n_slots > cur_slot;
                if live && ety == ty {
                    recv += 1;
                    if ea {
                        acc += 1;
                    }
                }
            }
            let (wa, wr) = w.counts(ty, now);
            prop_assert_eq!((wa, wr), (acc, recv), "type {}", ty);
        }
    }

    /// Moving stats mean equals the brute-force mean of live samples.
    #[test]
    fn moving_mean_matches_bruteforce(
        events in prop::collection::vec((1u64..1_000_000, 0u64..500), 1..200),
    ) {
        const DURATION: u64 = 5_000;
        const STEP: u64 = 100;
        let m = MovingStats::new(DURATION, STEP);
        let mut now = 0u64;
        let mut log: Vec<(u64, u64)> = Vec::new();
        for (value, dt) in events {
            now += dt;
            m.record(value, now);
            log.push((now, value));
        }
        let n_slots = DURATION / STEP;
        let cur_slot = now / STEP;
        let live: Vec<u64> = log
            .iter()
            .filter(|&&(t, _)| t / STEP + n_slots > cur_slot)
            .map(|&(_, v)| v)
            .collect();
        prop_assert_eq!(m.count(now), live.len() as u64);
        match m.mean(now) {
            None => prop_assert!(live.is_empty()),
            Some(mean) => {
                let exact = live.iter().map(|&v| v as f64).sum::<f64>() / live.len() as f64;
                prop_assert!((mean - exact).abs() < 1e-6);
            }
        }
    }
}
