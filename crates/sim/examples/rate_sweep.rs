//! Sweeps basic Bouncer across traffic rates and prints the headline
//! metrics per rate — a quick way to see the policy's behavior around and
//! beyond saturation (compare with the paper's Table 3 "basic" rows).
//!
//! ```sh
//! cargo run --release -p bouncer-sim --example rate_sweep
//! ```
use bouncer_core::prelude::*;
use bouncer_metrics::time::millis;
use bouncer_sim::{run, SimConfig};
use bouncer_workload::mix::paper_table1_mix;

fn main() {
    let mut reg = TypeRegistry::new();
    let mix = paper_table1_mix(&mut reg);
    let full = mix.qps_full_load(100);
    let slow = reg.resolve("slow").unwrap();
    let msl = reg.resolve("medium slow").unwrap();
    for factor in [0.9, 0.95, 1.0, 1.05, 1.1, 1.15, 1.2, 1.25, 1.3, 1.35, 1.4, 1.45, 1.5] {
        let slos = SloConfig::uniform(&reg, Slo::p50_p90(millis(18), millis(50)));
        let b = Bouncer::new(slos, BouncerConfig::with_parallelism(100));
        let mut cfg = SimConfig::quick(full * factor, 3);
        cfg.measured_queries = 200_000;
        cfg.warmup_queries = 50_000;
        let r = run(&b, &mix, &cfg);
        println!("f={factor}: util={:.1}% rej_all={:.2}% rej_slow={:.1}% rej_msl={:.2}% rt50_slow={:.1}ms rt50_msl={:.1}ms",
            r.utilization_pct(), r.overall_rejection_pct(), r.rejection_pct(slow), r.rejection_pct(msl),
            r.response_ms(slow, 0.5).unwrap_or(0.0), r.response_ms(msl, 0.5).unwrap_or(0.0));
    }
}
