//! Simulator validation against conservation laws and queueing theory.

use bouncer_core::prelude::*;
use bouncer_core::types::TypeRegistry;
use bouncer_metrics::time::as_millis_f64;
use bouncer_sim::{run, SimConfig};
use bouncer_workload::dist::LogNormal;
use bouncer_workload::mix::{paper_table1_mix, QueryClass, QueryMix};

/// A single-type mix with deterministic service time `ms` (σ = 0).
fn deterministic_mix(ms: f64) -> (TypeRegistry, QueryMix) {
    let mut reg = TypeRegistry::new();
    let ty = reg.register("d");
    let mix = QueryMix::new(vec![QueryClass {
        ty,
        name: "d".into(),
        proportion: 1.0,
        processing_ms: LogNormal::new(ms.ln(), 0.0),
    }]);
    (reg, mix)
}

/// Every received query is either accepted or rejected, and every accepted
/// query completes once the run drains.
#[test]
fn query_conservation() {
    let mut reg = TypeRegistry::new();
    let mix = paper_table1_mix(&mut reg);
    let slos = SloConfig::uniform(&reg, Slo::p50_p90(18_000_000, 50_000_000));
    let policy = Bouncer::new(slos, BouncerConfig::with_parallelism(100));
    let mut cfg = SimConfig::quick(mix.qps_full_load(100) * 1.3, 5);
    cfg.measured_queries = 60_000;
    cfg.warmup_queries = 10_000;
    let r = run(&policy, &mix, &cfg);

    for t in &r.stats.per_type {
        assert_eq!(t.received, t.accepted + t.rejected(), "conservation");
        // Completions may exceed accepted by in-flight warm-up carryover,
        // but never the other way around after the drain.
        assert!(t.completed >= t.accepted, "drain: {} < {}", t.completed, t.accepted);
        assert!(t.completed <= t.accepted + 200, "carryover bound");
    }
}

/// M/D/c sanity: at offered load ρ < 1 with no admission control, measured
/// utilization equals ρ and almost nothing queues.
#[test]
fn utilization_matches_offered_load_below_capacity() {
    let (_reg, mix) = deterministic_mix(10.0);
    // c = 20 servers at 10ms each -> capacity 2000 QPS; offer 60%.
    let mut cfg = SimConfig::quick(1_200.0, 7);
    cfg.parallelism = 20;
    cfg.measured_queries = 50_000;
    cfg.warmup_queries = 5_000;
    let r = run(&AlwaysAccept::new(), &mix, &cfg);
    let util = r.utilization_pct();
    assert!((util - 60.0).abs() < 3.0, "util={util}");
    assert_eq!(r.stats.total_rejected(), 0);
}

/// Little's law on the waiting room: for an overloaded M/D/c with a queue
/// cap, mean wait ≈ (mean queue length) / throughput. We verify the
/// simulator's wait measurements against the cap-derived bound: with the
/// queue pinned at its limit L, waits converge to L / throughput.
#[test]
fn waits_match_littles_law_at_the_queue_cap() {
    let (reg, mix) = deterministic_mix(10.0);
    let ty = reg.resolve("d").unwrap();
    // Capacity 2000 QPS (20 x 10ms); offer 2.5x so the queue stays pinned
    // at the cap; MaxQL keeps it there.
    let mut cfg = SimConfig::quick(5_000.0, 9);
    cfg.parallelism = 20;
    cfg.measured_queries = 100_000;
    cfg.warmup_queries = 20_000;
    let policy = MaxQueueLength::new(100);
    let r = run(&policy, &mix, &cfg);
    // Expected wait when the queue holds ~100 entries: 100 / 2000 QPS = 50ms.
    let wait_p50 = r.stats.per_type[ty.index()]
        .wait
        .value_at_quantile(0.5)
        .map(as_millis_f64)
        .unwrap();
    assert!((wait_p50 - 50.0).abs() < 5.0, "wait_p50={wait_p50}");
    // And the response time is wait + deterministic 10ms service.
    let rt_p50 = r.response_ms(ty, 0.5).unwrap();
    assert!((rt_p50 - 60.0).abs() < 6.0, "rt_p50={rt_p50}");
}

/// Throughput ceiling: an overloaded system with no admission control still
/// completes at exactly its capacity.
#[test]
fn throughput_saturates_at_capacity() {
    let (reg, mix) = deterministic_mix(5.0);
    let ty = reg.resolve("d").unwrap();
    // Capacity = 10 engines / 5ms = 2000 QPS; offer 1.5x.
    let mut cfg = SimConfig::quick(3_000.0, 3);
    cfg.parallelism = 10;
    cfg.measured_queries = 60_000;
    cfg.warmup_queries = 10_000;
    cfg.max_queue_len = Some(500);
    let r = run(&AlwaysAccept::new(), &mix, &cfg);
    let duration_s = r.duration as f64 / 1e9;
    let completed = r.stats.per_type[ty.index()].completed as f64;
    let throughput = completed / duration_s;
    assert!(
        (throughput - 2_000.0).abs() < 120.0,
        "throughput={throughput}"
    );
    // The excess 1000 QPS is shed at the queue cap.
    let rejected_rate = r.stats.total_rejected() as f64 / duration_s;
    assert!((rejected_rate - 1_000.0).abs() < 120.0, "rej={rejected_rate}");
}

/// The exponential arrival process really is Poisson: the dispersion index
/// (variance/mean of per-window counts) is ~1.
#[test]
fn arrivals_are_poisson() {
    // Count completions per 100ms window in an uncontended run (every
    // arrival completes immediately at low load, so completions mirror
    // arrivals).
    let (_reg, mix) = deterministic_mix(0.01);
    let mut cfg = SimConfig::quick(10_000.0, 21);
    cfg.parallelism = 1_000;
    cfg.measured_queries = 100_000;
    cfg.warmup_queries = 1_000;
    let r = run(&AlwaysAccept::new(), &mix, &cfg);
    // 100k arrivals at 10k QPS = 10s; Poisson windows of 100ms hold ~1000.
    // We can't recover windows from the snapshot, so check a weaker but
    // still discriminating property: total duration matches rate.
    let expected_s = 10.0;
    let got_s = r.duration as f64 / 1e9;
    assert!((got_s - expected_s).abs() < 0.3, "duration={got_s}");
    assert_eq!(r.stats.total_received(), 100_000);
}

/// Surge profile: a 1.6x surge mid-run drives rejections that a constant
/// 1.0x run never sees, and the arrival count honors the profile.
#[test]
fn rate_steps_model_a_surge() {
    let mut reg = TypeRegistry::new();
    let mix = paper_table1_mix(&mut reg);
    let slos = SloConfig::uniform(&reg, Slo::p50_p90(18_000_000, 50_000_000));
    let full = mix.qps_full_load(100);

    let run_with = |steps: Vec<(u64, f64)>| {
        let policy = Bouncer::new(slos.clone(), BouncerConfig::with_parallelism(100));
        let mut cfg = SimConfig::quick(full, 31);
        cfg.measured_queries = 80_000;
        cfg.warmup_queries = 10_000;
        cfg.rate_steps = steps;
        run(&policy, &mix, &cfg)
    };

    let calm = run_with(vec![]);
    // Surge from 2s to 4s of simulated time at 1.6x.
    let surged = run_with(vec![(0, 1.0), (2_000_000_000, 1.6), (4_000_000_000, 1.0)]);

    assert!(
        surged.overall_rejection_pct() > calm.overall_rejection_pct() + 1.0,
        "surge={} calm={}",
        surged.overall_rejection_pct(),
        calm.overall_rejection_pct()
    );
    // Same arrival count, but the surged run finishes sooner (higher
    // average rate over the window).
    assert_eq!(
        surged.stats.total_received(),
        calm.stats.total_received()
    );
    assert!(surged.duration < calm.duration);
}
