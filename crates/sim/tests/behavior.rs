//! Behavioral tests of the simulator against queueing-theory ground truth
//! and the paper's qualitative claims (§5.3).

use bouncer_core::prelude::*;
use bouncer_metrics::time::millis;
use bouncer_sim::{run, SimConfig};
use bouncer_workload::mix::paper_table1_mix;
use bouncer_workload::QueryMix;
use std::sync::Arc;

fn table1() -> (TypeRegistry, QueryMix) {
    let mut reg = TypeRegistry::new();
    let mix = paper_table1_mix(&mut reg);
    (reg, mix)
}

fn quick(rate_factor: f64, seed: u64, mix: &QueryMix) -> SimConfig {
    let full = mix.qps_full_load(100);
    let mut cfg = SimConfig::quick(full * rate_factor, seed);
    cfg.measured_queries = 120_000;
    cfg.warmup_queries = 30_000;
    cfg
}

/// The paper's Bouncer setup for the simulation study (Table 2).
fn paper_bouncer(reg: &TypeRegistry) -> Bouncer {
    let slos = SloConfig::uniform(reg, Slo::p50_p90(millis(18), millis(50)));
    Bouncer::new(slos, BouncerConfig::with_parallelism(100))
}

#[test]
fn underload_has_no_rejections_and_low_latency() {
    let (reg, mix) = table1();
    let b = paper_bouncer(&reg);
    let r = run(&b, &mix, &quick(0.8, 1, &mix));
    assert_eq!(r.stats.total_rejected(), 0, "no rejections at 0.8x");
    // At 80% load the system is stable; slow queries' rt_p50 should be near
    // their pt_p50 of 12.51ms, well under the 18ms SLO.
    let slow = reg.resolve("slow").unwrap();
    let rt50 = r.response_ms(slow, 0.5).unwrap();
    assert!(rt50 < 18.0, "rt50={rt50}");
    let util = r.utilization_pct();
    assert!((util - 80.0).abs() < 5.0, "util={util}");
}

#[test]
fn unprotected_system_collapses_under_overload() {
    let (reg, mix) = table1();
    let r = run(&AlwaysAccept::new(), &mix, &quick(1.2, 2, &mix));
    let slow = reg.resolve("slow").unwrap();
    // With no admission control at 1.2x capacity the queue grows without
    // bound and response times explode far beyond any SLO.
    let rt50 = r.response_ms(slow, 0.5).unwrap();
    assert!(rt50 > 200.0, "rt50={rt50}");
    assert_eq!(r.stats.total_rejected(), 0);
}

#[test]
fn bouncer_keeps_slow_queries_within_slo_under_overload() {
    let (reg, mix) = table1();
    let b = paper_bouncer(&reg);
    let r = run(&b, &mix, &quick(1.2, 3, &mix));
    let slow = reg.resolve("slow").unwrap();
    let rt50 = r.response_ms(slow, 0.5).unwrap();
    // Figure 6: Bouncer keeps rt_p50 at/under the 18ms SLO (small histogram
    // quantization slack).
    assert!(rt50 <= 19.0, "rt50={rt50}");
    // And it does so by rejecting mostly slow queries (Table 3).
    let fast = reg.resolve("fast").unwrap();
    assert!(r.rejection_pct(slow) > 20.0);
    assert_eq!(r.rejection_pct(fast), 0.0);
    // While keeping the engine near fully utilized (Figure 7).
    assert!(r.utilization_pct() > 90.0, "util={}", r.utilization_pct());
}

#[test]
fn maxql_plateaus_but_violates_slo() {
    let (reg, mix) = table1();
    let p = MaxQueueLength::new(400);
    let r = run(&p, &mix, &quick(1.3, 4, &mix));
    let slow = reg.resolve("slow").unwrap();
    let rt50 = r.response_ms(slow, 0.5).unwrap();
    // Figure 6: MaxQL plateaus around 40ms — above the SLO, bounded by the
    // queue cap. Accept a generous band around the paper's value.
    assert!(rt50 > 19.0, "rt50={rt50}");
    assert!(rt50 < 80.0, "rt50={rt50}");
}

#[test]
fn maxqwt_plateaus_near_its_wait_limit() {
    let (reg, mix) = table1();
    let p = MaxQueueWaitTime::new(millis(15), 100);
    let r = run(&p, &mix, &quick(1.3, 5, &mix));
    let slow = reg.resolve("slow").unwrap();
    let rt50 = r.response_ms(slow, 0.5).unwrap();
    // Figure 6: MaxQWT plateaus around ~22ms (15ms wait + slow pt_p50);
    // above the 18ms SLO because it ignores per-type percentiles.
    assert!(rt50 > 18.0 && rt50 < 40.0, "rt50={rt50}");
}

#[test]
fn accept_fraction_caps_utilization_at_threshold() {
    let (_reg, mix) = table1();
    let p = AcceptFraction::new(AcceptFractionConfig::new(0.95, 100));
    let r = run(&p, &mix, &quick(1.3, 6, &mix));
    let util = r.utilization_pct();
    // Figure 7: AcceptFraction is limited by its 95% threshold. The drain
    // phase and update lag add a little measurement slack on top.
    assert!(util < 98.5, "util={util}");
    assert!(util > 85.0, "util={util}");
    assert!(r.overall_rejection_pct() > 5.0);
}

#[test]
fn bouncer_rejects_fewer_overall_than_type_oblivious_policies() {
    let (reg, mix) = table1();
    let cfg = quick(1.3, 7, &mix);

    let bouncer = paper_bouncer(&reg);
    let b = run(&bouncer, &mix, &cfg);

    let maxql = MaxQueueLength::new(400);
    let q = run(&maxql, &mix, &cfg);

    let af = AcceptFraction::new(AcceptFractionConfig::new(0.95, 100));
    let a = run(&af, &mix, &cfg);

    // Figure 8: Bouncer reports the lowest rejection percentage.
    assert!(
        b.overall_rejection_pct() < q.overall_rejection_pct(),
        "bouncer={} maxql={}",
        b.overall_rejection_pct(),
        q.overall_rejection_pct()
    );
    assert!(
        b.overall_rejection_pct() < a.overall_rejection_pct(),
        "bouncer={} af={}",
        b.overall_rejection_pct(),
        a.overall_rejection_pct()
    );
}

#[test]
fn starvation_basic_vs_allowance() {
    let (reg, mix) = table1();
    let slow = reg.resolve("slow").unwrap();
    let cfg = quick(1.5, 8, &mix);

    // Basic Bouncer at 1.5x: slow queries starve (>90% rejected, Table 3).
    let basic = paper_bouncer(&reg);
    let rb = run(&basic, &mix, &cfg);
    assert!(rb.rejection_pct(slow) > 90.0, "basic={}", rb.rejection_pct(slow));

    // Acceptance allowance with A=0.1 caps rejections near 90%.
    let aa = AcceptanceAllowance::new(paper_bouncer(&reg), reg.len(), 0.1, 99);
    let ra = run(&aa, &mix, &cfg);
    assert!(
        ra.rejection_pct(slow) < 92.0,
        "allowance={}",
        ra.rejection_pct(slow)
    );
    assert!(ra.rejection_pct(slow) < rb.rejection_pct(slow));
}

#[test]
fn same_seed_same_result() {
    let (reg, mix) = table1();
    let cfg = {
        let mut c = quick(1.1, 42, &mix);
        c.measured_queries = 40_000;
        c.warmup_queries = 10_000;
        c
    };
    let r1 = run(&paper_bouncer(&reg), &mix, &cfg);
    let r2 = run(&paper_bouncer(&reg), &mix, &cfg);
    assert_eq!(r1.stats.total_received(), r2.stats.total_received());
    assert_eq!(r1.stats.total_rejected(), r2.stats.total_rejected());
    assert_eq!(r1.duration, r2.duration);
}

#[test]
fn policies_work_behind_arc_dyn() {
    let (reg, mix) = table1();
    let p: Arc<dyn AdmissionPolicy> = Arc::new(paper_bouncer(&reg));
    let cfg = {
        let mut c = quick(1.0, 11, &mix);
        c.measured_queries = 20_000;
        c.warmup_queries = 5_000;
        c
    };
    let r = run(&p, &mix, &cfg);
    assert!(r.stats.total_received() > 0);
}

#[test]
fn queue_limit_produces_queue_full_rejections() {
    let (_reg, mix) = table1();
    let mut cfg = quick(1.4, 12, &mix);
    cfg.max_queue_len = Some(50);
    cfg.measured_queries = 60_000;
    cfg.warmup_queries = 10_000;
    let r = run(&AlwaysAccept::new(), &mix, &cfg);
    let quf: u64 = r
        .stats
        .per_type
        .iter()
        .map(|t| t.rejected_by_reason[RejectReason::QueueFull.index()])
        .sum();
    assert!(quf > 0, "queue-full rejections expected");
}
