//! Observability contract of the simulator: the ordered lifecycle events
//! one admitted and one rejected query leave behind, plus the per-interval
//! policy events that ride on the tick schedule.

use std::sync::Arc;

use bouncer_core::prelude::*;
use bouncer_metrics::time::millis;
use bouncer_sim::{run, SimConfig};
use bouncer_workload::mix::paper_table1_mix;
use bouncer_workload::QueryMix;

fn table1() -> (TypeRegistry, QueryMix) {
    let mut reg = TypeRegistry::new();
    let mix = paper_table1_mix(&mut reg);
    (reg, mix)
}

/// A one-query config so every event in the sink belongs to that query.
fn one_query(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::quick(100.0, seed);
    cfg.parallelism = 1;
    cfg.warmup_queries = 0;
    cfg.measured_queries = 1;
    cfg
}

#[test]
fn admitted_query_emits_the_full_lifecycle_in_order() {
    let (_reg, mix) = table1();
    let sink = Arc::new(MemorySink::new());
    let mut cfg = one_query(11);
    cfg.sink = Some(sink.clone());

    let result = run(&AlwaysAccept::new(), &mix, &cfg);
    assert_eq!(result.stats.total_rejected(), 0);

    // Maintenance ticks ride the same sink; the query's own trail is
    // everything else.
    let events: Vec<Event> = sink
        .events()
        .into_iter()
        .filter(|e| !matches!(e, Event::Tick { .. }))
        .collect();
    let names: Vec<&str> = events.iter().map(|e| e.name()).collect();
    assert_eq!(
        names,
        ["admitted", "enqueued", "dequeued", "started", "completed"],
        "one admitted query must leave exactly this trail"
    );

    // The engine was idle, so the queue was passed through with zero wait.
    match events[1] {
        Event::Enqueued { queue_len, .. } => assert_eq!(queue_len, 1),
        ref other => panic!("expected Enqueued, got {other:?}"),
    }
    match events[4] {
        Event::Completed {
            wait,
            processing,
            rt,
            ..
        } => {
            assert_eq!(wait, 0);
            assert!(processing > 0);
            assert_eq!(rt, wait + processing);
        }
        ref other => panic!("expected Completed, got {other:?}"),
    }

    // Timestamps are virtual and non-decreasing; all events carry the
    // query's type.
    assert!(events.windows(2).all(|w| w[0].at() <= w[1].at()));
    assert!(events.iter().all(|e| e.ty().is_some()));
}

#[test]
fn rejected_query_emits_a_single_rejection() {
    let (_reg, mix) = table1();
    let sink = Arc::new(MemorySink::new());
    let mut cfg = one_query(12);
    // The `L_limit` safeguard with a zero-length queue bound turns every
    // query away before it can reach the (idle) engine.
    cfg.max_queue_len = Some(0);
    cfg.sink = Some(sink.clone());

    let result = run(&AlwaysAccept::new(), &mix, &cfg);
    assert_eq!(result.stats.total_rejected(), 1);

    let events: Vec<Event> = sink
        .events()
        .into_iter()
        .filter(|e| !matches!(e, Event::Tick { .. }))
        .collect();
    let names: Vec<&str> = events.iter().map(|e| e.name()).collect();
    assert_eq!(
        names,
        ["rejected"],
        "a shed query leaves nothing but the rejection"
    );
    match events[0] {
        Event::Rejected { reason, .. } => assert_eq!(reason, RejectReason::QueueFull),
        ref other => panic!("expected Rejected, got {other:?}"),
    }
}

#[test]
fn policy_rejections_carry_the_policy_reason() {
    let (_reg, mix) = table1();
    let sink = Arc::new(MemorySink::new());
    // Overload a tiny cluster so MaxQL has to shed.
    let mut cfg = SimConfig::quick(mix.qps_full_load(4) * 2.0, 13);
    cfg.parallelism = 4;
    cfg.warmup_queries = 0;
    cfg.measured_queries = 2_000;
    cfg.sink = Some(sink.clone());

    let result = run(&MaxQueueLength::new(2), &mix, &cfg);
    assert!(result.stats.total_rejected() > 0, "expected shedding");

    let events = sink.events();
    let rejected: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::Rejected { reason, .. } => Some(*reason),
            _ => None,
        })
        .collect();
    assert_eq!(rejected.len() as u64, result.stats.total_rejected());
    assert!(rejected
        .iter()
        .all(|&r| r == RejectReason::QueueLengthLimit));

    // Event counts reconcile with the aggregate statistics.
    let count = |name: &str| events.iter().filter(|e| e.name() == name).count() as u64;
    let accepted: u64 = result.stats.per_type.iter().map(|t| t.accepted).sum();
    let completed: u64 = result.stats.per_type.iter().map(|t| t.completed).sum();
    assert_eq!(count("admitted"), accepted);
    assert_eq!(count("enqueued"), accepted);
    assert_eq!(count("completed"), completed);
}

#[test]
fn traced_simulation_produces_exact_virtual_time_breakdowns() {
    use bouncer_core::obs::trace_report::{assemble, breakdown, parse_spans};
    use bouncer_core::obs::{Tracer, TracerConfig};

    let (_reg, mix) = table1();
    let sink = Arc::new(MemorySink::new());
    let tracer = Arc::new(Tracer::new(sink.clone(), TracerConfig::default()));
    // Overloaded enough that queueing (and some shedding) appears.
    let mut cfg = SimConfig::quick(mix.qps_full_load(4) * 1.5, 15);
    cfg.parallelism = 4;
    cfg.warmup_queries = 0;
    cfg.measured_queries = 1_000;
    cfg.tracer = Some(tracer.clone());
    let result = run(&MaxQueueLength::new(8), &mix, &cfg);
    assert!(result.stats.total_rejected() > 0, "expected shedding");

    assert_eq!(tracer.sampled_total(), 1_000, "sample_every=1 keeps all");
    assert_eq!(tracer.dropped_total(), 0);

    // Round-trip through the JSONL encoding, exactly as `trace-report`
    // consumes a file.
    let lines: Vec<String> = sink.events().iter().map(|e| e.to_json()).collect();
    let spans = parse_spans(&lines.join("\n")).unwrap();
    let assembly = assemble(spans);
    assert_eq!(assembly.traces.len(), 1_000);
    assert_eq!(assembly.orphan_spans, 0);
    assert_eq!(assembly.rootless_traces, 0);

    let mut rejected = 0u64;
    for tree in &assembly.traces {
        assert!(tree.is_complete());
        let b = breakdown(tree).expect("rooted tree");
        // Virtual time is exact: the components must sum to the root
        // duration to the nanosecond.
        assert_eq!(b.component_sum(), b.total, "inexact breakdown");
        if b.status == "rejected" {
            rejected += 1;
        } else {
            assert_eq!(b.admission, 0, "simulated admission is instantaneous");
            assert_eq!(b.total, b.broker_queue + b.broker_compute);
        }
    }
    assert_eq!(rejected, result.stats.total_rejected());
}

#[test]
fn policies_emit_interval_events_through_the_attached_sink() {
    let (reg, mix) = table1();

    // Bouncer swaps its dual-buffer histograms every interval.
    let sink = Arc::new(MemorySink::new());
    let mut cfg = SimConfig::quick(mix.qps_full_load(8), 14);
    cfg.parallelism = 8;
    cfg.warmup_queries = 0;
    cfg.measured_queries = 5_000;
    cfg.sink = Some(sink.clone());
    let slos = SloConfig::uniform(&reg, Slo::p50_p90(millis(18), millis(50)));
    run(
        &Bouncer::new(slos, BouncerConfig::with_parallelism(8)),
        &mix,
        &cfg,
    );
    let swaps = sink
        .events()
        .iter()
        .filter(|e| matches!(e, Event::HistogramSwap { policy: "bouncer", .. }))
        .count();
    assert!(swaps > 0, "bouncer must report histogram swaps");

    // MaxQWT reports its moving-average refresh on the same tick schedule.
    let sink = Arc::new(MemorySink::new());
    cfg.sink = Some(sink.clone());
    run(&MaxQueueWaitTime::new(millis(20), 8), &mix, &cfg);
    let refreshes = sink
        .events()
        .iter()
        .filter(|e| matches!(e, Event::MovingAvgRefresh { policy: "maxqwt", .. }))
        .count();
    assert!(refreshes > 0, "maxqwt must report moving-average refreshes");
}
