//! End-to-end health sampling under *virtual* time: an overload surge in
//! the simulator must advance the sampler's windows off event timestamps
//! alone (no wall clock), fire the rejection-spike trigger, write an
//! incident dump, and that dump must reconstruct the whole episode —
//! queue-depth rise, attainment dip, and the controller's corrective
//! decisions — through the `postmortem` analyzer.

use std::fs;
use std::sync::Arc;

use bouncer_core::obs::postmortem::{analyze, parse_dump, render_report};
use bouncer_core::obs::{HealthConfig, MemorySink};
use bouncer_core::spec::ScenarioSpec;
use bouncer_metrics::time::{millis, secs};
use bouncer_sim::{run, ScenarioSim};

/// Constant sustainable load for 2 virtual seconds, then a 3× surge: the
/// AIMD loop has settled decisions on record before the overload hits.
fn surge_spec() -> ScenarioSpec {
    let text = "name = health_surge\n\
         seed = 97\n\
         measured = 260000\n\
         warmup = 2000\n\
         slo.default = p50=18ms p90=50ms\n\
         workload = paper_table1\n\
         runtime = sim\n\
         sim.rate_factors = 1.0\n\
         sim.rate_steps = 2s:3.0\n\
         controller = aimd target_attain=0.95 interval=500ms step=0.02 backoff=0.85 min=0.3\n\
         policy.adaptive = acceptfraction util=0.9\n";
    ScenarioSpec::parse(text).expect("valid spec")
}

#[test]
fn sim_surge_dumps_an_incident_that_postmortem_reconstructs() {
    let dir = std::env::temp_dir().join(format!("bouncer-health-sim-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();

    let scenario = ScenarioSim::new(surge_spec()).expect("valid scenario");
    let policy = scenario.build_policy("adaptive", 5).expect("policy");
    let mut cfg = scenario.sim_config_at_factor(1.0, 5);
    cfg.sink = Some(Arc::new(MemorySink::new()));

    let mut health = HealthConfig {
        interval: millis(100),
        dump_dir: Some(dir.clone()),
        ..HealthConfig::default()
    };
    health.trigger.rejection_rate = Some(0.3);
    health.trigger.cooldown = secs(30); // one dump tells the story
    let sampler = scenario.attach_health(health, &mut cfg);
    scenario
        .attach_controller("adaptive", &policy, &mut cfg)
        .expect("controller wiring")
        .expect("spec has a controller");

    run(policy.as_ref(), scenario.mix(), &cfg);

    // Virtual-time windows closed and scored attainment without any wall
    // clock involvement.
    assert!(
        sampler.samples() > 10,
        "expected many 100ms windows, got {}",
        sampler.samples()
    );
    assert_eq!(sampler.incidents(), 1, "the surge fires exactly one dump");
    let paths = sampler.incident_paths();
    assert_eq!(paths.len(), 1);
    // The AIMD loop reacts to the surge before a full window crosses the
    // rejection threshold, so the corrective backoff is what trips the
    // trigger — and its decision record is the freshest thing in the
    // rings when they drain.
    let name = paths[0].file_name().unwrap().to_str().unwrap().to_string();
    assert!(
        name.contains("controller_backoff"),
        "unexpected trigger: {name}"
    );

    let dump = parse_dump(&fs::read_to_string(&paths[0]).unwrap()).expect("parseable dump");
    assert_eq!(dump.header.reason, "controller_backoff");
    assert_eq!(
        dump.header.scenario_hash.as_deref(),
        Some(format!("{:016x}", scenario.spec().content_hash()).as_str()),
        "dump is stamped with the scenario that produced it"
    );
    assert!(!dump.samples.is_empty(), "trailing health samples present");
    assert!(dump.header.records > 0, "flight recorder drained records");

    // One timeline shows the whole episode: depth rises into the surge,
    // attainment dips, and the controller had corrective decisions on
    // record before the trigger fired.
    let analysis = analyze(&dump);
    assert!(
        analysis.peak_depth > 0,
        "queue depth must rise during the surge"
    );
    assert!(
        analysis.min_attainment.is_some_and(|a| a < 1.0),
        "attainment dips under overload: {:?}",
        analysis.min_attainment
    );
    assert!(
        analysis.max_rejection.is_some_and(|r| r > 0.0),
        "the shed load that provoked the backoff is visible: {:?}",
        analysis.max_rejection
    );
    assert!(
        !analysis.actions.is_empty(),
        "controller decisions appear on the timeline"
    );
    assert!(
        analysis.types.iter().any(|t| t.rejected > 0),
        "per-type ledger shows the shed load"
    );

    let report = render_report(&dump);
    assert!(report.contains("incident: controller_backoff"));
    assert!(report.contains("controller actions:"));
    assert!(report.contains("max_utilization"));

    let _ = fs::remove_dir_all(&dir);
}
