//! Convergence behavior of the adaptive control plane (ADAPTIVE.md):
//! under constant load an AIMD controller must settle into a bounded
//! sawtooth (no runaway, no sustained drift), and a mid-run traffic-mix
//! shift must trigger re-convergence to a new operating point within a
//! bounded number of decision intervals.

use std::sync::Arc;

use bouncer_core::control::Controller;
use bouncer_core::spec::ScenarioSpec;
use bouncer_sim::{run, ScenarioSim};

/// A Table-1-shaped custom workload behind the AcceptFraction guard with
/// an AIMD controller on `max_utilization` — the `adaptive_shift.scn`
/// study, sized down for a test and with the shift made optional.
fn adaptive_spec(shift: bool) -> String {
    let shift_lines = if shift { "sim.shift_at = 4s\n" } else { "" };
    let pshift = |v: f64| {
        if shift {
            format!(" pshift={v}")
        } else {
            String::new()
        }
    };
    format!(
        "name = control_convergence\n\
         seed = 45232\n\
         measured = 300000\n\
         warmup = 10000\n\
         slo.default = p50=18ms p90=50ms\n\
         workload = custom\n\
         class.fast = p=0.4 p50=0.38ms p90=2.7ms{}\n\
         class.medium fast = p=0.2 p50=2.22ms p90=4.27ms{}\n\
         class.medium slow = p=0.3 p50=7.4ms p90=26.44ms{}\n\
         class.slow = p=0.1 p50=12.51ms p90=44.26ms{}\n\
         runtime = sim\n\
         sim.rate_factors = 1.05\n\
         {}controller = aimd target_attain=0.95 interval=1s step=0.02 backoff=0.85 min=0.5\n\
         policy.adaptive = acceptfraction util=0.8\n",
        pshift(0.25),
        pshift(0.10),
        pshift(0.20),
        pshift(0.45),
        shift_lines,
    )
}

/// Runs the scenario closed-loop and returns the controller.
fn run_adaptive(shift: bool) -> Arc<Controller> {
    let spec = ScenarioSpec::parse(&adaptive_spec(shift)).expect("valid spec");
    let scenario = ScenarioSim::new(spec).expect("valid scenario");
    let policy = scenario.build_policy("adaptive", 1).expect("policy");
    let mut cfg = scenario.sim_config_at_factor(1.05, 1);
    let controller = scenario
        .attach_controller("adaptive", &policy, &mut cfg)
        .expect("controller wiring")
        .expect("spec has a controller");
    run(policy.as_ref(), scenario.mix(), &cfg);
    controller
}

#[test]
fn aimd_reaches_a_bounded_steady_state_under_constant_load() {
    let controller = run_adaptive(false);
    let decisions = controller.decisions();
    assert!(
        decisions.len() >= 10,
        "expected a decision every second, got {}",
        decisions.len()
    );
    let spec = controller.spec();
    for d in &decisions {
        assert!(
            (spec.min..=spec.max).contains(&d.value),
            "decision {} outside [{}, {}]",
            d.value,
            spec.min,
            spec.max
        );
    }
    // After a settling prefix the sawtooth stays inside a bounded band:
    // additive climbs and multiplicative backoffs orbit the knee instead
    // of oscillating rail to rail or drifting monotonically.
    let tail: Vec<f64> = decisions[decisions.len() / 2..]
        .iter()
        .map(|d| d.value)
        .collect();
    let (lo, hi) = tail
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    assert!(
        hi - lo < 0.35,
        "steady-state band [{lo:.3}, {hi:.3}] wider than a bounded sawtooth"
    );
    // ...and the system it steers actually attains: most late intervals
    // sit at or above the 0.95 attainment setpoint's backoff threshold.
    let attaining = decisions[decisions.len() / 2..]
        .iter()
        .filter(|d| d.attainment >= 0.90)
        .count();
    assert!(
        attaining * 3 >= tail.len() * 2,
        "only {attaining}/{} late intervals attained 0.90",
        tail.len()
    );
}

#[test]
fn mix_shift_triggers_reconvergence_within_bounded_intervals() {
    let constant = run_adaptive(false);
    let shifted = run_adaptive(true);
    let decisions = shifted.decisions();
    let shift_at = 4_000_000_000u64; // sim.shift_at = 4s
    let split = decisions
        .iter()
        .position(|d| d.at > shift_at)
        .expect("decisions continue past the shift");
    assert!(split >= 2, "need pre-shift decisions, split={split}");
    assert!(
        decisions.len() - split >= 10,
        "need post-shift decisions, got {}",
        decisions.len() - split
    );

    // The disturbance registers: the admitted load overshoots the
    // halved capacity until the loop reacts, so within N = 6 intervals
    // of the shift at least one decision is a backoff (the constant-load
    // twin of this run climbs monotonically through the same window).
    let react = &decisions[split..(split + 6).min(decisions.len())];
    let backed_off = react
        .windows(2)
        .any(|w| w[1].value < w[0].value)
        || react[0].value < decisions[split - 1].value;
    assert!(
        backed_off,
        "no backoff within 6 intervals of the shift: {:?}",
        react.iter().map(|d| d.value).collect::<Vec<_>>()
    );
    let constant = constant.decisions();
    let cwin = &constant[split..(split + 6).min(constant.len())];
    assert!(
        cwin.windows(2).all(|w| w[1].value >= w[0].value),
        "constant-load control did not climb through the same window"
    );

    // ...and re-convergence happens within N = 10 intervals of the
    // shift: from there on, intervals attain the SLO tail again (0.90 is
    // exactly a met p90 target) instead of staying in the post-shift
    // degradation.
    let recovered = &decisions[(split + 10).min(decisions.len() - 1)..];
    let attaining = recovered.iter().filter(|d| d.attainment >= 0.90).count();
    assert!(
        attaining * 3 >= recovered.len() * 2,
        "only {attaining}/{} intervals attained after the re-convergence \
         window: {:?}",
        recovered.len(),
        recovered.iter().map(|d| d.attainment).collect::<Vec<_>>()
    );
}
