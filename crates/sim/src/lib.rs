//! Discrete-event simulator reproducing the paper's simulation study (§5.3).
//!
//! "We compare the basic behavior of the policies … using a discrete
//! event-driven simulator … The simulator implements the framework in
//! Figure 1. It assumes a query engine with a fixed number of processes and
//! gives the admitted queries to the idle processes on a first-come,
//! first-serve basis."
//!
//! The simulated host is a LIquid broker with `P` query-engine processes
//! (the paper uses 100). Inter-arrival times are exponential (Poisson
//! traffic); per-type processing times are lognormal per the query mix.
//! The very same [`AdmissionPolicy`] objects that run on real hosts are
//! driven here under virtual time.
//!
//! [`AdmissionPolicy`]: bouncer_core::policy::AdmissionPolicy

#![warn(missing_docs)]

pub mod engine;
pub mod queue;
pub mod result;
pub mod scenario;

pub use engine::{run, SimConfig};
pub use queue::SimDiscipline;
pub use result::SimResult;
pub use scenario::ScenarioSim;
