//! The event loop: arrivals, completions, and periodic ticks over a FIFO
//! queue drained by `P` simulated engine processes.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use crate::queue::{SimDiscipline, SimQueue};

use bouncer_core::framework::ServerStats;
use bouncer_core::obs::{
    null_sink, Event as ObsEvent, EventSink, QueryTrace, SpanKind, SpanStatus, Tracer,
};
use bouncer_core::policy::{AdmissionPolicy, RejectReason};
use bouncer_core::types::TypeId;
use bouncer_metrics::time::{millis, Nanos, SECOND};
use bouncer_workload::dist::Exponential;
use bouncer_workload::mix::QueryMix;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::result::SimResult;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// `P`: number of query-engine processes (the paper simulates 100).
    pub parallelism: u32,
    /// Offered traffic rate, queries per second.
    pub rate_qps: f64,
    /// Queries generated *after* warm-up; the paper's runs produce 1.5 M.
    pub measured_queries: u64,
    /// Warm-up queries preceding measurement ("preceded by a warm-up phase
    /// to avoid capturing cold start effects").
    pub warmup_queries: u64,
    /// RNG seed (arrivals, types, processing times, policy coin flips are
    /// separate draws from this stream, so runs are reproducible).
    pub seed: u64,
    /// How often policy maintenance runs (histogram swaps etc.).
    pub tick_interval: Nanos,
    /// Optional `L_limit` bound on the FIFO queue (§5.4 uses 800; the
    /// simulation study leaves it unbounded).
    pub max_queue_len: Option<usize>,
    /// Queue service discipline (the paper's deployment is FIFO; the
    /// priority and SJF variants support the §7 scheduling ablation).
    pub discipline: SimDiscipline,
    /// Optional time-varying rate: `(from_time, multiplier)` steps applied
    /// on top of `rate_qps`, sorted by time. Models the traffic surges that
    /// motivate the paper (§1): e.g. `[(0, 1.0), (10s, 1.5), (30s, 1.0)]`
    /// is a 20-second 1.5× surge. Empty = constant rate.
    pub rate_steps: Vec<(Nanos, f64)>,
    /// Optional mid-run traffic-mix shift: from the given virtual time on,
    /// arrivals sample the second mix instead of `mix`. Models the mix
    /// drift the adaptive control plane reacts to; the two mixes must come
    /// from the same type registry. `None` = static mix.
    pub mix_shift: Option<(Nanos, QueryMix)>,
    /// Content hash of the scenario this run was constructed from
    /// (`ScenarioSpec::content_hash`), stamped into the [`SimResult`] and
    /// emitted as a `scenario` event at stream start when observing.
    /// `None` for ad-hoc configs assembled outside the spec layer.
    pub scenario_hash: Option<u64>,
    /// Optional observability sink; lifecycle events are emitted with
    /// virtual-time timestamps, and the sink is attached to the policy for
    /// its per-interval maintenance events. `None` (the default) costs
    /// nothing on the arrival/completion paths.
    pub sink: Option<Arc<dyn EventSink>>,
    /// Optional distributed tracer: each simulated query becomes a span
    /// tree (root + admission + queue + service) stamped with *virtual*
    /// time, so `trace-report` reads simulator and threaded-host traces
    /// identically. Subject to the tracer's sampling policy.
    pub tracer: Option<Arc<Tracer>>,
}

impl SimConfig {
    /// The §5.3 setup: `P = 100`, 1.5 M measured queries, 100 k warm-up,
    /// 100 ms ticks, unbounded queue.
    pub fn paper(rate_qps: f64, seed: u64) -> Self {
        Self {
            parallelism: 100,
            rate_qps,
            measured_queries: 1_500_000,
            warmup_queries: 100_000,
            seed,
            tick_interval: millis(100),
            max_queue_len: None,
            discipline: SimDiscipline::Fifo,
            rate_steps: Vec::new(),
            mix_shift: None,
            scenario_hash: None,
            sink: None,
            tracer: None,
        }
    }

    /// A scaled-down variant for tests and quick sweeps: same shape, fewer
    /// queries.
    pub fn quick(rate_qps: f64, seed: u64) -> Self {
        Self {
            measured_queries: 150_000,
            warmup_queries: 30_000,
            ..Self::paper(rate_qps, seed)
        }
    }
}

/// A pending event in virtual time. Ordering: earliest first; sequence
/// number breaks ties deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EventKey {
    at: Nanos,
    seq: u64,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// A query of the given type and processing time arrives.
    Arrival { ty: TypeId, pt: Nanos },
    /// An engine process finishes the query it started.
    Completion {
        ty: TypeId,
        pt: Nanos,
        enqueued_at: Nanos,
        dequeued_at: Nanos,
        /// Key into the in-flight trace table, when tracing.
        trace: Option<u32>,
    },
    /// Periodic policy maintenance.
    Tick,
}

/// Runs one simulation: drives `policy` with Poisson arrivals from `mix`
/// until `cfg.measured_queries` post-warm-up queries have arrived, then
/// drains, and returns the measured statistics.
pub fn run(policy: &dyn AdmissionPolicy, mix: &QueryMix, cfg: &SimConfig) -> SimResult {
    assert!(cfg.parallelism > 0 && cfg.rate_qps > 0.0);
    let n_types = mix.max_type_index().max(
        cfg.mix_shift
            .as_ref()
            .map(|(_, m)| m.max_type_index())
            .unwrap_or(0),
    );
    let stats = ServerStats::new(n_types);
    stats.disable(); // warm-up first

    let sink: Arc<dyn EventSink> = cfg.sink.clone().unwrap_or_else(null_sink);
    policy.attach_sink(Arc::clone(&sink));
    let observing = sink.enabled();
    if observing {
        if let Some(hash) = cfg.scenario_hash {
            sink.emit(&ObsEvent::Scenario { at: 0, hash });
        }
    }
    let tracer = cfg.tracer.as_deref().filter(|t| t.enabled());
    // In-flight query traces, keyed by a dense counter the events carry.
    let mut traces: HashMap<u32, QueryTrace> = HashMap::new();
    let mut next_trace_key: u32 = 0;

    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    debug_assert!(
        cfg.rate_steps.windows(2).all(|w| w[0].0 <= w[1].0),
        "rate_steps must be sorted by time"
    );
    // Current rate multiplier per the surge profile (step function).
    let multiplier_at = |now: Nanos| -> f64 {
        cfg.rate_steps
            .iter()
            .rev()
            .find(|&&(from, _)| now >= from)
            .map(|&(_, m)| m)
            .unwrap_or(1.0)
    };
    let gap_at = |now: Nanos, rng: &mut SmallRng| -> Nanos {
        let rate = cfg.rate_qps * multiplier_at(now);
        let arrivals = Exponential::new(rate / SECOND as f64); // events per ns
        (arrivals.sample(rng) as Nanos).max(1)
    };
    // Draws the next arrival: its time, type, and processing time. With a
    // mix shift configured the arrival *time* picks the mix, so the gap is
    // drawn first; without one the original draw order is preserved (same
    // seed, same run).
    let next_arrival = |now: Nanos, rng: &mut SmallRng| -> (Nanos, TypeId, Nanos) {
        match &cfg.mix_shift {
            None => {
                let class = mix.sample_class(rng);
                let pt = class.sample_processing(rng);
                (now + gap_at(now, rng), class.ty, pt)
            }
            Some((shift_at, shifted)) => {
                let at = now + gap_at(now, rng);
                let class = if at >= *shift_at {
                    shifted.sample_class(rng)
                } else {
                    mix.sample_class(rng)
                };
                let pt = class.sample_processing(rng);
                (at, class.ty, pt)
            }
        }
    };

    let mut heap: BinaryHeap<Reverse<(EventKey, u64)>> = BinaryHeap::new();
    let mut events: Vec<Event> = Vec::new();
    let mut seq = 0u64;
    let mut schedule = |heap: &mut BinaryHeap<Reverse<(EventKey, u64)>>,
                        events: &mut Vec<Event>,
                        at: Nanos,
                        ev: Event| {
        let idx = events.len() as u64;
        events.push(ev);
        heap.push(Reverse((EventKey { at, seq }, idx)));
        seq += 1;
    };

    let mut queue = SimQueue::new(cfg.discipline.clone());
    let mut idle = cfg.parallelism;

    let total_arrivals = cfg.warmup_queries + cfg.measured_queries;
    let mut generated = 0u64;
    let mut measuring_since: Option<Nanos> = None;

    // Seed the event stream.
    {
        let (at, ty, pt) = next_arrival(0, &mut rng);
        schedule(&mut heap, &mut events, at, Event::Arrival { ty, pt });
    }
    schedule(&mut heap, &mut events, cfg.tick_interval, Event::Tick);

    let mut now: Nanos = 0;
    let mut in_flight = 0u64; // queued + processing

    while let Some(Reverse((key, idx))) = heap.pop() {
        now = key.at;
        match events[idx as usize] {
            Event::Tick => {
                policy.on_tick(now);
                if observing {
                    // The virtual-time heartbeat: time-driven sinks (the
                    // health sampler) advance their windows on this even
                    // when no queries flow.
                    sink.emit(&ObsEvent::Tick { at: now });
                }
                // Keep ticking while work remains.
                if generated < total_arrivals || in_flight > 0 {
                    schedule(&mut heap, &mut events, now + cfg.tick_interval, Event::Tick);
                }
            }
            Event::Arrival { ty, pt } => {
                generated += 1;
                if generated == cfg.warmup_queries + 1 && measuring_since.is_none() {
                    stats.reset(now);
                    stats.enable();
                    measuring_since = Some(now);
                }

                stats.on_received(ty);
                let mut decision = policy.admit(ty, now);
                if decision.is_accept() {
                    if let Some(limit) = cfg.max_queue_len {
                        if queue.len() >= limit {
                            decision = bouncer_core::policy::Decision::Reject(
                                RejectReason::QueueFull,
                            );
                        }
                    }
                }
                // The admission span is instantaneous in virtual time: the
                // simulated decision costs nothing (the ideal-system
                // contrast the paper's Fig. 13 draws).
                let mut qt = tracer.map(|t| t.begin(Some(ty), now, None));
                match decision {
                    bouncer_core::policy::Decision::Reject(reason) => {
                        stats.on_rejected(ty, reason);
                        if observing {
                            sink.emit(&ObsEvent::Rejected { at: now, ty, reason });
                        }
                        if let (Some(tracer), Some(mut qt)) = (tracer, qt.take()) {
                            qt.record_child(SpanKind::Admission, now, now);
                            tracer.finish(qt, SpanStatus::Rejected, now);
                        }
                    }
                    bouncer_core::policy::Decision::Accept => {
                        stats.on_accepted(ty);
                        in_flight += 1;
                        policy.on_enqueued(ty, now);
                        if observing {
                            sink.emit(&ObsEvent::Admitted { at: now, ty });
                        }
                        let trace = qt.take().map(|qt| {
                            let key = next_trace_key;
                            next_trace_key = next_trace_key.wrapping_add(1);
                            traces.insert(key, qt);
                            key
                        });
                        if idle > 0 {
                            // An idle process picks it up immediately.
                            idle -= 1;
                            policy.on_dequeued(ty, 0, now);
                            if observing {
                                // The queue was empty (an engine was idle),
                                // so the query passes straight through it.
                                sink.emit(&ObsEvent::Enqueued { at: now, ty, queue_len: 1 });
                                sink.emit(&ObsEvent::Dequeued { at: now, ty, wait: 0 });
                                sink.emit(&ObsEvent::Started { at: now, ty });
                            }
                            schedule(
                                &mut heap,
                                &mut events,
                                now + pt,
                                Event::Completion {
                                    ty,
                                    pt,
                                    enqueued_at: now,
                                    dequeued_at: now,
                                    trace,
                                },
                            );
                        } else {
                            queue.push_traced(ty, pt, now, trace);
                            if observing {
                                sink.emit(&ObsEvent::Enqueued {
                                    at: now,
                                    ty,
                                    queue_len: queue.len(),
                                });
                            }
                        }
                    }
                }

                if generated < total_arrivals {
                    let (at, ty, pt) = next_arrival(now, &mut rng);
                    schedule(&mut heap, &mut events, at, Event::Arrival { ty, pt });
                }
            }
            Event::Completion {
                ty,
                pt,
                enqueued_at,
                dequeued_at,
                trace,
            } => {
                policy.on_completed(ty, pt, now);
                let wait = dequeued_at - enqueued_at;
                stats.on_completed(ty, wait, pt);
                in_flight -= 1;
                if observing {
                    sink.emit(&ObsEvent::Completed {
                        at: now,
                        ty,
                        wait,
                        processing: pt,
                        rt: wait.saturating_add(pt),
                    });
                }
                if let Some(key) = trace {
                    if let (Some(tracer), Some(mut qt)) = (tracer, traces.remove(&key)) {
                        qt.record_child(SpanKind::Admission, qt.start(), qt.start());
                        qt.record_child(SpanKind::BrokerQueue, enqueued_at, dequeued_at);
                        qt.record_child(SpanKind::BrokerService, dequeued_at, now);
                        tracer.finish(qt, SpanStatus::Ok, now);
                    }
                }

                if let Some(next) = queue.pop() {
                    let wait = now - next.enqueued_at;
                    policy.on_dequeued(next.ty, wait, now);
                    if observing {
                        sink.emit(&ObsEvent::Dequeued { at: now, ty: next.ty, wait });
                        sink.emit(&ObsEvent::Started { at: now, ty: next.ty });
                    }
                    schedule(
                        &mut heap,
                        &mut events,
                        now + next.pt,
                        Event::Completion {
                            ty: next.ty,
                            pt: next.pt,
                            enqueued_at: next.enqueued_at,
                            dequeued_at: now,
                            trace: next.trace,
                        },
                    );
                } else {
                    idle += 1;
                }
            }
        }
    }

    sink.flush();
    if let Some(tracer) = tracer {
        tracer.flush();
    }

    let started = measuring_since.unwrap_or(0);
    SimResult {
        policy_name: policy.name().to_owned(),
        rate_qps: cfg.rate_qps,
        stats: stats.snapshot(now, cfg.parallelism),
        duration: now.saturating_sub(started),
        scenario_hash: cfg.scenario_hash,
    }
}
