//! Running simulator experiments from a [`ScenarioSpec`] — the registry
//! path every sim-side consumer (CLI, study benches, examples) constructs
//! through.
//!
//! [`ScenarioSim::new`] resolves a spec once — registering the workload's
//! types, building the mix and SLO table, computing `QPS_full_load` — and
//! then stamps every [`SimConfig`] it hands out with the scenario's content
//! hash, so results and event streams name the spec that produced them.

use std::sync::Arc;

use bouncer_core::control::{slo_tail_targets, ControlParam, ControlTap, Controller};
use bouncer_core::obs::recorder::DEFAULT_RING_CAPACITY;
use bouncer_core::obs::{HealthConfig, HealthSampler, Recorder, RecorderSink};
use bouncer_core::policy::AdmissionPolicy;
use bouncer_core::slo::SloConfig;
use bouncer_core::slo_spec::SpecError;
use bouncer_core::spec::{DisciplineSpec, PolicyEnv, PolicySpec, ScenarioSpec, SimSpec};
use bouncer_core::types::TypeRegistry;
use bouncer_metrics::time::millis_f64;
use bouncer_workload::mix::{build_mix, build_shift_mix, QueryMix};

use crate::engine::{run, SimConfig};
use crate::queue::SimDiscipline;
use crate::result::SimResult;

/// A sim scenario resolved against its workload: the fixture experiments
/// build policies and [`SimConfig`]s from.
pub struct ScenarioSim {
    spec: ScenarioSpec,
    registry: TypeRegistry,
    mix: QueryMix,
    shift_mix: Option<QueryMix>,
    slos: SloConfig,
    full_load: f64,
}

impl ScenarioSim {
    /// Resolves `spec` (which must select the sim runtime): registers the
    /// workload types, builds the mix (and the post-shift mix, for
    /// workloads with `pshift` classes) and SLO table, and computes
    /// `QPS_full_load` for the spec's parallelism.
    pub fn new(spec: ScenarioSpec) -> Result<ScenarioSim, SpecError> {
        let sim = spec.sim()?.clone();
        let mut registry = TypeRegistry::new();
        let mix = build_mix(&spec.workload, &mut registry)?;
        let shift_mix = build_shift_mix(&spec.workload, &mut registry)?;
        let slos = spec.slos(&registry)?;
        let full_load = mix.qps_full_load(sim.parallelism);
        Ok(ScenarioSim {
            spec,
            registry,
            mix,
            shift_mix,
            slos,
            full_load,
        })
    }

    /// Loads and resolves a `.scn` file.
    pub fn load(path: &std::path::Path) -> Result<ScenarioSim, SpecError> {
        ScenarioSim::new(ScenarioSpec::load(path)?)
    }

    /// The scenario this fixture was resolved from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The sim runtime parameters.
    pub fn sim_spec(&self) -> &SimSpec {
        self.spec.sim().expect("checked in new()")
    }

    /// The registry populated by the workload.
    pub fn registry(&self) -> &TypeRegistry {
        &self.registry
    }

    /// The resolved query mix.
    pub fn mix(&self) -> &QueryMix {
        &self.mix
    }

    /// The resolved SLO table.
    pub fn slos(&self) -> &SloConfig {
        &self.slos
    }

    /// `QPS_full_load` for the spec's mix and parallelism.
    pub fn full_load(&self) -> f64 {
        self.full_load
    }

    /// The policy-construction environment for this scenario.
    pub fn policy_env(&self) -> PolicyEnv<'_> {
        PolicyEnv {
            registry: &self.registry,
            slos: self.slos.clone(),
            parallelism: self.sim_spec().parallelism,
        }
    }

    /// Builds the policy labeled `label` (`""` for the unlabeled line).
    pub fn build_policy(&self, label: &str, seed: u64) -> Result<Arc<dyn AdmissionPolicy>, SpecError> {
        Ok(self.spec.policy(label)?.build(&self.policy_env(), seed))
    }

    /// Builds an explicit policy spec in this scenario's environment (for
    /// sweeps that vary a parameter around a scenario's base policy).
    pub fn build(&self, policy: &PolicySpec, seed: u64) -> Arc<dyn AdmissionPolicy> {
        policy.build(&self.policy_env(), seed)
    }

    /// A [`SimConfig`] for this scenario at an absolute offered rate: the
    /// paper's §5.3 shape, overridden by the spec's parallelism, queue
    /// limit, discipline, rate steps, and run lengths, and stamped with
    /// the scenario's content hash.
    pub fn sim_config(&self, rate_qps: f64, seed: u64) -> SimConfig {
        let sim = self.sim_spec();
        let mut cfg = SimConfig::paper(rate_qps, seed);
        cfg.parallelism = sim.parallelism;
        cfg.max_queue_len = sim.queue_limit.map(|l| l as usize);
        cfg.discipline = match &sim.discipline {
            DisciplineSpec::Fifo => SimDiscipline::Fifo,
            DisciplineSpec::Priority(levels) => SimDiscipline::PriorityByType(levels.clone()),
            DisciplineSpec::ShortestJobFirst => SimDiscipline::ShortestJobFirst,
        };
        cfg.rate_steps = sim
            .rate_steps
            .iter()
            .map(|&(at_ms, factor)| (millis_f64(at_ms), factor))
            .collect();
        if let (Some(at_ms), Some(shifted)) = (sim.shift_at, &self.shift_mix) {
            cfg.mix_shift = Some((millis_f64(at_ms), shifted.clone()));
        }
        if let Some(measured) = self.spec.measured {
            cfg.measured_queries = measured;
        }
        if let Some(warmup) = self.spec.warmup {
            cfg.warmup_queries = warmup;
        }
        cfg.scenario_hash = Some(self.spec.content_hash());
        cfg
    }

    /// A [`SimConfig`] at a multiple of `QPS_full_load`.
    pub fn sim_config_at_factor(&self, factor: f64, seed: u64) -> SimConfig {
        self.sim_config(self.full_load * factor, seed)
    }

    /// Wires up the scenario's adaptive control plane, when its spec has a
    /// `controller` line: builds a [`Controller`] seeded from the labeled
    /// policy's own value of the controlled parameter, attaches `policy`
    /// as the Act target, and interposes a [`ControlTap`] between the
    /// engine and `cfg.sink` as the Observe step. Returns the controller
    /// for post-run inspection of its decision history; `Ok(None)` when
    /// the scenario is static. Runners evaluating statically-tuned
    /// variants of an adaptive scenario simply skip this call.
    pub fn attach_controller(
        &self,
        label: &str,
        policy: &Arc<dyn AdmissionPolicy>,
        cfg: &mut SimConfig,
    ) -> Result<Option<Arc<Controller>>, SpecError> {
        let Some(cspec) = &self.spec.controller else {
            return Ok(None);
        };
        let param = cspec.law.param();
        let initial = initial_param(self.spec.policy(label)?, param)
            .unwrap_or((cspec.min + cspec.max) / 2.0);
        let controller = Arc::new(Controller::new(cspec.clone(), initial));
        controller.attach_policy(Arc::clone(policy));
        let tails = slo_tail_targets(&self.slos, self.registry.len());
        let tap = Arc::new(ControlTap::new(
            Arc::clone(&controller),
            tails,
            cfg.sink.take(),
        ));
        controller.attach_sink(tap.clone());
        cfg.sink = Some(tap);
        Ok(Some(controller))
    }

    /// Wires the flight recorder and health sampler into `cfg`'s sink
    /// chain: the recorder captures every event into per-thread rings and
    /// the sampler folds periodic `health_sample`/`type_health` windows,
    /// resolving the scenario's SLO tail targets and type names so
    /// attainment scoring and incident-dump headers need no extra setup
    /// from the caller (who fills in `health.interval`, `dump_dir`, and
    /// trigger thresholds). Call *before* [`ScenarioSim::attach_controller`]
    /// so the control tap sits outermost and its `controller_decision`
    /// events flow down through the sampler and into the recorder.
    ///
    /// Returns the sampler for post-run inspection (`health_counters`,
    /// `incident_paths`, the recorder itself).
    pub fn attach_health(&self, mut health: HealthConfig, cfg: &mut SimConfig) -> Arc<HealthSampler> {
        health.slo_tails = slo_tail_targets(&self.slos, self.registry.len());
        health.type_names = (0..self.registry.len())
            .map(|i| {
                self.registry
                    .name(bouncer_core::types::TypeId::from_index(i as u32))
                    .to_string()
            })
            .collect();
        let recorder = Recorder::new(DEFAULT_RING_CAPACITY);
        let rec_sink: Arc<dyn bouncer_core::obs::EventSink> =
            Arc::new(RecorderSink::new(Arc::clone(&recorder), cfg.sink.take()));
        let sampler = HealthSampler::new(health, recorder, rec_sink);
        cfg.sink = Some(sampler.clone());
        sampler
    }

    /// Runs the labeled policy at `factor × QPS_full_load` — the
    /// `ScenarioSpec::run` entry point for single runs. Scenarios with a
    /// `controller` line run closed-loop.
    pub fn run(&self, label: &str, factor: f64, seed: u64) -> Result<SimResult, SpecError> {
        let policy = self.build_policy(label, seed)?;
        let mut cfg = self.sim_config_at_factor(factor, seed);
        self.attach_controller(label, &policy, &mut cfg)?;
        Ok(run(policy.as_ref(), &self.mix, &cfg))
    }
}

/// The labeled policy's own value of `param`, used to seed the controller
/// so the loop starts from the operator's configuration rather than a
/// band edge. `None` when the policy doesn't carry the parameter.
fn initial_param(policy: &PolicySpec, param: ControlParam) -> Option<f64> {
    match (param, policy) {
        (ControlParam::MaxUtilization, PolicySpec::AcceptFraction { max_utilization }) => {
            Some(*max_utilization)
        }
        (ControlParam::Allowance, PolicySpec::BouncerAllowance { allowance, .. }) => {
            Some(*allowance)
        }
        (ControlParam::Alpha, PolicySpec::BouncerUnderserved { alpha, .. }) => Some(*alpha),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(extra: &str) -> ScenarioSpec {
        let text = format!(
            "name = tiny\nseed = 7\nmeasured = 4000\nwarmup = 1000\n\
             slo.default = p50=18ms p90=50ms\nworkload = paper_table1\n\
             runtime = sim\nsim.rate_factors = 1.2\npolicy = bouncer\n\
             policy.maxql = maxql limit=400\n{extra}"
        );
        ScenarioSpec::parse(&text).unwrap()
    }

    #[test]
    fn resolves_and_runs_a_scenario() {
        let sim = ScenarioSim::new(tiny_spec("")).unwrap();
        assert!(sim.full_load() > 10_000.0, "full_load={}", sim.full_load());
        let result = sim.run("", 1.2, 7).unwrap();
        assert_eq!(result.policy_name, "bouncer");
        assert_eq!(result.scenario_hash, Some(sim.spec().content_hash()));
        assert!(result.stats.total_received() > 0);
        let result = sim.run("maxql", 1.2, 7).unwrap();
        assert_eq!(result.policy_name, "maxql");
        assert!(sim.run("nope", 1.2, 7).is_err());
    }

    #[test]
    fn spec_runtime_knobs_reach_the_sim_config() {
        let spec = tiny_spec(
            "sim.parallelism = 8\nsim.queue_limit = 50\n\
             sim.discipline = priority:0,0,0,1,2\nsim.rate_steps = 1s:1.5\n",
        );
        let sim = ScenarioSim::new(spec).unwrap();
        let cfg = sim.sim_config(1000.0, 3);
        assert_eq!(cfg.parallelism, 8);
        assert_eq!(cfg.max_queue_len, Some(50));
        assert_eq!(cfg.measured_queries, 4000);
        assert_eq!(cfg.warmup_queries, 1000);
        assert_eq!(cfg.rate_steps, vec![(bouncer_metrics::time::secs(1), 1.5)]);
        assert!(matches!(cfg.discipline, SimDiscipline::PriorityByType(_)));
        assert_eq!(cfg.scenario_hash, Some(sim.spec().content_hash()));
    }

    #[test]
    fn liquid_scenarios_are_rejected() {
        let spec = ScenarioSpec::parse("name = l\nruntime = liquid\npolicy = always\n").unwrap();
        assert!(ScenarioSim::new(spec).is_err());
    }

    fn adaptive_spec() -> ScenarioSpec {
        ScenarioSpec::parse(
            "name = adaptive\nseed = 3\nmeasured = 60000\nwarmup = 5000\n\
             slo.default = p50=18ms p90=50ms\nworkload = custom\n\
             class.FAST = p=0.85 p50=2ms p90=5ms pshift=0.45\n\
             class.SLOW = p=0.15 p50=14ms p90=40ms pshift=0.55\n\
             runtime = sim\nsim.parallelism = 20\nsim.rate_factors = 1.4\n\
             sim.shift_at = 2s\n\
             controller = budget target_attain=0.95 step=0.25\n\
             policy = bouncer+aa A=0.05\n",
        )
        .unwrap()
    }

    #[test]
    fn mix_shift_reaches_the_sim_config() {
        let sim = ScenarioSim::new(adaptive_spec()).unwrap();
        let cfg = sim.sim_config(1000.0, 3);
        let (at, shifted) = cfg.mix_shift.as_ref().expect("shift configured");
        assert_eq!(*at, bouncer_metrics::time::secs(2));
        let slow = shifted
            .classes()
            .iter()
            .find(|c| c.name == "SLOW")
            .expect("SLOW survives the shift");
        assert!((slow.proportion - 0.55).abs() < 1e-9);
        // Without `sim.shift_at` the pshift columns alone change nothing.
        let mut spec = adaptive_spec();
        if let bouncer_core::spec::RuntimeSpec::Sim(s) = &mut spec.runtime {
            s.shift_at = None;
        }
        let cfg = ScenarioSim::new(spec).unwrap().sim_config(1000.0, 3);
        assert!(cfg.mix_shift.is_none());
    }

    #[test]
    fn adaptive_scenarios_run_closed_loop() {
        let sim = ScenarioSim::new(adaptive_spec()).unwrap();
        let policy = sim.build_policy("", 3).unwrap();
        let mut cfg = sim.sim_config_at_factor(1.4, 3);
        let controller = sim
            .attach_controller("", &policy, &mut cfg)
            .unwrap()
            .expect("spec has a controller");
        // Seeded from the policy's own A, not the band midpoint.
        assert_eq!(controller.current_value(), 0.05);
        let result = run(policy.as_ref(), sim.mix(), &cfg);
        assert!(result.stats.total_received() > 0);
        assert!(
            !controller.decisions().is_empty(),
            "the loop must have closed at least one interval"
        );
        // Static scenarios wire nothing.
        let sim = ScenarioSim::new(tiny_spec("")).unwrap();
        let policy = sim.build_policy("", 7).unwrap();
        let mut cfg = sim.sim_config(1000.0, 7);
        assert!(sim.attach_controller("", &policy, &mut cfg).unwrap().is_none());
        assert!(cfg.sink.is_none(), "no tap interposed without a controller");
    }
}
