//! Simulated queue with pluggable service disciplines.
//!
//! The paper's LIquid serves admitted queries in FIFO order and leaves
//! other disciplines as future work (§6/§7). The simulator supports three,
//! for the scheduling ablation:
//!
//! * [`SimDiscipline::Fifo`] — the paper's order;
//! * [`SimDiscipline::PriorityByType`] — §7's priority extension;
//! * [`SimDiscipline::ShortestJobFirst`] — the discipline Gatekeeper
//!   (Elnikety et al., §6) pairs with its admission control. Only the
//!   simulator can implement true SJF, since it knows each query's
//!   processing time a priori; a real system would need predictions.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use bouncer_core::types::TypeId;
use bouncer_metrics::Nanos;

/// Service discipline for the simulated queue.
#[derive(Debug, Clone, Default)]
pub enum SimDiscipline {
    /// First-come, first-served (the paper's deployment).
    #[default]
    Fifo,
    /// Higher-priority types first; FIFO within a level.
    /// `priorities[TypeId::index()]`, missing entries = 0.
    PriorityByType(Vec<u8>),
    /// Shortest processing time first (oracle SJF).
    ShortestJobFirst,
}

/// One waiting query.
#[derive(Debug, Clone, Copy)]
pub struct SimQueued {
    /// Query type.
    pub ty: TypeId,
    /// Pre-drawn processing time.
    pub pt: Nanos,
    /// Enqueue timestamp.
    pub enqueued_at: Nanos,
    /// Key into the simulator's in-flight trace table, when tracing.
    pub trace: Option<u32>,
}

#[derive(Debug)]
struct Ranked {
    /// Cost key: *lower* cost is served first (`Reverse` turns the
    /// max-heap into a min-heap on this).
    cost: Reverse<u64>,
    /// FIFO tie-break: older first.
    seq: Reverse<u64>,
    item: SimQueued,
}

impl PartialEq for Ranked {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.seq == other.seq
    }
}
impl Eq for Ranked {}
impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cost.cmp(&other.cost).then(self.seq.cmp(&other.seq))
    }
}

enum Store {
    Fifo(VecDeque<SimQueued>),
    Ranked {
        heap: BinaryHeap<Ranked>,
        priorities: Option<Vec<u8>>,
        next_seq: u64,
    },
}

/// The simulated admitted-query queue.
pub struct SimQueue {
    store: Store,
}

impl SimQueue {
    /// Creates a queue with the given discipline.
    pub fn new(discipline: SimDiscipline) -> Self {
        let store = match discipline {
            SimDiscipline::Fifo => Store::Fifo(VecDeque::new()),
            SimDiscipline::PriorityByType(priorities) => Store::Ranked {
                heap: BinaryHeap::new(),
                priorities: Some(priorities),
                next_seq: 0,
            },
            SimDiscipline::ShortestJobFirst => Store::Ranked {
                heap: BinaryHeap::new(),
                priorities: None,
                next_seq: 0,
            },
        };
        Self { store }
    }

    /// Number of waiting queries.
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Fifo(q) => q.len(),
            Store::Ranked { heap, .. } => heap.len(),
        }
    }

    /// `true` when no queries wait.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues a query.
    pub fn push(&mut self, ty: TypeId, pt: Nanos, enqueued_at: Nanos) {
        self.push_traced(ty, pt, enqueued_at, None);
    }

    /// Enqueues a query carrying its trace-table key.
    pub fn push_traced(&mut self, ty: TypeId, pt: Nanos, enqueued_at: Nanos, trace: Option<u32>) {
        let item = SimQueued {
            ty,
            pt,
            enqueued_at,
            trace,
        };
        match &mut self.store {
            Store::Fifo(q) => q.push_back(item),
            Store::Ranked {
                heap,
                priorities,
                next_seq,
            } => {
                // Priority mode: higher priority = lower cost. SJF mode:
                // the processing time is the cost.
                let cost = match priorities {
                    Some(p) => u64::MAX - p.get(ty.index()).copied().unwrap_or(0) as u64,
                    None => pt,
                };
                heap.push(Ranked {
                    cost: Reverse(cost),
                    seq: Reverse(*next_seq),
                    item,
                });
                *next_seq += 1;
            }
        }
    }

    /// Dequeues the next query per the discipline.
    pub fn pop(&mut self) -> Option<SimQueued> {
        match &mut self.store {
            Store::Fifo(q) => q.pop_front(),
            Store::Ranked { heap, .. } => heap.pop().map(|r| r.item),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty(i: u32) -> TypeId {
        TypeId::from_index(i)
    }

    #[test]
    fn fifo_preserves_order() {
        let mut q = SimQueue::new(SimDiscipline::Fifo);
        for i in 0..5 {
            q.push(ty(0), 100, i);
        }
        for i in 0..5 {
            assert_eq!(q.pop().unwrap().enqueued_at, i);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn priority_serves_high_types_first_fifo_within() {
        let mut q = SimQueue::new(SimDiscipline::PriorityByType(vec![0, 7]));
        q.push(ty(0), 1, 10);
        q.push(ty(1), 1, 20);
        q.push(ty(0), 1, 30);
        q.push(ty(1), 1, 40);
        let order: Vec<Nanos> = std::iter::from_fn(|| q.pop().map(|i| i.enqueued_at)).collect();
        assert_eq!(order, vec![20, 40, 10, 30]);
    }

    #[test]
    fn sjf_serves_shortest_first_fifo_on_ties() {
        let mut q = SimQueue::new(SimDiscipline::ShortestJobFirst);
        q.push(ty(0), 500, 1);
        q.push(ty(0), 100, 2);
        q.push(ty(0), 300, 3);
        q.push(ty(0), 100, 4);
        let order: Vec<Nanos> = std::iter::from_fn(|| q.pop().map(|i| i.enqueued_at)).collect();
        assert_eq!(order, vec![2, 4, 3, 1]);
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = SimQueue::new(SimDiscipline::ShortestJobFirst);
        assert_eq!(q.len(), 0);
        q.push(ty(0), 10, 0);
        q.push(ty(0), 20, 1);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
