//! Simulation results and the accessors experiments report on.

use bouncer_core::framework::StatsSnapshot;
use bouncer_core::types::TypeId;
use bouncer_metrics::time::{as_millis_f64, Nanos};

/// Measured outcome of one simulation run (post-warm-up window only).
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The policy that gated admissions.
    pub policy_name: String,
    /// The offered rate, queries per second.
    pub rate_qps: f64,
    /// Host statistics over the measured window.
    pub stats: StatsSnapshot,
    /// Measured window duration (virtual nanoseconds).
    pub duration: Nanos,
    /// Content hash of the scenario that produced this run, when the run
    /// was constructed through the spec layer.
    pub scenario_hash: Option<u64>,
}

impl SimResult {
    /// Response-time quantile for serviced queries of `ty`, in ms.
    pub fn response_ms(&self, ty: TypeId, q: f64) -> Option<f64> {
        self.stats.per_type[ty.index()]
            .response
            .value_at_quantile(q)
            .map(as_millis_f64)
    }

    /// Processing-time quantile for serviced queries of `ty`, in ms.
    pub fn processing_ms(&self, ty: TypeId, q: f64) -> Option<f64> {
        self.stats.per_type[ty.index()]
            .processing
            .value_at_quantile(q)
            .map(as_millis_f64)
    }

    /// Per-type rejection percentage (0–100).
    pub fn rejection_pct(&self, ty: TypeId) -> f64 {
        self.stats.rejection_ratio(ty) * 100.0
    }

    /// Overall rejection percentage (0–100).
    pub fn overall_rejection_pct(&self) -> f64 {
        self.stats.overall_rejection_ratio() * 100.0
    }

    /// Engine utilization percentage (0–100).
    pub fn utilization_pct(&self) -> f64 {
        self.stats.utilization * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bouncer_core::framework::ServerStats;
    use bouncer_core::policy::RejectReason;
    use bouncer_metrics::time::{millis, secs};

    #[test]
    fn accessors_derive_from_snapshot() {
        let stats = ServerStats::new(2);
        for _ in 0..10 {
            stats.on_received(TypeId::from_index(1));
        }
        stats.on_rejected(TypeId::from_index(1), RejectReason::PredictedSloViolation);
        stats.on_completed(TypeId::from_index(1), millis(5), millis(15));
        let r = SimResult {
            policy_name: "x".into(),
            rate_qps: 1000.0,
            stats: stats.snapshot(secs(1), 10),
            duration: secs(1),
            scenario_hash: None,
        };
        assert!((r.rejection_pct(TypeId::from_index(1)) - 10.0).abs() < 1e-9);
        assert!((r.overall_rejection_pct() - 10.0).abs() < 1e-9);
        let rt = r.response_ms(TypeId::from_index(1), 0.5).unwrap();
        assert!((rt - 20.0).abs() < 1.0, "rt={rt}");
        let pt = r.processing_ms(TypeId::from_index(1), 0.5).unwrap();
        assert!((pt - 15.0).abs() < 1.0, "pt={pt}");
        assert!(r.utilization_pct() > 0.0);
        assert_eq!(r.response_ms(TypeId::from_index(0), 0.5), None);
    }
}
