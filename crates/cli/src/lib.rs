//! Argument parsing and run orchestration for the `bouncer-sim` CLI.
//!
//! A small hand-rolled parser (no external argument-parsing dependency):
//! `--key value` pairs with typed accessors, validated against the set of
//! known flags so typos fail loudly.

#![warn(missing_docs)]

pub mod args;
pub mod driver;

pub use args::{Args, ParseError};
pub use driver::{run_cli, PolicyChoice};
