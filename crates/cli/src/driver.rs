//! Resolves the effective scenario (file + flag overrides), runs the
//! simulation through the spec registry, renders results.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use bouncer_core::obs::HealthConfig;
use bouncer_core::prelude::*;
use bouncer_core::slo_spec::parse_slo_entries;
use bouncer_core::spec::SloEntrySpec;
use bouncer_metrics::time::{as_millis_f64, millis_f64};
use bouncer_sim::{run, ScenarioSim};

use crate::args::{Args, ParseError};

const ALLOWED: &[&str] = &[
    "scenario",
    "policy",
    "rate-factor",
    "rate-qps",
    "queries",
    "warmup",
    "seed",
    "parallelism",
    "slo-p50-ms",
    "slo-p90-ms",
    "slo-spec",
    "allowance",
    "alpha",
    "queue-limit",
    "wait-limit-ms",
    "max-utilization",
    "controller",
    "no-controller",
    "events-out",
    "metrics-out",
    "traces-out",
    "trace-sample",
    "trace-slo-ms",
    "health-interval-ms",
    "incident-dir",
    "trigger-rejection",
    "trigger-attainment",
    "trigger-force-ms",
    "help",
];

/// Policy parameter flags and the one policy each applies to. A supplied
/// flag whose policy is not selected is an error (exit 2), not a silent
/// no-op.
const PARAM_FLAGS: &[(&str, &str)] = &[
    ("allowance", "bouncer+aa"),
    ("alpha", "bouncer+htu"),
    ("queue-limit", "maxql"),
    ("wait-limit-ms", "maxqwt"),
    ("max-utilization", "acceptfraction"),
];

const TRACE_REPORT_ALLOWED: &[&str] = &["traces-in", "strict", "help"];

const TRACE_REPORT_HELP: &str = "\
bouncer-sim-cli trace-report — reconstruct span trees from a trace JSONL
file and break each query's latency down along its critical path

USAGE:
    bouncer-sim-cli trace-report --traces-in <path> [--strict]

FLAGS:
    --traces-in <path>  span JSONL, as written by --traces-out or any
                        JsonlSink attached to a Tracer
    --strict            exit non-zero when any span tree is incomplete
                        (orphaned spans or traces without a root)

The report aggregates per-component latency (admission, broker queue,
shard queue, shard service, transport, aggregation) at p50/p95/p99 and
names the straggler shard per fan-out round — the Fig. 13 diagnosis of
where milliseconds go as load rises. With the cluster's batched fan-out
(the default), one subquery span covers a round's whole batch to a
shard; the straggler is still the round's latest reply, so the
breakdown needs no special handling. See OBSERVABILITY.md.
";

const POSTMORTEM_ALLOWED: &[&str] = &["dump-in", "help"];

const POSTMORTEM_HELP: &str = "\
bouncer-sim-cli postmortem — reconstruct an incident episode from a
flight-recorder dump

USAGE:
    bouncer-sim-cli postmortem --dump-in <path>

FLAGS:
    --dump-in <path>   an incident dump (incident-*.jsonl), as written by
                       the health sampler's trigger engine under
                       --incident-dir (or a cluster's dump directory)

The report lays the episode out on one timeline: the queue-depth curve,
admissions/rejections/completions per bucket, the attainment dip and
rejection spike from the trailing health samples, per-type ledgers with
processing-time estimate drift, and every controller decision the flight
recorder caught — the Fig. 13 diagnosis of what the system did while the
incident unfolded. See OBSERVABILITY.md for the dump format and a worked
walkthrough.
";

const SCENARIO_HASH_HELP: &str = "\
bouncer-sim-cli scenario-hash — print the canonical content hash of
scenario files

USAGE:
    bouncer-sim-cli scenario-hash <path.scn> [more paths...]

Prints `<hash>  <file>` per scenario, where <hash> is the FNV-1a 64 hash
of the canonical serialization (comments and key order do not affect it).
scripts/check.sh diffs this output against scenarios/MANIFEST.
";

const GRAPH_STATS_HELP: &str = "\
bouncer-sim-cli graph-stats — build a liquid scenario's graph and report
its in-memory footprint

USAGE:
    bouncer-sim-cli graph-stats <path.scn> [more paths...]

Loads each scenario (runtime = liquid), generates its preferential-
attachment graph, and prints the `graph_stats` line: vertex count,
undirected edge count, resident heap bytes of the CSR representation,
and amortized bytes per stored adjacency entry. The same line is emitted
as a `graph_stats` observability event when a cluster spawns with an
event sink attached.
";

const HELP: &str = "\
bouncer-sim-cli — drive the paper's simulation study from the command line

USAGE:
    bouncer-sim-cli [--scenario <path>] [--policy <name>] [flags...]

SCENARIOS:
    --scenario <path>   load a declarative scenario (.scn, flat key=value;
                        see DESIGN.md). The run is constructed through the
                        spec registry, and the scenario's content hash is
                        printed in the report and stamped into the event
                        stream. All flags below OVERRIDE the loaded spec;
                        without --scenario they override the built-in
                        default scenario (paper workload, Bouncer, 1.2x).
                        The run uses the scenario's first policy and first
                        rate factor.

POLICIES (--policy):
    bouncer (default)   SLO-aware admission control (the paper's policy)
    bouncer+aa          Bouncer + acceptance-allowance (--allowance, default 0.05)
    bouncer+htu         Bouncer + helping-the-underserved (--alpha, default 1.0)
    maxql               max queue length (--queue-limit, default 400)
    maxqwt              max queue wait time (--wait-limit-ms, default 15)
    acceptfraction      utilization threshold (--max-utilization, default 0.95)
    gatekeeper          literature capacity baseline
    always              no admission control

    A parameter flag supplied alongside a policy it does not apply to
    (e.g. --allowance with --policy maxql) is an error.

WORKLOAD:
    the paper's Table 1 mix (fast/medium fast/medium slow/slow), P engine
    processes (--parallelism, default 100), Poisson arrivals.

RATES:
    --rate-factor <f>   multiple of QPS_full_load (default 1.2)
    --rate-qps <qps>    absolute rate (overrides --rate-factor)

RUN SHAPE:
    --queries <n>       measured queries (default 300000)
    --warmup <n>        warm-up queries (default 50000)
    --seed <n>          RNG seed (default 42)

SLOs (uniform across types, like the paper's study):
    --slo-p50-ms <ms>   default 18
    --slo-p90-ms <ms>   default 50
    --slo-spec <spec>   per-type SLOs in the paper's notation, overriding
                        the uniform flags, e.g.
                        'slow:{p50=25ms,p90=80ms},default:{p50=18ms,p90=50ms}'
                        (types: fast, medium fast, medium slow, slow)

ADAPTIVE CONTROL (see ADAPTIVE.md):
    --controller <line>   run closed-loop: a control law retunes the
                          policy's parameter from live telemetry at
                          interval boundaries. The line is the scenario
                          `controller =` grammar, e.g.
                          'budget target_attain=0.95 step=0.25' (laws:
                          aimd -> max_utilization, budget -> allowance,
                          gradient -> alpha). Overrides the scenario's
                          controller line.
    --no-controller       strip the scenario's controller (run the same
                          scenario statically, e.g. for comparisons)

OBSERVABILITY (see OBSERVABILITY.md for formats):
    --events-out <path>   write every query-lifecycle and policy event as
                          JSONL (one JSON object per line, virtual-time
                          timestamps; starts with a `scenario` event naming
                          the run's content hash)
    --metrics-out <path>  write the run's final statistics in the
                          Prometheus text exposition format
    --traces-out <path>   write distributed-tracing spans as JSONL
                          (virtual-time span trees; feed to trace-report)
    --trace-sample <n>    head-sample 1 in n queries (default 1 = all;
                          0 = never; rejected queries are always kept)
    --trace-slo-ms <ms>   also keep every trace whose response time
                          exceeds this bound, regardless of sampling

HEALTH & INCIDENTS (always-on; see OBSERVABILITY.md):
    every run carries the flight recorder (per-thread rings of compact
    event records) and the health sampler (periodic health_sample rows:
    queue depth, in-flight, attainment, rejection rate per window).
    --health-interval-ms <ms>  sample window length (default 250,
                          virtual-time)
    --incident-dir <dir>  arm the incident trigger engine: SLO bursts,
                          rejection spikes, and controller backoffs drain
                          the recorder plus trailing health samples into
                          incident-*.jsonl dumps here (feed to postmortem)
    --trigger-rejection <r>    rejection-rate threshold (default 0.5)
    --trigger-attainment <a>   SLO-attainment floor (off by default)
    --trigger-force-ms <ms>    force one dump once virtual time crosses
                          this — a deterministic CI hook

SUBCOMMANDS:
    trace-report          analyze a span JSONL file; see
                          `bouncer-sim-cli trace-report --help`
    postmortem            reconstruct an incident episode from a dump;
                          see `bouncer-sim-cli postmortem --help`
    scenario-hash         print canonical content hashes of .scn files;
                          see `bouncer-sim-cli scenario-hash --help`
    graph-stats           build a liquid scenario's graph and report its
                          footprint; see `bouncer-sim-cli graph-stats --help`
";

/// Which policy the user picked, with its parameters resolved — since the
/// scenario-spec refactor, simply the spec layer's [`PolicySpec`].
pub type PolicyChoice = PolicySpec;

/// Resolves `--policy` plus its parameter flags against a base policy (the
/// scenario's, when one is loaded). Flags override the base; a parameter
/// flag that does not apply to the selected policy is an error rather than
/// a silent no-op.
pub fn policy_spec_from_args(args: &Args, base: &PolicySpec) -> Result<PolicySpec, ParseError> {
    let kind = args.str_or("policy", base.kind_name());
    for &(flag, applies_to) in PARAM_FLAGS {
        if args.get(flag).is_some() && kind != applies_to {
            return Err(ParseError(format!(
                "--{flag} applies only to --policy {applies_to}, \
                 but the selected policy is `{kind}`"
            )));
        }
    }
    let mut spec = if kind == base.kind_name() {
        base.clone()
    } else {
        // The bare policy name parses to that policy with its defaults.
        PolicySpec::parse(kind).map_err(|e| ParseError(e.to_string()))?
    };
    match &mut spec {
        PolicySpec::BouncerAllowance { allowance, .. } => {
            *allowance = args.f64_or("allowance", *allowance)?;
        }
        PolicySpec::BouncerUnderserved { alpha, .. } => {
            *alpha = args.f64_or("alpha", *alpha)?;
        }
        PolicySpec::MaxQl { limit } => {
            *limit = args.u64_or("queue-limit", *limit)?;
        }
        PolicySpec::MaxQwt { wait_ms } => {
            *wait_ms = args.f64_or("wait-limit-ms", *wait_ms)?;
        }
        PolicySpec::MaxQwtPerType { .. } => {
            // Per-type limits come only from scenario files; a single
            // --wait-limit-ms flag collapses them to one uniform limit.
            if args.get("wait-limit-ms").is_some() {
                spec = PolicySpec::MaxQwt {
                    wait_ms: args.f64_or("wait-limit-ms", 0.0)?,
                };
            }
        }
        PolicySpec::AcceptFraction { max_utilization } => {
            *max_utilization = args.f64_or("max-utilization", *max_utilization)?;
        }
        PolicySpec::Bouncer(_) | PolicySpec::Gatekeeper { .. } | PolicySpec::Always => {}
    }
    Ok(spec)
}

/// Runs the CLI against raw arguments; returns the text to print and a
/// process exit code.
pub fn run_cli<I, S>(raw: I) -> (String, i32)
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    // Subcommands dispatch on the first raw argument, before flag parsing
    // (the flag parser rejects positionals).
    let raw: Vec<String> = raw.into_iter().map(Into::into).collect();
    if raw.first().map(String::as_str) == Some("trace-report") {
        return match run_trace_report(&raw[1..]) {
            Ok(out) => out,
            Err(e) => (format!("error: {e}\n\n{TRACE_REPORT_HELP}"), 2),
        };
    }
    if raw.first().map(String::as_str) == Some("postmortem") {
        return match run_postmortem(&raw[1..]) {
            Ok(out) => out,
            Err(e) => (format!("error: {e}\n\n{POSTMORTEM_HELP}"), 2),
        };
    }
    if raw.first().map(String::as_str) == Some("scenario-hash") {
        return match run_scenario_hash(&raw[1..]) {
            Ok(out) => (out, 0),
            Err(e) => (format!("error: {e}\n\n{SCENARIO_HASH_HELP}"), 2),
        };
    }
    if raw.first().map(String::as_str) == Some("graph-stats") {
        return match run_graph_stats(&raw[1..]) {
            Ok(out) => (out, 0),
            Err(e) => (format!("error: {e}\n\n{GRAPH_STATS_HELP}"), 2),
        };
    }
    match run_inner(raw) {
        Ok(report) => (report, 0),
        Err(e) => (format!("error: {e}\n\n{HELP}"), 2),
    }
}

/// The `scenario-hash` subcommand: `<hash>  <file>` per scenario, in the
/// order given — the golden output scripts/check.sh diffs against
/// scenarios/MANIFEST.
fn run_scenario_hash(paths: &[String]) -> Result<String, ParseError> {
    if paths.iter().any(|p| p == "--help") {
        return Ok(SCENARIO_HASH_HELP.to_owned());
    }
    if paths.is_empty() {
        return Err(ParseError(
            "scenario-hash requires at least one <path.scn>".into(),
        ));
    }
    let mut out = String::new();
    for path in paths {
        let spec = ScenarioSpec::load(Path::new(path)).map_err(|e| ParseError(e.to_string()))?;
        out.push_str(&format!("{}  {path}\n", spec.hash_hex()));
    }
    Ok(out)
}

/// The `graph-stats` subcommand: build each liquid scenario's graph and
/// print its `graph_stats` line (vertices, edges, heap bytes, bytes per
/// stored adjacency entry).
fn run_graph_stats(paths: &[String]) -> Result<String, ParseError> {
    use liquid::graph::{Graph, GraphConfig};

    if paths.iter().any(|p| p == "--help") {
        return Ok(GRAPH_STATS_HELP.to_owned());
    }
    if paths.is_empty() {
        return Err(ParseError(
            "graph-stats requires at least one <path.scn>".into(),
        ));
    }
    let mut out = String::new();
    for path in paths {
        let spec = ScenarioSpec::load(Path::new(path)).map_err(|e| ParseError(e.to_string()))?;
        let liquid_spec = spec.liquid().map_err(|e| ParseError(e.to_string()))?;
        let graph = Graph::generate(&GraphConfig {
            vertices: liquid_spec.graph_vertices,
            edges_per_vertex: liquid_spec.graph_edges_per_vertex,
            ..GraphConfig::default()
        });
        out.push_str(&format!("{path}: {}\n", graph.stats().render_line()));
    }
    Ok(out)
}

/// The `trace-report` subcommand: span JSONL in, critical-path latency
/// breakdown out. Returns `(text, exit_code)`; with `--strict`, incomplete
/// span trees exit 1 so scripts can gate on trace integrity.
fn run_trace_report(raw: &[String]) -> Result<(String, i32), ParseError> {
    use bouncer_core::obs::trace_report::{analyze, parse_spans, render_report};

    let args = Args::parse(raw.iter().cloned(), TRACE_REPORT_ALLOWED)?;
    if args.flag("help") {
        return Ok((TRACE_REPORT_HELP.to_owned(), 0));
    }
    let path = args
        .get("traces-in")
        .ok_or_else(|| ParseError("trace-report requires --traces-in <path>".into()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| ParseError(format!("--traces-in `{path}`: {e}")))?;
    let records = parse_spans(&text).map_err(ParseError)?;
    if records.is_empty() {
        return Err(ParseError(format!("`{path}` contains no span records")));
    }
    let report = analyze(records);
    let mut out = render_report(&report);
    let code = if args.flag("strict") && !report.all_complete() {
        out.push_str(&format!(
            "\nstrict: FAILED — {} orphan span(s), {} rootless trace(s), \
             {}/{} trees complete\n",
            report.orphan_spans,
            report.rootless_traces,
            report.complete,
            report.traces,
        ));
        1
    } else {
        0
    };
    Ok((out, code))
}

/// The `postmortem` subcommand: incident dump in, episode timeline out.
/// The analysis itself lives in `bouncer_core::obs::postmortem`; this is
/// the thin file-in/report-out shell around it.
fn run_postmortem(raw: &[String]) -> Result<(String, i32), ParseError> {
    use bouncer_core::obs::postmortem::{parse_dump, render_report};

    let args = Args::parse(raw.iter().cloned(), POSTMORTEM_ALLOWED)?;
    if args.flag("help") {
        return Ok((POSTMORTEM_HELP.to_owned(), 0));
    }
    let path = args
        .get("dump-in")
        .ok_or_else(|| ParseError("postmortem requires --dump-in <path>".into()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| ParseError(format!("--dump-in `{path}`: {e}")))?;
    let dump = parse_dump(&text).map_err(ParseError)?;
    Ok((render_report(&dump), 0))
}

/// Folds the command-line flags into the base scenario (loaded from
/// `--scenario`, or the built-in CLI default). The returned spec *is* the
/// run: its canonical hash names exactly what executes.
fn effective_scenario(args: &Args) -> Result<ScenarioSpec, ParseError> {
    let mut spec = match args.get("scenario") {
        Some(path) => {
            ScenarioSpec::load(Path::new(path)).map_err(|e| ParseError(e.to_string()))?
        }
        None => ScenarioSpec::cli_default(),
    };

    {
        let sim = match &mut spec.runtime {
            RuntimeSpec::Sim(sim) => sim,
            RuntimeSpec::Liquid(_) => {
                return Err(ParseError(format!(
                    "scenario `{}` targets the liquid cluster; the CLI runs \
                     sim scenarios (run liquid scenarios via the benches)",
                    spec.name
                )))
            }
        };
        if args.get("parallelism").is_some() {
            sim.parallelism = args.u64_or("parallelism", 0)? as u32;
        }
        if sim.parallelism == 0 {
            return Err(ParseError("--parallelism must be positive".into()));
        }
        if args.get("rate-qps").is_some() {
            sim.rate_qps = Some(args.f64_or("rate-qps", 0.0)?);
        } else if args.get("rate-factor").is_some() {
            sim.rate_qps = None;
            sim.rate_factors = vec![args.f64_or("rate-factor", 0.0)?];
        }
    }
    if args.get("queries").is_some() {
        spec.measured = Some(args.u64_or("queries", 0)?);
    }
    if args.get("warmup").is_some() {
        spec.warmup = Some(args.u64_or("warmup", 0)?);
    }
    if args.get("seed").is_some() {
        spec.seed = args.u64_or("seed", 0)?;
    }

    if let Some(notation) = args.get("slo-spec") {
        let entries = parse_slo_entries(notation).map_err(|e| ParseError(e.to_string()))?;
        spec.slos = entries
            .into_iter()
            .map(|(name, slo)| SloEntrySpec {
                name,
                targets: slo
                    .targets()
                    .iter()
                    .map(|&(p, target)| {
                        // Snap float noise from quantile→percent so p90
                        // renders as `p90`.
                        let pct = (p.quantile() * 100.0 * 1e9).round() / 1e9;
                        (pct, as_millis_f64(target))
                    })
                    .collect(),
            })
            .collect();
    } else if args.get("slo-p50-ms").is_some() || args.get("slo-p90-ms").is_some() {
        spec.slos = vec![SloEntrySpec {
            name: "default".into(),
            targets: vec![
                (50.0, args.f64_or("slo-p50-ms", 18.0)?),
                (90.0, args.f64_or("slo-p90-ms", 50.0)?),
            ],
        }];
    }

    if args.flag("no-controller") {
        spec.controller = None;
    }
    if let Some(line) = args.get("controller") {
        spec.controller =
            Some(ControllerSpec::parse(line).map_err(|e| ParseError(e.to_string()))?);
    }

    let base = spec
        .first_policy()
        .map_err(|e| ParseError(e.to_string()))?
        .clone();
    let policy_given = args.get("policy").is_some()
        || PARAM_FLAGS.iter().any(|&(flag, _)| args.get(flag).is_some());
    if policy_given {
        let resolved = policy_spec_from_args(args, &base)?;
        spec.policies[0].1 = resolved;
    }
    Ok(spec)
}

fn run_inner<I, S>(raw: I) -> Result<String, ParseError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let args = Args::parse(raw, ALLOWED)?;
    if args.flag("help") {
        return Ok(HELP.to_owned());
    }

    let spec = effective_scenario(&args)?;
    let tag = spec.tag();
    let seed = spec.seed;
    let label = spec.policies[0].0.clone();
    let scenario = ScenarioSim::new(spec).map_err(|e| ParseError(e.to_string()))?;
    let full_load = scenario.full_load();
    let sim_spec = scenario.sim_spec();
    let rate = match sim_spec.rate_qps {
        Some(qps) => qps,
        None => full_load * sim_spec.rate_factors[0],
    };
    if rate <= 0.0 {
        return Err(ParseError("the rate must be positive".into()));
    }

    let policy = scenario
        .build_policy(&label, seed)
        .map_err(|e| ParseError(e.to_string()))?;
    let mut cfg = scenario.sim_config(rate, seed);
    let mut jsonl: Option<Arc<JsonlSink>> = None;
    if let Some(path) = args.get("events-out") {
        let sink = Arc::new(
            JsonlSink::create(path)
                .map_err(|e| ParseError(format!("--events-out `{path}`: {e}")))?,
        );
        jsonl = Some(Arc::clone(&sink));
        cfg.sink = Some(sink);
    }
    let tracer = match args.get("traces-out") {
        Some(path) => {
            let sink = JsonlSink::create(path)
                .map_err(|e| ParseError(format!("--traces-out `{path}`: {e}")))?;
            let tcfg = TracerConfig {
                sample_every: args.u64_or("trace-sample", 1)?,
                slo_violation_ns: match args.get("trace-slo-ms") {
                    Some(_) => Some(millis_f64(args.f64_or("trace-slo-ms", 0.0)?)),
                    None => None,
                },
            };
            let tracer = Arc::new(Tracer::new(Arc::new(sink), tcfg));
            cfg.tracer = Some(tracer.clone());
            Some(tracer)
        }
        None => None,
    };
    // The health chain (recorder + sampler) interposes in front of the
    // user sink; the controller tap then wraps the chain, so decision
    // events flow down through the sampler and the recorder.
    let mut health = HealthConfig::default();
    let interval_ms = args.f64_or("health-interval-ms", 250.0)?;
    if !interval_ms.is_finite() || interval_ms <= 0.0 {
        return Err(ParseError("--health-interval-ms must be positive".into()));
    }
    health.interval = millis_f64(interval_ms);
    if let Some(dir) = args.get("incident-dir") {
        std::fs::create_dir_all(dir)
            .map_err(|e| ParseError(format!("--incident-dir `{dir}`: {e}")))?;
        health.dump_dir = Some(PathBuf::from(dir));
    }
    if args.get("trigger-rejection").is_some() {
        health.trigger.rejection_rate = Some(args.f64_or("trigger-rejection", 0.5)?);
    }
    if args.get("trigger-attainment").is_some() {
        health.trigger.attainment = Some(args.f64_or("trigger-attainment", 0.0)?);
    }
    if args.get("trigger-force-ms").is_some() {
        health.trigger.force_at = Some(millis_f64(args.f64_or("trigger-force-ms", 0.0)?));
    }
    let sampler = scenario.attach_health(health, &mut cfg);
    // After the sinks, so the Observe tap wraps the JSONL event stream.
    let controller = scenario
        .attach_controller(&label, &policy, &mut cfg)
        .map_err(|e| ParseError(e.to_string()))?;
    let result = run(policy.as_ref(), scenario.mix(), &cfg);
    let dropped_writes = jsonl.as_ref().map_or(0, |j| j.dropped_writes());

    if let Some(path) = args.get("metrics-out") {
        let names: Vec<&str> = scenario.registry().iter().map(|(_, name)| name).collect();
        let counters = tracer.as_ref().map(|t| TraceCounters {
            sampled: t.sampled_total(),
            dropped: t.dropped_total(),
        });
        let text = render_prometheus_full(
            &result.stats,
            &names,
            counters.as_ref(),
            None,
            Some(&sampler.health_counters(dropped_writes)),
            // The simulator has no replica tier; hedge counters are a
            // cluster-side export.
            None,
        );
        std::fs::write(path, text)
            .map_err(|e| ParseError(format!("--metrics-out `{path}`: {e}")))?;
    }

    let mut out = String::new();
    out.push_str(&format!("scenario: {tag}\n"));
    out.push_str(&format!(
        "policy: {}   rate: {:.0} QPS ({:.2}x of full load {:.0})\n",
        policy.name(),
        rate,
        rate / full_load,
        full_load,
    ));
    out.push_str(&format!(
        "measured {} queries over {:.2}s simulated; utilization {:.1}%\n\n",
        result.stats.total_received(),
        result.duration as f64 / 1e9,
        result.utilization_pct(),
    ));
    out.push_str(&format!(
        "{:<14} {:>9} {:>10} {:>12} {:>12} {:>12}\n",
        "type", "received", "rejected%", "rt_p50(ms)", "rt_p90(ms)", "pt_p50(ms)"
    ));
    for (ty, name) in scenario.registry().iter() {
        let t = &result.stats.per_type[ty.index()];
        if t.received == 0 {
            continue;
        }
        out.push_str(&format!(
            "{:<14} {:>9} {:>10.2} {:>12.1} {:>12.1} {:>12.1}\n",
            name,
            t.received,
            100.0 * t.rejection_ratio(),
            t.response.value_at_quantile(0.5).map(as_millis_f64).unwrap_or(f64::NAN),
            t.response.value_at_quantile(0.9).map(as_millis_f64).unwrap_or(f64::NAN),
            t.processing.value_at_quantile(0.5).map(as_millis_f64).unwrap_or(f64::NAN),
        ));
    }
    out.push_str(&format!(
        "\noverall: {:.2}% rejected\n",
        result.overall_rejection_pct()
    ));
    if let Some(c) = &controller {
        out.push_str(&format!(
            "controller: {} on {} — {} decision(s), final value {}\n",
            c.spec().law.name(),
            c.spec().law.param().label(),
            c.decisions().len(),
            c.current_value(),
        ));
    }
    out.push_str(&format!(
        "health: {} sample(s), peak queue depth {}; flight recorder: {} \
         record(s) across {} ring(s)\n",
        sampler.samples(),
        sampler.peak_queue_depth(),
        sampler.recorder().total_written(),
        sampler.recorder().ring_count(),
    ));
    for path in sampler.incident_paths() {
        out.push_str(&format!(
            "incident dump: {} — analyze with `postmortem --dump-in {}`\n",
            path.display(),
            path.display(),
        ));
    }
    if let Some(path) = args.get("events-out") {
        out.push_str(&format!("events written to {path} (JSONL)\n"));
    }
    if dropped_writes > 0 {
        out.push_str(&format!(
            "WARNING: {dropped_writes} event line(s) dropped writing --events-out \
             (I/O errors; the log is incomplete)\n"
        ));
    }
    if let Some(path) = args.get("metrics-out") {
        out.push_str(&format!("metrics written to {path} (Prometheus text)\n"));
    }
    if let (Some(path), Some(t)) = (args.get("traces-out"), tracer.as_ref()) {
        out.push_str(&format!(
            "traces written to {path} (JSONL; {} sampled, {} dropped) — \
             analyze with `trace-report --traces-in {path}`\n",
            t.sampled_total(),
            t.dropped_total(),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_prints_usage() {
        let (out, code) = run_cli(["--help"]);
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
        assert!(out.contains("bouncer+aa"));
        assert!(out.contains("--scenario"));
    }

    #[test]
    fn unknown_policy_is_an_error() {
        let (out, code) = run_cli(["--policy", "nope"]);
        assert_eq!(code, 2);
        assert!(out.contains("unknown policy"));
    }

    #[test]
    fn policy_choice_resolves_parameters() {
        let base = ScenarioSpec::cli_default().first_policy().unwrap().clone();
        let args = Args::parse(
            ["--policy", "bouncer+aa", "--allowance", "0.1"],
            ALLOWED,
        )
        .unwrap();
        assert_eq!(
            policy_spec_from_args(&args, &base).unwrap(),
            PolicySpec::allowance(0.1)
        );
        let args = Args::parse(["--policy", "maxqwt", "--wait-limit-ms", "12"], ALLOWED).unwrap();
        assert_eq!(
            policy_spec_from_args(&args, &base).unwrap(),
            PolicySpec::MaxQwt { wait_ms: 12.0 }
        );
    }

    #[test]
    fn inapplicable_parameter_flags_are_rejected() {
        // The headline bugfix: --allowance with --policy maxql used to be
        // silently ignored; now it exits 2 with a clear message.
        let (out, code) = run_cli(["--policy", "maxql", "--allowance", "0.1"]);
        assert_eq!(code, 2, "{out}");
        assert!(
            out.contains("--allowance applies only to --policy bouncer+aa"),
            "{out}"
        );
        // Same for the default policy (bouncer) with a maxql knob.
        let (out, code) = run_cli(["--queue-limit", "400"]);
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("--queue-limit applies only to"), "{out}");
        // The matching policy keeps working.
        let (out, code) = run_cli([
            "--policy", "maxql", "--queue-limit", "5", "--queries", "4000", "--warmup", "500",
        ]);
        assert_eq!(code, 0, "{out}");
    }

    #[test]
    fn small_run_produces_a_report_with_scenario_hash() {
        let (out, code) = run_cli([
            "--policy",
            "bouncer",
            "--queries",
            "20000",
            "--warmup",
            "5000",
            "--rate-factor",
            "1.2",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("policy: bouncer"));
        assert!(out.contains("slow"));
        assert!(out.contains("overall:"));
        // The report names the effective scenario and its 16-hex hash.
        let first = out.lines().next().unwrap();
        assert!(first.starts_with("scenario: cli "), "{first}");
        let hash = first.rsplit(' ').next().unwrap();
        assert_eq!(hash.len(), 16, "{first}");
        assert!(hash.chars().all(|c| c.is_ascii_hexdigit()), "{first}");
    }

    #[test]
    fn rate_qps_overrides_factor() {
        let (out, code) = run_cli([
            "--rate-qps",
            "5000",
            "--queries",
            "5000",
            "--warmup",
            "1000",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("rate: 5000 QPS"));
    }

    #[test]
    fn slo_spec_flag_is_parsed_and_validated() {
        let (out, code) = run_cli([
            "--slo-spec",
            "slow:{p50=25ms,p90=80ms},default:{p50=18ms,p90=50ms}",
            "--queries",
            "10000",
            "--warmup",
            "2000",
        ]);
        assert_eq!(code, 0, "{out}");
        let (out, code) = run_cli(["--slo-spec", "bogus:{p50=1ms}"]);
        assert_eq!(code, 2);
        assert!(out.contains("unknown query type"), "{out}");
    }

    #[test]
    fn controller_flag_runs_closed_loop_and_reports() {
        let base = [
            "--policy",
            "bouncer+aa",
            "--allowance",
            "0.05",
            "--rate-factor",
            "1.4",
            "--queries",
            "30000",
            "--warmup",
            "5000",
        ];
        let mut adaptive = base.to_vec();
        adaptive.extend([
            "--controller",
            "budget target_attain=0.95 step=0.25 interval=250ms",
        ]);
        let (out, code) = run_cli(adaptive);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("controller: budget on allowance"), "{out}");

        // The same run without the flag stays open-loop.
        let (out, code) = run_cli(base);
        assert_eq!(code, 0, "{out}");
        assert!(!out.contains("controller:"), "{out}");

        // A malformed law is rejected at parse time.
        let (out, code) = run_cli(["--controller", "pid step=1"]);
        assert_eq!(code, 2);
        assert!(out.contains("unknown control law"), "{out}");
    }

    #[test]
    fn scenario_file_run_is_byte_identical_to_equivalent_flags() {
        // Build the spec the flag-driven run resolves to, write it out as
        // a .scn file, and check the two invocations render the very same
        // report (same hash line included).
        let mut spec = ScenarioSpec::cli_default();
        spec.seed = 7;
        spec.measured = Some(20_000);
        spec.warmup = Some(4_000);
        match &mut spec.runtime {
            RuntimeSpec::Sim(sim) => sim.rate_factors = vec![1.3],
            RuntimeSpec::Liquid(_) => unreachable!(),
        }
        spec.policies[0].1 = PolicySpec::MaxQl { limit: 50 };

        let path = std::env::temp_dir().join(format!(
            "bouncer-cli-scenario-{}.scn",
            std::process::id()
        ));
        std::fs::write(&path, spec.render()).unwrap();

        let (from_file, code_file) = run_cli(["--scenario", path.to_str().unwrap()]);
        let (from_flags, code_flags) = run_cli([
            "--policy",
            "maxql",
            "--queue-limit",
            "50",
            "--rate-factor",
            "1.3",
            "--queries",
            "20000",
            "--warmup",
            "4000",
            "--seed",
            "7",
        ]);
        assert_eq!(code_file, 0, "{from_file}");
        assert_eq!(code_flags, 0, "{from_flags}");
        assert_eq!(from_file, from_flags);
        assert!(from_file.contains(&spec.hash_hex()), "{from_file}");

        // Flag overrides on top of the file shift the hash.
        let (overridden, code) =
            run_cli(["--scenario", path.to_str().unwrap(), "--seed", "8"]);
        assert_eq!(code, 0, "{overridden}");
        assert!(!overridden.contains(&spec.hash_hex()), "{overridden}");

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scenario_hash_subcommand_prints_stable_hashes() {
        let spec = ScenarioSpec::cli_default();
        let path = std::env::temp_dir().join(format!(
            "bouncer-cli-hash-{}.scn",
            std::process::id()
        ));
        std::fs::write(&path, spec.render()).unwrap();
        let (out, code) = run_cli(["scenario-hash", path.to_str().unwrap()]);
        assert_eq!(code, 0, "{out}");
        assert_eq!(
            out,
            format!("{}  {}\n", spec.hash_hex(), path.to_str().unwrap())
        );
        let (out, code) = run_cli(["scenario-hash"]);
        assert_eq!(code, 2);
        assert!(out.contains("scenario-hash requires"), "{out}");
        let (_, code) = run_cli(["scenario-hash", "/nonexistent/file.scn"]);
        assert_eq!(code, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn graph_stats_subcommand_reports_footprint() {
        let path = std::env::temp_dir().join(format!(
            "bouncer-cli-graph-stats-{}.scn",
            std::process::id()
        ));
        std::fs::write(
            &path,
            "name = graph_stats_test\n\
             seed = 1\n\
             runtime = liquid\n\
             liquid.graph_vertices = 3000\n\
             liquid.graph_edges_per_vertex = 4\n\
             policy = always\n",
        )
        .unwrap();
        let (out, code) = run_cli(["graph-stats", path.to_str().unwrap()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("graph_stats vertices=3000 edges="), "{out}");
        assert!(out.contains("bytes_per_edge="), "{out}");

        // No paths, sim scenarios, and missing files are all errors.
        let (out, code) = run_cli(["graph-stats"]);
        assert_eq!(code, 2);
        assert!(out.contains("graph-stats requires"), "{out}");
        let sim_path = std::env::temp_dir().join(format!(
            "bouncer-cli-graph-stats-sim-{}.scn",
            std::process::id()
        ));
        std::fs::write(&sim_path, ScenarioSpec::cli_default().render()).unwrap();
        let (_, code) = run_cli(["graph-stats", sim_path.to_str().unwrap()]);
        assert_eq!(code, 2);
        let (_, code) = run_cli(["graph-stats", "/nonexistent/file.scn"]);
        assert_eq!(code, 2);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&sim_path);
    }

    #[test]
    fn events_and_metrics_flags_write_valid_files() {
        use bouncer_core::obs::{parse_json, validate_prometheus};

        let dir = std::env::temp_dir();
        let events_path = dir.join(format!("bouncer-cli-events-{}.jsonl", std::process::id()));
        let metrics_path = dir.join(format!("bouncer-cli-metrics-{}.prom", std::process::id()));

        let (out, code) = run_cli([
            "--policy",
            "maxql",
            "--queue-limit",
            "5",
            "--rate-factor",
            "1.5",
            "--queries",
            "20000",
            "--warmup",
            "2000",
            "--events-out",
            events_path.to_str().unwrap(),
            "--metrics-out",
            metrics_path.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("events written to"));
        assert!(out.contains("metrics written to"));

        // Every JSONL line parses, the stream opens with the scenario
        // event, and the overload run shed something.
        let events = std::fs::read_to_string(&events_path).unwrap();
        let first = parse_json(events.lines().next().unwrap()).unwrap();
        assert_eq!(
            first.get("event").and_then(|e| e.as_str()),
            Some("scenario")
        );
        let hash = first
            .get("scenario_hash")
            .and_then(|h| h.as_str())
            .expect("scenario event carries the hash");
        assert_eq!(hash.len(), 16);
        assert!(out.contains(hash), "report and events agree on the hash");
        let mut rejected = 0usize;
        let mut lines = 0usize;
        for line in events.lines() {
            let v = parse_json(line).unwrap_or_else(|e| panic!("bad line `{line}`: {e}"));
            assert!(v.get("event").and_then(|e| e.as_str()).is_some());
            assert!(v.get("at_ns").and_then(|a| a.as_u64()).is_some());
            if v.get("event").and_then(|e| e.as_str()) == Some("rejected") {
                assert_eq!(
                    v.get("reason").and_then(|r| r.as_str()),
                    Some("queue-length-limit")
                );
                rejected += 1;
            }
            lines += 1;
        }
        assert!(lines > 20_000, "expected a full event log, got {lines} lines");
        assert!(rejected > 0, "the 1.5x run should have shed queries");

        // The metrics file passes the strict format checker and reconciles
        // with the log.
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        let samples = validate_prometheus(&metrics).expect("invalid Prometheus text");
        assert!(samples > 0);
        assert!(metrics.contains("bouncer_queries_rejected_total"));
        assert!(metrics.contains("reason=\"queue-length-limit\""));

        let _ = std::fs::remove_file(&events_path);
        let _ = std::fs::remove_file(&metrics_path);
    }

    #[test]
    fn traces_out_flag_writes_spans_trace_report_reads_them() {
        let dir = std::env::temp_dir();
        let traces_path = dir.join(format!("bouncer-cli-traces-{}.jsonl", std::process::id()));
        let metrics_path = dir.join(format!("bouncer-cli-tmetrics-{}.prom", std::process::id()));

        let (out, code) = run_cli([
            "--policy",
            "maxql",
            "--queue-limit",
            "5",
            "--rate-factor",
            "1.5",
            "--queries",
            "5000",
            "--warmup",
            "500",
            "--trace-sample",
            "10",
            "--traces-out",
            traces_path.to_str().unwrap(),
            "--metrics-out",
            metrics_path.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("traces written to"));

        // The sampler counters ride along in the Prometheus file.
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(metrics.contains("bouncer_trace_sampled_total"));
        assert!(metrics.contains("bouncer_trace_dropped_total"));

        // The subcommand reads the file back and renders the breakdown;
        // sim traces are complete by construction, so --strict passes.
        let (report, code) = run_cli([
            "trace-report",
            "--traces-in",
            traces_path.to_str().unwrap(),
            "--strict",
        ]);
        assert_eq!(code, 0, "{report}");
        assert!(report.contains("trace-report"), "{report}");
        assert!(report.contains("broker queue"), "{report}");

        let _ = std::fs::remove_file(&traces_path);
        let _ = std::fs::remove_file(&metrics_path);
    }

    #[test]
    fn trace_report_requires_input_and_flags_incomplete_trees() {
        let (out, code) = run_cli(["trace-report"]);
        assert_eq!(code, 2);
        assert!(out.contains("--traces-in"), "{out}");

        let (out, code) = run_cli(["trace-report", "--help"]);
        assert_eq!(code, 0);
        assert!(out.contains("--strict"), "{out}");

        // A span whose parent never appears is an incomplete tree.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("bouncer-cli-orphans-{}.jsonl", std::process::id()));
        std::fs::write(
            &path,
            "{\"event\":\"span\",\"at_ns\":5,\"trace\":1,\"span\":2,\"parent\":99,\
             \"kind\":\"broker_queue\",\"start_ns\":0,\"end_ns\":5,\"status\":\"ok\"}\n",
        )
        .unwrap();
        let (out, code) = run_cli(["trace-report", "--traces-in", path.to_str().unwrap()]);
        assert_eq!(code, 0, "{out}");
        let (out, code) =
            run_cli(["trace-report", "--traces-in", path.to_str().unwrap(), "--strict"]);
        assert_eq!(code, 1);
        assert!(out.contains("strict: FAILED"), "{out}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn forced_trigger_writes_incident_dump_and_postmortem_reads_it() {
        let dir = std::env::temp_dir().join(format!(
            "bouncer-cli-incidents-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // Overload (queue cap 5 at 1.5x) with a forced dump once virtual
        // time crosses 100ms — the deterministic CI hook.
        let (out, code) = run_cli([
            "--policy",
            "maxql",
            "--queue-limit",
            "5",
            "--rate-factor",
            "1.5",
            "--queries",
            "20000",
            "--warmup",
            "2000",
            "--health-interval-ms",
            "50",
            "--incident-dir",
            dir.to_str().unwrap(),
            "--trigger-force-ms",
            "100",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("health: "), "{out}");
        assert!(out.contains("flight recorder: "), "{out}");
        assert!(out.contains("incident dump: "), "{out}");

        let dump = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("incident-") && n.contains("forced"))
            })
            .expect("a forced incident dump on disk");
        // The report points at the dump by path.
        assert!(out.contains(dump.to_str().unwrap()), "{out}");

        // The postmortem subcommand reconstructs the episode.
        let (report, code) = run_cli(["postmortem", "--dump-in", dump.to_str().unwrap()]);
        assert_eq!(code, 0, "{report}");
        assert!(report.contains("incident: forced"), "{report}");
        assert!(report.contains("peak queue depth"), "{report}");
        assert!(report.contains("rejected"), "{report}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn postmortem_requires_input_and_prints_help() {
        let (out, code) = run_cli(["postmortem"]);
        assert_eq!(code, 2);
        assert!(out.contains("--dump-in"), "{out}");

        let (out, code) = run_cli(["postmortem", "--help"]);
        assert_eq!(code, 0);
        assert!(out.contains("flight-recorder dump"), "{out}");

        let (_, code) = run_cli(["postmortem", "--dump-in", "/nonexistent/dump.jsonl"]);
        assert_eq!(code, 2);
    }

    #[test]
    fn metrics_out_carries_health_families() {
        use bouncer_core::obs::validate_prometheus;

        let metrics_path = std::env::temp_dir().join(format!(
            "bouncer-cli-hmetrics-{}.prom",
            std::process::id()
        ));
        let (out, code) = run_cli([
            "--policy",
            "maxql",
            "--queue-limit",
            "5",
            "--rate-factor",
            "1.5",
            "--queries",
            "10000",
            "--warmup",
            "1000",
            "--metrics-out",
            metrics_path.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        validate_prometheus(&metrics).expect("invalid Prometheus text");
        assert!(metrics.contains("bouncer_queue_depth"), "{metrics}");
        assert!(metrics.contains("bouncer_in_flight"), "{metrics}");
        assert!(metrics.contains("bouncer_events_dropped_total"), "{metrics}");
        assert!(metrics.contains("bouncer_incidents_total"), "{metrics}");
        assert!(metrics.contains("bouncer_slo_attainment_ratio"), "{metrics}");
        let _ = std::fs::remove_file(&metrics_path);
    }

    #[test]
    fn invalid_health_interval_rejected() {
        let (out, code) = run_cli(["--health-interval-ms", "0"]);
        assert_eq!(code, 2);
        assert!(out.contains("--health-interval-ms"), "{out}");
    }

    #[test]
    fn invalid_parallelism_rejected() {
        let (out, code) = run_cli(["--parallelism", "0"]);
        assert_eq!(code, 2);
        assert!(out.contains("parallelism"));
    }
}
