//! Builds the chosen policy, runs the simulation, renders results.

use std::sync::Arc;

use bouncer_core::prelude::*;
use bouncer_metrics::time::{as_millis_f64, millis_f64};
use bouncer_sim::{run, SimConfig};
use bouncer_workload::mix::paper_table1_mix;

use crate::args::{Args, ParseError};

const ALLOWED: &[&str] = &[
    "policy",
    "rate-factor",
    "rate-qps",
    "queries",
    "warmup",
    "seed",
    "parallelism",
    "slo-p50-ms",
    "slo-p90-ms",
    "slo-spec",
    "allowance",
    "alpha",
    "queue-limit",
    "wait-limit-ms",
    "max-utilization",
    "events-out",
    "metrics-out",
    "help",
];

const HELP: &str = "\
bouncer-sim-cli — drive the paper's simulation study from the command line

USAGE:
    bouncer-sim-cli [--policy <name>] [--rate-factor <f>] [flags...]

POLICIES (--policy):
    bouncer (default)   SLO-aware admission control (the paper's policy)
    bouncer+aa          Bouncer + acceptance-allowance (--allowance, default 0.05)
    bouncer+htu         Bouncer + helping-the-underserved (--alpha, default 1.0)
    maxql               max queue length (--queue-limit, default 400)
    maxqwt              max queue wait time (--wait-limit-ms, default 15)
    acceptfraction      utilization threshold (--max-utilization, default 0.95)
    gatekeeper          literature capacity baseline
    always              no admission control

WORKLOAD:
    the paper's Table 1 mix (fast/medium fast/medium slow/slow), P engine
    processes (--parallelism, default 100), Poisson arrivals.

RATES:
    --rate-factor <f>   multiple of QPS_full_load (default 1.2)
    --rate-qps <qps>    absolute rate (overrides --rate-factor)

RUN SHAPE:
    --queries <n>       measured queries (default 300000)
    --warmup <n>        warm-up queries (default 50000)
    --seed <n>          RNG seed (default 42)

SLOs (uniform across types, like the paper's study):
    --slo-p50-ms <ms>   default 18
    --slo-p90-ms <ms>   default 50
    --slo-spec <spec>   per-type SLOs in the paper's notation, overriding
                        the uniform flags, e.g.
                        'slow:{p50=25ms,p90=80ms},default:{p50=18ms,p90=50ms}'
                        (types: fast, medium fast, medium slow, slow)

OBSERVABILITY (see OBSERVABILITY.md for formats):
    --events-out <path>   write every query-lifecycle and policy event as
                          JSONL (one JSON object per line, virtual-time
                          timestamps)
    --metrics-out <path>  write the run's final statistics in the
                          Prometheus text exposition format
";

/// Which policy the user picked, with its parameters resolved.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyChoice {
    /// Basic Bouncer.
    Bouncer,
    /// Bouncer + acceptance-allowance A.
    BouncerAllowance(f64),
    /// Bouncer + helping-the-underserved α.
    BouncerUnderserved(f64),
    /// MaxQL with a queue limit.
    MaxQl(u64),
    /// MaxQWT with a wait limit (ns).
    MaxQwt(u64),
    /// AcceptFraction with a utilization threshold.
    AcceptFraction(f64),
    /// Gatekeeper-style capacity baseline.
    Gatekeeper,
    /// No admission control.
    Always,
}

impl PolicyChoice {
    /// Resolves the `--policy` name plus its parameter flags.
    pub fn from_args(args: &Args) -> Result<PolicyChoice, ParseError> {
        let name = args.str_or("policy", "bouncer");
        Ok(match name {
            "bouncer" => PolicyChoice::Bouncer,
            "bouncer+aa" => PolicyChoice::BouncerAllowance(args.f64_or("allowance", 0.05)?),
            "bouncer+htu" => PolicyChoice::BouncerUnderserved(args.f64_or("alpha", 1.0)?),
            "maxql" => PolicyChoice::MaxQl(args.u64_or("queue-limit", 400)?),
            "maxqwt" => {
                PolicyChoice::MaxQwt(millis_f64(args.f64_or("wait-limit-ms", 15.0)?))
            }
            "acceptfraction" => {
                PolicyChoice::AcceptFraction(args.f64_or("max-utilization", 0.95)?)
            }
            "gatekeeper" => PolicyChoice::Gatekeeper,
            "always" => PolicyChoice::Always,
            other => {
                return Err(ParseError(format!(
                    "unknown policy `{other}` (see --help for the list)"
                )))
            }
        })
    }
}

/// Runs the CLI against raw arguments; returns the text to print and a
/// process exit code.
pub fn run_cli<I, S>(raw: I) -> (String, i32)
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    match run_inner(raw) {
        Ok(report) => (report, 0),
        Err(e) => (format!("error: {e}\n\n{HELP}"), 2),
    }
}

fn run_inner<I, S>(raw: I) -> Result<String, ParseError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let args = Args::parse(raw, ALLOWED)?;
    if args.flag("help") {
        return Ok(HELP.to_owned());
    }

    let parallelism = args.u64_or("parallelism", 100)? as u32;
    if parallelism == 0 {
        return Err(ParseError("--parallelism must be positive".into()));
    }
    let mut registry = TypeRegistry::new();
    let mix = paper_table1_mix(&mut registry);
    let full_load = mix.qps_full_load(parallelism);
    let rate = match args.get("rate-qps") {
        Some(_) => args.f64_or("rate-qps", 0.0)?,
        None => full_load * args.f64_or("rate-factor", 1.2)?,
    };
    if rate <= 0.0 {
        return Err(ParseError("the rate must be positive".into()));
    }

    let slos = match args.get("slo-spec") {
        Some(spec) => bouncer_core::slo_spec::apply_slo_spec(&registry, spec)
            .map_err(|e| ParseError(e.to_string()))?,
        None => {
            let slo = Slo::p50_p90(
                millis_f64(args.f64_or("slo-p50-ms", 18.0)?),
                millis_f64(args.f64_or("slo-p90-ms", 50.0)?),
            );
            SloConfig::uniform(&registry, slo)
        }
    };
    let seed = args.u64_or("seed", 42)?;

    let choice = PolicyChoice::from_args(&args)?;
    let bouncer = || Bouncer::new(slos.clone(), BouncerConfig::with_parallelism(parallelism));
    let policy: Arc<dyn AdmissionPolicy> = match choice {
        PolicyChoice::Bouncer => Arc::new(bouncer()),
        PolicyChoice::BouncerAllowance(a) => {
            Arc::new(AcceptanceAllowance::new(bouncer(), registry.len(), a, seed))
        }
        PolicyChoice::BouncerUnderserved(alpha) => Arc::new(HelpingTheUnderserved::new(
            bouncer(),
            registry.len(),
            alpha,
            seed,
        )),
        PolicyChoice::MaxQl(limit) => Arc::new(MaxQueueLength::new(limit)),
        PolicyChoice::MaxQwt(limit) => Arc::new(MaxQueueWaitTime::new(limit, parallelism)),
        PolicyChoice::AcceptFraction(util) => {
            let mut cfg = AcceptFractionConfig::new(util, parallelism);
            cfg.seed = seed;
            Arc::new(AcceptFraction::new(cfg))
        }
        PolicyChoice::Gatekeeper => Arc::new(GatekeeperStyle::new(
            registry.len(),
            GatekeeperConfig::new(parallelism),
        )),
        PolicyChoice::Always => Arc::new(AlwaysAccept::new()),
    };

    let mut cfg = SimConfig {
        parallelism,
        rate_qps: rate,
        measured_queries: args.u64_or("queries", 300_000)?,
        warmup_queries: args.u64_or("warmup", 50_000)?,
        seed,
        ..SimConfig::paper(rate, seed)
    };
    if let Some(path) = args.get("events-out") {
        let sink = JsonlSink::create(path)
            .map_err(|e| ParseError(format!("--events-out `{path}`: {e}")))?;
        cfg.sink = Some(Arc::new(sink));
    }
    let result = run(&policy, &mix, &cfg);

    if let Some(path) = args.get("metrics-out") {
        let names: Vec<&str> = registry.iter().map(|(_, name)| name).collect();
        let text = render_prometheus(&result.stats, &names);
        std::fs::write(path, text)
            .map_err(|e| ParseError(format!("--metrics-out `{path}`: {e}")))?;
    }

    let mut out = String::new();
    out.push_str(&format!(
        "policy: {}   rate: {:.0} QPS ({:.2}x of full load {:.0})\n",
        policy.name(),
        rate,
        rate / full_load,
        full_load,
    ));
    out.push_str(&format!(
        "measured {} queries over {:.2}s simulated; utilization {:.1}%\n\n",
        result.stats.total_received(),
        result.duration as f64 / 1e9,
        result.utilization_pct(),
    ));
    out.push_str(&format!(
        "{:<14} {:>9} {:>10} {:>12} {:>12} {:>12}\n",
        "type", "received", "rejected%", "rt_p50(ms)", "rt_p90(ms)", "pt_p50(ms)"
    ));
    for (ty, name) in registry.iter() {
        let t = &result.stats.per_type[ty.index()];
        if t.received == 0 {
            continue;
        }
        out.push_str(&format!(
            "{:<14} {:>9} {:>10.2} {:>12.1} {:>12.1} {:>12.1}\n",
            name,
            t.received,
            100.0 * t.rejection_ratio(),
            t.response.value_at_quantile(0.5).map(as_millis_f64).unwrap_or(f64::NAN),
            t.response.value_at_quantile(0.9).map(as_millis_f64).unwrap_or(f64::NAN),
            t.processing.value_at_quantile(0.5).map(as_millis_f64).unwrap_or(f64::NAN),
        ));
    }
    out.push_str(&format!(
        "\noverall: {:.2}% rejected\n",
        result.overall_rejection_pct()
    ));
    if let Some(path) = args.get("events-out") {
        out.push_str(&format!("events written to {path} (JSONL)\n"));
    }
    if let Some(path) = args.get("metrics-out") {
        out.push_str(&format!("metrics written to {path} (Prometheus text)\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_prints_usage() {
        let (out, code) = run_cli(["--help"]);
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
        assert!(out.contains("bouncer+aa"));
    }

    #[test]
    fn unknown_policy_is_an_error() {
        let (out, code) = run_cli(["--policy", "nope"]);
        assert_eq!(code, 2);
        assert!(out.contains("unknown policy"));
    }

    #[test]
    fn policy_choice_resolves_parameters() {
        let args = Args::parse(
            ["--policy", "bouncer+aa", "--allowance", "0.1"],
            ALLOWED,
        )
        .unwrap();
        assert_eq!(
            PolicyChoice::from_args(&args).unwrap(),
            PolicyChoice::BouncerAllowance(0.1)
        );
        let args = Args::parse(["--policy", "maxqwt", "--wait-limit-ms", "12"], ALLOWED).unwrap();
        assert_eq!(
            PolicyChoice::from_args(&args).unwrap(),
            PolicyChoice::MaxQwt(12_000_000)
        );
    }

    #[test]
    fn small_run_produces_a_report() {
        let (out, code) = run_cli([
            "--policy",
            "bouncer",
            "--queries",
            "20000",
            "--warmup",
            "5000",
            "--rate-factor",
            "1.2",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("policy: bouncer"));
        assert!(out.contains("slow"));
        assert!(out.contains("overall:"));
    }

    #[test]
    fn rate_qps_overrides_factor() {
        let (out, code) = run_cli([
            "--rate-qps",
            "5000",
            "--queries",
            "5000",
            "--warmup",
            "1000",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("rate: 5000 QPS"));
    }

    #[test]
    fn slo_spec_flag_is_parsed_and_validated() {
        let (out, code) = run_cli([
            "--slo-spec",
            "slow:{p50=25ms,p90=80ms},default:{p50=18ms,p90=50ms}",
            "--queries",
            "10000",
            "--warmup",
            "2000",
        ]);
        assert_eq!(code, 0, "{out}");
        let (out, code) = run_cli(["--slo-spec", "bogus:{p50=1ms}"]);
        assert_eq!(code, 2);
        assert!(out.contains("unknown query type"), "{out}");
    }

    #[test]
    fn events_and_metrics_flags_write_valid_files() {
        use bouncer_core::obs::{parse_json, validate_prometheus};

        let dir = std::env::temp_dir();
        let events_path = dir.join(format!("bouncer-cli-events-{}.jsonl", std::process::id()));
        let metrics_path = dir.join(format!("bouncer-cli-metrics-{}.prom", std::process::id()));

        let (out, code) = run_cli([
            "--policy",
            "maxql",
            "--queue-limit",
            "5",
            "--rate-factor",
            "1.5",
            "--queries",
            "20000",
            "--warmup",
            "2000",
            "--events-out",
            events_path.to_str().unwrap(),
            "--metrics-out",
            metrics_path.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("events written to"));
        assert!(out.contains("metrics written to"));

        // Every JSONL line parses, and the overload run shed something.
        let events = std::fs::read_to_string(&events_path).unwrap();
        let mut rejected = 0usize;
        let mut lines = 0usize;
        for line in events.lines() {
            let v = parse_json(line).unwrap_or_else(|e| panic!("bad line `{line}`: {e}"));
            assert!(v.get("event").and_then(|e| e.as_str()).is_some());
            assert!(v.get("at_ns").and_then(|a| a.as_u64()).is_some());
            if v.get("event").and_then(|e| e.as_str()) == Some("rejected") {
                assert_eq!(
                    v.get("reason").and_then(|r| r.as_str()),
                    Some("queue-length-limit")
                );
                rejected += 1;
            }
            lines += 1;
        }
        assert!(lines > 20_000, "expected a full event log, got {lines} lines");
        assert!(rejected > 0, "the 1.5x run should have shed queries");

        // The metrics file passes the strict format checker and reconciles
        // with the log.
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        let samples = validate_prometheus(&metrics).expect("invalid Prometheus text");
        assert!(samples > 0);
        assert!(metrics.contains("bouncer_queries_rejected_total"));
        assert!(metrics.contains("reason=\"queue-length-limit\""));

        let _ = std::fs::remove_file(&events_path);
        let _ = std::fs::remove_file(&metrics_path);
    }

    #[test]
    fn invalid_parallelism_rejected() {
        let (out, code) = run_cli(["--parallelism", "0"]);
        assert_eq!(code, 2);
        assert!(out.contains("parallelism"));
    }
}
