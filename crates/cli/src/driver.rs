//! Builds the chosen policy, runs the simulation, renders results.

use std::sync::Arc;

use bouncer_core::prelude::*;
use bouncer_metrics::time::{as_millis_f64, millis_f64};
use bouncer_sim::{run, SimConfig};
use bouncer_workload::mix::paper_table1_mix;

use crate::args::{Args, ParseError};

const ALLOWED: &[&str] = &[
    "policy",
    "rate-factor",
    "rate-qps",
    "queries",
    "warmup",
    "seed",
    "parallelism",
    "slo-p50-ms",
    "slo-p90-ms",
    "slo-spec",
    "allowance",
    "alpha",
    "queue-limit",
    "wait-limit-ms",
    "max-utilization",
    "events-out",
    "metrics-out",
    "traces-out",
    "trace-sample",
    "trace-slo-ms",
    "help",
];

const TRACE_REPORT_ALLOWED: &[&str] = &["traces-in", "strict", "help"];

const TRACE_REPORT_HELP: &str = "\
bouncer-sim-cli trace-report — reconstruct span trees from a trace JSONL
file and break each query's latency down along its critical path

USAGE:
    bouncer-sim-cli trace-report --traces-in <path> [--strict]

FLAGS:
    --traces-in <path>  span JSONL, as written by --traces-out or any
                        JsonlSink attached to a Tracer
    --strict            exit non-zero when any span tree is incomplete
                        (orphaned spans or traces without a root)

The report aggregates per-component latency (admission, broker queue,
shard queue, shard service, transport, aggregation) at p50/p95/p99 and
names the straggler shard per fan-out round — the Fig. 13 diagnosis of
where milliseconds go as load rises. With the cluster's batched fan-out
(the default), one subquery span covers a round's whole batch to a
shard; the straggler is still the round's latest reply, so the
breakdown needs no special handling. See OBSERVABILITY.md.
";

const HELP: &str = "\
bouncer-sim-cli — drive the paper's simulation study from the command line

USAGE:
    bouncer-sim-cli [--policy <name>] [--rate-factor <f>] [flags...]

POLICIES (--policy):
    bouncer (default)   SLO-aware admission control (the paper's policy)
    bouncer+aa          Bouncer + acceptance-allowance (--allowance, default 0.05)
    bouncer+htu         Bouncer + helping-the-underserved (--alpha, default 1.0)
    maxql               max queue length (--queue-limit, default 400)
    maxqwt              max queue wait time (--wait-limit-ms, default 15)
    acceptfraction      utilization threshold (--max-utilization, default 0.95)
    gatekeeper          literature capacity baseline
    always              no admission control

WORKLOAD:
    the paper's Table 1 mix (fast/medium fast/medium slow/slow), P engine
    processes (--parallelism, default 100), Poisson arrivals.

RATES:
    --rate-factor <f>   multiple of QPS_full_load (default 1.2)
    --rate-qps <qps>    absolute rate (overrides --rate-factor)

RUN SHAPE:
    --queries <n>       measured queries (default 300000)
    --warmup <n>        warm-up queries (default 50000)
    --seed <n>          RNG seed (default 42)

SLOs (uniform across types, like the paper's study):
    --slo-p50-ms <ms>   default 18
    --slo-p90-ms <ms>   default 50
    --slo-spec <spec>   per-type SLOs in the paper's notation, overriding
                        the uniform flags, e.g.
                        'slow:{p50=25ms,p90=80ms},default:{p50=18ms,p90=50ms}'
                        (types: fast, medium fast, medium slow, slow)

OBSERVABILITY (see OBSERVABILITY.md for formats):
    --events-out <path>   write every query-lifecycle and policy event as
                          JSONL (one JSON object per line, virtual-time
                          timestamps)
    --metrics-out <path>  write the run's final statistics in the
                          Prometheus text exposition format
    --traces-out <path>   write distributed-tracing spans as JSONL
                          (virtual-time span trees; feed to trace-report)
    --trace-sample <n>    head-sample 1 in n queries (default 1 = all;
                          0 = never; rejected queries are always kept)
    --trace-slo-ms <ms>   also keep every trace whose response time
                          exceeds this bound, regardless of sampling

SUBCOMMANDS:
    trace-report          analyze a span JSONL file; see
                          `bouncer-sim-cli trace-report --help`
";

/// Which policy the user picked, with its parameters resolved.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyChoice {
    /// Basic Bouncer.
    Bouncer,
    /// Bouncer + acceptance-allowance A.
    BouncerAllowance(f64),
    /// Bouncer + helping-the-underserved α.
    BouncerUnderserved(f64),
    /// MaxQL with a queue limit.
    MaxQl(u64),
    /// MaxQWT with a wait limit (ns).
    MaxQwt(u64),
    /// AcceptFraction with a utilization threshold.
    AcceptFraction(f64),
    /// Gatekeeper-style capacity baseline.
    Gatekeeper,
    /// No admission control.
    Always,
}

impl PolicyChoice {
    /// Resolves the `--policy` name plus its parameter flags.
    pub fn from_args(args: &Args) -> Result<PolicyChoice, ParseError> {
        let name = args.str_or("policy", "bouncer");
        Ok(match name {
            "bouncer" => PolicyChoice::Bouncer,
            "bouncer+aa" => PolicyChoice::BouncerAllowance(args.f64_or("allowance", 0.05)?),
            "bouncer+htu" => PolicyChoice::BouncerUnderserved(args.f64_or("alpha", 1.0)?),
            "maxql" => PolicyChoice::MaxQl(args.u64_or("queue-limit", 400)?),
            "maxqwt" => {
                PolicyChoice::MaxQwt(millis_f64(args.f64_or("wait-limit-ms", 15.0)?))
            }
            "acceptfraction" => {
                PolicyChoice::AcceptFraction(args.f64_or("max-utilization", 0.95)?)
            }
            "gatekeeper" => PolicyChoice::Gatekeeper,
            "always" => PolicyChoice::Always,
            other => {
                return Err(ParseError(format!(
                    "unknown policy `{other}` (see --help for the list)"
                )))
            }
        })
    }
}

/// Runs the CLI against raw arguments; returns the text to print and a
/// process exit code.
pub fn run_cli<I, S>(raw: I) -> (String, i32)
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    // Subcommands dispatch on the first raw argument, before flag parsing
    // (the flag parser rejects positionals).
    let raw: Vec<String> = raw.into_iter().map(Into::into).collect();
    if raw.first().map(String::as_str) == Some("trace-report") {
        return match run_trace_report(&raw[1..]) {
            Ok(out) => out,
            Err(e) => (format!("error: {e}\n\n{TRACE_REPORT_HELP}"), 2),
        };
    }
    match run_inner(raw) {
        Ok(report) => (report, 0),
        Err(e) => (format!("error: {e}\n\n{HELP}"), 2),
    }
}

/// The `trace-report` subcommand: span JSONL in, critical-path latency
/// breakdown out. Returns `(text, exit_code)`; with `--strict`, incomplete
/// span trees exit 1 so scripts can gate on trace integrity.
fn run_trace_report(raw: &[String]) -> Result<(String, i32), ParseError> {
    use bouncer_core::obs::trace_report::{analyze, parse_spans, render_report};

    let args = Args::parse(raw.iter().cloned(), TRACE_REPORT_ALLOWED)?;
    if args.flag("help") {
        return Ok((TRACE_REPORT_HELP.to_owned(), 0));
    }
    let path = args
        .get("traces-in")
        .ok_or_else(|| ParseError("trace-report requires --traces-in <path>".into()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| ParseError(format!("--traces-in `{path}`: {e}")))?;
    let records = parse_spans(&text).map_err(ParseError)?;
    if records.is_empty() {
        return Err(ParseError(format!("`{path}` contains no span records")));
    }
    let report = analyze(records);
    let mut out = render_report(&report);
    let code = if args.flag("strict") && !report.all_complete() {
        out.push_str(&format!(
            "\nstrict: FAILED — {} orphan span(s), {} rootless trace(s), \
             {}/{} trees complete\n",
            report.orphan_spans,
            report.rootless_traces,
            report.complete,
            report.traces,
        ));
        1
    } else {
        0
    };
    Ok((out, code))
}

fn run_inner<I, S>(raw: I) -> Result<String, ParseError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let args = Args::parse(raw, ALLOWED)?;
    if args.flag("help") {
        return Ok(HELP.to_owned());
    }

    let parallelism = args.u64_or("parallelism", 100)? as u32;
    if parallelism == 0 {
        return Err(ParseError("--parallelism must be positive".into()));
    }
    let mut registry = TypeRegistry::new();
    let mix = paper_table1_mix(&mut registry);
    let full_load = mix.qps_full_load(parallelism);
    let rate = match args.get("rate-qps") {
        Some(_) => args.f64_or("rate-qps", 0.0)?,
        None => full_load * args.f64_or("rate-factor", 1.2)?,
    };
    if rate <= 0.0 {
        return Err(ParseError("the rate must be positive".into()));
    }

    let slos = match args.get("slo-spec") {
        Some(spec) => bouncer_core::slo_spec::apply_slo_spec(&registry, spec)
            .map_err(|e| ParseError(e.to_string()))?,
        None => {
            let slo = Slo::p50_p90(
                millis_f64(args.f64_or("slo-p50-ms", 18.0)?),
                millis_f64(args.f64_or("slo-p90-ms", 50.0)?),
            );
            SloConfig::uniform(&registry, slo)
        }
    };
    let seed = args.u64_or("seed", 42)?;

    let choice = PolicyChoice::from_args(&args)?;
    let bouncer = || Bouncer::new(slos.clone(), BouncerConfig::with_parallelism(parallelism));
    let policy: Arc<dyn AdmissionPolicy> = match choice {
        PolicyChoice::Bouncer => Arc::new(bouncer()),
        PolicyChoice::BouncerAllowance(a) => {
            Arc::new(AcceptanceAllowance::new(bouncer(), registry.len(), a, seed))
        }
        PolicyChoice::BouncerUnderserved(alpha) => Arc::new(HelpingTheUnderserved::new(
            bouncer(),
            registry.len(),
            alpha,
            seed,
        )),
        PolicyChoice::MaxQl(limit) => Arc::new(MaxQueueLength::new(limit)),
        PolicyChoice::MaxQwt(limit) => Arc::new(MaxQueueWaitTime::new(limit, parallelism)),
        PolicyChoice::AcceptFraction(util) => {
            let mut cfg = AcceptFractionConfig::new(util, parallelism);
            cfg.seed = seed;
            Arc::new(AcceptFraction::new(cfg))
        }
        PolicyChoice::Gatekeeper => Arc::new(GatekeeperStyle::new(
            registry.len(),
            GatekeeperConfig::new(parallelism),
        )),
        PolicyChoice::Always => Arc::new(AlwaysAccept::new()),
    };

    let mut cfg = SimConfig {
        parallelism,
        rate_qps: rate,
        measured_queries: args.u64_or("queries", 300_000)?,
        warmup_queries: args.u64_or("warmup", 50_000)?,
        seed,
        ..SimConfig::paper(rate, seed)
    };
    if let Some(path) = args.get("events-out") {
        let sink = JsonlSink::create(path)
            .map_err(|e| ParseError(format!("--events-out `{path}`: {e}")))?;
        cfg.sink = Some(Arc::new(sink));
    }
    let tracer = match args.get("traces-out") {
        Some(path) => {
            let sink = JsonlSink::create(path)
                .map_err(|e| ParseError(format!("--traces-out `{path}`: {e}")))?;
            let tcfg = TracerConfig {
                sample_every: args.u64_or("trace-sample", 1)?,
                slo_violation_ns: match args.get("trace-slo-ms") {
                    Some(_) => Some(millis_f64(args.f64_or("trace-slo-ms", 0.0)?)),
                    None => None,
                },
            };
            let tracer = Arc::new(Tracer::new(Arc::new(sink), tcfg));
            cfg.tracer = Some(tracer.clone());
            Some(tracer)
        }
        None => None,
    };
    let result = run(&policy, &mix, &cfg);

    if let Some(path) = args.get("metrics-out") {
        let names: Vec<&str> = registry.iter().map(|(_, name)| name).collect();
        let counters = tracer.as_ref().map(|t| TraceCounters {
            sampled: t.sampled_total(),
            dropped: t.dropped_total(),
        });
        let text = render_prometheus_with_traces(&result.stats, &names, counters.as_ref());
        std::fs::write(path, text)
            .map_err(|e| ParseError(format!("--metrics-out `{path}`: {e}")))?;
    }

    let mut out = String::new();
    out.push_str(&format!(
        "policy: {}   rate: {:.0} QPS ({:.2}x of full load {:.0})\n",
        policy.name(),
        rate,
        rate / full_load,
        full_load,
    ));
    out.push_str(&format!(
        "measured {} queries over {:.2}s simulated; utilization {:.1}%\n\n",
        result.stats.total_received(),
        result.duration as f64 / 1e9,
        result.utilization_pct(),
    ));
    out.push_str(&format!(
        "{:<14} {:>9} {:>10} {:>12} {:>12} {:>12}\n",
        "type", "received", "rejected%", "rt_p50(ms)", "rt_p90(ms)", "pt_p50(ms)"
    ));
    for (ty, name) in registry.iter() {
        let t = &result.stats.per_type[ty.index()];
        if t.received == 0 {
            continue;
        }
        out.push_str(&format!(
            "{:<14} {:>9} {:>10.2} {:>12.1} {:>12.1} {:>12.1}\n",
            name,
            t.received,
            100.0 * t.rejection_ratio(),
            t.response.value_at_quantile(0.5).map(as_millis_f64).unwrap_or(f64::NAN),
            t.response.value_at_quantile(0.9).map(as_millis_f64).unwrap_or(f64::NAN),
            t.processing.value_at_quantile(0.5).map(as_millis_f64).unwrap_or(f64::NAN),
        ));
    }
    out.push_str(&format!(
        "\noverall: {:.2}% rejected\n",
        result.overall_rejection_pct()
    ));
    if let Some(path) = args.get("events-out") {
        out.push_str(&format!("events written to {path} (JSONL)\n"));
    }
    if let Some(path) = args.get("metrics-out") {
        out.push_str(&format!("metrics written to {path} (Prometheus text)\n"));
    }
    if let (Some(path), Some(t)) = (args.get("traces-out"), tracer.as_ref()) {
        out.push_str(&format!(
            "traces written to {path} (JSONL; {} sampled, {} dropped) — \
             analyze with `trace-report --traces-in {path}`\n",
            t.sampled_total(),
            t.dropped_total(),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_prints_usage() {
        let (out, code) = run_cli(["--help"]);
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
        assert!(out.contains("bouncer+aa"));
    }

    #[test]
    fn unknown_policy_is_an_error() {
        let (out, code) = run_cli(["--policy", "nope"]);
        assert_eq!(code, 2);
        assert!(out.contains("unknown policy"));
    }

    #[test]
    fn policy_choice_resolves_parameters() {
        let args = Args::parse(
            ["--policy", "bouncer+aa", "--allowance", "0.1"],
            ALLOWED,
        )
        .unwrap();
        assert_eq!(
            PolicyChoice::from_args(&args).unwrap(),
            PolicyChoice::BouncerAllowance(0.1)
        );
        let args = Args::parse(["--policy", "maxqwt", "--wait-limit-ms", "12"], ALLOWED).unwrap();
        assert_eq!(
            PolicyChoice::from_args(&args).unwrap(),
            PolicyChoice::MaxQwt(12_000_000)
        );
    }

    #[test]
    fn small_run_produces_a_report() {
        let (out, code) = run_cli([
            "--policy",
            "bouncer",
            "--queries",
            "20000",
            "--warmup",
            "5000",
            "--rate-factor",
            "1.2",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("policy: bouncer"));
        assert!(out.contains("slow"));
        assert!(out.contains("overall:"));
    }

    #[test]
    fn rate_qps_overrides_factor() {
        let (out, code) = run_cli([
            "--rate-qps",
            "5000",
            "--queries",
            "5000",
            "--warmup",
            "1000",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("rate: 5000 QPS"));
    }

    #[test]
    fn slo_spec_flag_is_parsed_and_validated() {
        let (out, code) = run_cli([
            "--slo-spec",
            "slow:{p50=25ms,p90=80ms},default:{p50=18ms,p90=50ms}",
            "--queries",
            "10000",
            "--warmup",
            "2000",
        ]);
        assert_eq!(code, 0, "{out}");
        let (out, code) = run_cli(["--slo-spec", "bogus:{p50=1ms}"]);
        assert_eq!(code, 2);
        assert!(out.contains("unknown query type"), "{out}");
    }

    #[test]
    fn events_and_metrics_flags_write_valid_files() {
        use bouncer_core::obs::{parse_json, validate_prometheus};

        let dir = std::env::temp_dir();
        let events_path = dir.join(format!("bouncer-cli-events-{}.jsonl", std::process::id()));
        let metrics_path = dir.join(format!("bouncer-cli-metrics-{}.prom", std::process::id()));

        let (out, code) = run_cli([
            "--policy",
            "maxql",
            "--queue-limit",
            "5",
            "--rate-factor",
            "1.5",
            "--queries",
            "20000",
            "--warmup",
            "2000",
            "--events-out",
            events_path.to_str().unwrap(),
            "--metrics-out",
            metrics_path.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("events written to"));
        assert!(out.contains("metrics written to"));

        // Every JSONL line parses, and the overload run shed something.
        let events = std::fs::read_to_string(&events_path).unwrap();
        let mut rejected = 0usize;
        let mut lines = 0usize;
        for line in events.lines() {
            let v = parse_json(line).unwrap_or_else(|e| panic!("bad line `{line}`: {e}"));
            assert!(v.get("event").and_then(|e| e.as_str()).is_some());
            assert!(v.get("at_ns").and_then(|a| a.as_u64()).is_some());
            if v.get("event").and_then(|e| e.as_str()) == Some("rejected") {
                assert_eq!(
                    v.get("reason").and_then(|r| r.as_str()),
                    Some("queue-length-limit")
                );
                rejected += 1;
            }
            lines += 1;
        }
        assert!(lines > 20_000, "expected a full event log, got {lines} lines");
        assert!(rejected > 0, "the 1.5x run should have shed queries");

        // The metrics file passes the strict format checker and reconciles
        // with the log.
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        let samples = validate_prometheus(&metrics).expect("invalid Prometheus text");
        assert!(samples > 0);
        assert!(metrics.contains("bouncer_queries_rejected_total"));
        assert!(metrics.contains("reason=\"queue-length-limit\""));

        let _ = std::fs::remove_file(&events_path);
        let _ = std::fs::remove_file(&metrics_path);
    }

    #[test]
    fn traces_out_flag_writes_spans_trace_report_reads_them() {
        let dir = std::env::temp_dir();
        let traces_path = dir.join(format!("bouncer-cli-traces-{}.jsonl", std::process::id()));
        let metrics_path = dir.join(format!("bouncer-cli-tmetrics-{}.prom", std::process::id()));

        let (out, code) = run_cli([
            "--policy",
            "maxql",
            "--queue-limit",
            "5",
            "--rate-factor",
            "1.5",
            "--queries",
            "5000",
            "--warmup",
            "500",
            "--trace-sample",
            "10",
            "--traces-out",
            traces_path.to_str().unwrap(),
            "--metrics-out",
            metrics_path.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("traces written to"));

        // The sampler counters ride along in the Prometheus file.
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(metrics.contains("bouncer_trace_sampled_total"));
        assert!(metrics.contains("bouncer_trace_dropped_total"));

        // The subcommand reads the file back and renders the breakdown;
        // sim traces are complete by construction, so --strict passes.
        let (report, code) = run_cli([
            "trace-report",
            "--traces-in",
            traces_path.to_str().unwrap(),
            "--strict",
        ]);
        assert_eq!(code, 0, "{report}");
        assert!(report.contains("trace-report"), "{report}");
        assert!(report.contains("broker queue"), "{report}");

        let _ = std::fs::remove_file(&traces_path);
        let _ = std::fs::remove_file(&metrics_path);
    }

    #[test]
    fn trace_report_requires_input_and_flags_incomplete_trees() {
        let (out, code) = run_cli(["trace-report"]);
        assert_eq!(code, 2);
        assert!(out.contains("--traces-in"), "{out}");

        let (out, code) = run_cli(["trace-report", "--help"]);
        assert_eq!(code, 0);
        assert!(out.contains("--strict"), "{out}");

        // A span whose parent never appears is an incomplete tree.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("bouncer-cli-orphans-{}.jsonl", std::process::id()));
        std::fs::write(
            &path,
            "{\"event\":\"span\",\"at_ns\":5,\"trace\":1,\"span\":2,\"parent\":99,\
             \"kind\":\"broker_queue\",\"start_ns\":0,\"end_ns\":5,\"status\":\"ok\"}\n",
        )
        .unwrap();
        let (out, code) = run_cli(["trace-report", "--traces-in", path.to_str().unwrap()]);
        assert_eq!(code, 0, "{out}");
        let (out, code) =
            run_cli(["trace-report", "--traces-in", path.to_str().unwrap(), "--strict"]);
        assert_eq!(code, 1);
        assert!(out.contains("strict: FAILED"), "{out}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn invalid_parallelism_rejected() {
        let (out, code) = run_cli(["--parallelism", "0"]);
        assert_eq!(code, 2);
        assert!(out.contains("parallelism"));
    }
}
