//! `bouncer-sim-cli`: run the paper's simulation study from the command line.
//!
//! ```sh
//! cargo run --release -p bouncer-cli -- --policy bouncer --rate-factor 1.3
//! cargo run --release -p bouncer-cli -- --policy maxqwt --wait-limit-ms 12
//! cargo run --release -p bouncer-cli -- --help
//! ```

fn main() {
    let (out, code) = bouncer_cli::run_cli(std::env::args().skip(1));
    print!("{out}");
    std::process::exit(code);
}
