//! `--key value` argument parsing.

use std::collections::BTreeMap;

/// Parse failure: unknown flag, missing value, or a value of the wrong type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parsed `--key value` arguments with typed accessors.
#[derive(Debug, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    /// Bare flags (`--help`) with no value.
    flags: Vec<String>,
}

impl Args {
    /// Parses raw arguments (without the program name). `allowed` is the
    /// full set of recognized keys; anything else is an error.
    pub fn parse<I, S>(raw: I, allowed: &[&str]) -> Result<Args, ParseError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut values = BTreeMap::new();
        let mut flags = Vec::new();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(ParseError(format!("unexpected positional argument `{arg}`")));
            };
            if !allowed.contains(&key) {
                return Err(ParseError(format!(
                    "unknown flag `--{key}`; known flags: {}",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    values.insert(key.to_owned(), iter.next().unwrap());
                }
                _ => flags.push(key.to_owned()),
            }
        }
        Ok(Args { values, flags })
    }

    /// `true` if the bare flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// String value of a key, if given.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// `f64` value with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, ParseError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseError(format!("--{key} expects a number, got `{v}`"))),
        }
    }

    /// `u64` value with a default.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, ParseError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseError(format!("--{key} expects an integer, got `{v}`"))),
        }
    }

    /// String value with a default.
    pub fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALLOWED: &[&str] = &["policy", "rate-factor", "seed", "help"];

    #[test]
    fn parses_key_value_pairs() {
        let a = Args::parse(["--policy", "bouncer", "--rate-factor", "1.2"], ALLOWED).unwrap();
        assert_eq!(a.get("policy"), Some("bouncer"));
        assert_eq!(a.f64_or("rate-factor", 1.0).unwrap(), 1.2);
        assert_eq!(a.u64_or("seed", 7).unwrap(), 7);
    }

    #[test]
    fn bare_flags_are_flags() {
        let a = Args::parse(["--help"], ALLOWED).unwrap();
        assert!(a.flag("help"));
        assert!(!a.flag("policy"));
    }

    #[test]
    fn unknown_flags_error_with_suggestions() {
        let err = Args::parse(["--polcy", "bouncer"], ALLOWED).unwrap_err();
        assert!(err.0.contains("unknown flag `--polcy`"));
        assert!(err.0.contains("--policy"));
    }

    #[test]
    fn positional_arguments_are_rejected() {
        let err = Args::parse(["bouncer"], ALLOWED).unwrap_err();
        assert!(err.0.contains("positional"));
    }

    #[test]
    fn type_errors_name_the_flag() {
        let a = Args::parse(["--rate-factor", "fast"], ALLOWED).unwrap();
        let err = a.f64_or("rate-factor", 1.0).unwrap_err();
        assert!(err.0.contains("--rate-factor"));
    }

    #[test]
    fn flag_followed_by_flag_is_bare() {
        let a = Args::parse(["--help", "--policy", "maxql"], ALLOWED).unwrap();
        assert!(a.flag("help"));
        assert_eq!(a.get("policy"), Some("maxql"));
    }
}
