#!/usr/bin/env bash
# The full local gate: release build, all tests, clippy as errors.
#
# The build environment is fully offline (external crates are satisfied by
# the stubs under vendor/ — see vendor/README.md), so every cargo call pins
# --offline; nothing here ever touches the network.
set -euo pipefail
cd "$(dirname "$0")/.."

# Enforces the numeric targets of docs/adr/001-performance-targets.md
# against the parsed BENCH files: T1 admit cached* mean <= 20 ns, T2
# inproc/rings_allocs == 0 (exact), T3 inproc/rings mean <= inproc/
# unbatched mean, T4 gate_cycle/recorder mean <= 2x gate_cycle/disabled
# (the always-on flight recorder's whole budget), G1 CSR bytes/edge <=
# 0.5x the Vec-of-Vecs reference at 1M vertices (exact), G2 CSR
# generate+build no slower than the reference build, G3/G4 the adaptive
# intersect and CSR neighbors kernels no slower than their binary-search
# / Vec-of-Vecs baselines (min statistic — single-measurement means are
# too noisy on a shared host; the min is the kernel's actual cost).
# Timing targets carry a +15 % tolerance, counts none.
# Prints a one-line before/after row per target and returns non-zero on
# any FAIL. Callable standalone: scripts/check.sh perf-gate [admit.json
# datapath.json graph.json].
perf_gate() {
    local admit_json="${1:-BENCH_admit.json}"
    local datapath_json="${2:-BENCH_datapath.json}"
    local graph_json="${3:-BENCH_graph.json}"
    echo "==> perf gate: $admit_json + $datapath_json + $graph_json vs docs/adr/001-performance-targets.md"
    awk -v admit="$admit_json" -v datapath="$datapath_json" -v graph="$graph_json" '
        /"mean":/ {
            key = $1; gsub(/[":]/, "", key)
            tag = (FILENAME == admit ? "a:" : FILENAME == datapath ? "d:" : "g:")
            for (i = 1; i <= NF; i++) {
                if ($i == "\"mean\":") {
                    v = $(i + 1); sub(/,$/, "", v)
                    means[tag key] = v + 0
                    if (tag == "a:") akeys[++an] = key
                }
                # The min key opens the object, so the field is "{\"min\":".
                if ($i ~ /(^|\{)"min":$/) {
                    v = $(i + 1); sub(/,$/, "", v)
                    mins[tag key] = v + 0
                }
            }
        }
        function row(name, target, measured, pass) {
            printf "    %-52s %14.2f %14.2f  %s\n", \
                name, target, measured, (pass ? "ok" : "FAIL")
            if (!pass) failed = 1
        }
        END {
            tol = 1.15
            printf "    %-52s %14s %14s  %s\n", \
                "target", "before(target)", "after(meas.)", "verdict"
            # T1: every cached* admit variant stays a hot path.
            t1 = 0
            for (i = 1; i <= an; i++) {
                k = akeys[i]
                if (k ~ /^cached/) {
                    t1++
                    row("T1 admit " k " mean <= 20 ns", 20, means["a:" k], \
                        means["a:" k] <= 20 * tol)
                }
            }
            if (t1 == 0) row("T1 admit cached rows present", 1, 0, 0)
            # T2: the rings data path allocates nothing per query.
            if ("d:inproc/rings_allocs" in means)
                row("T2 inproc/rings_allocs == 0 (count, exact)", 0, \
                    means["d:inproc/rings_allocs"], \
                    means["d:inproc/rings_allocs"] == 0)
            else
                row("T2 inproc/rings_allocs row present", 1, 0, 0)
            # T3: rings no slower than the unbatched channel baseline.
            if ("d:inproc/rings" in means && "d:inproc/unbatched" in means)
                row("T3 inproc/rings mean <= 1.15x inproc/unbatched", \
                    means["d:inproc/unbatched"] * tol, means["d:inproc/rings"], \
                    means["d:inproc/rings"] <= means["d:inproc/unbatched"] * tol)
            else
                row("T3 rings + unbatched rows present", 1, 0, 0)
            # T4: the always-on flight recorder stays within its budget on
            # the full gate cycle.
            if ("a:gate_cycle/recorder" in means && "a:gate_cycle/disabled" in means)
                row("T4 gate_cycle/recorder mean <= 2x gate_cycle/disabled", \
                    means["a:gate_cycle/disabled"] * 2 * tol, \
                    means["a:gate_cycle/recorder"], \
                    means["a:gate_cycle/recorder"] <= \
                        means["a:gate_cycle/disabled"] * 2 * tol)
            else
                row("T4 gate_cycle rows present", 1, 0, 0)
            # G1: the CSR representation halves the reference footprint
            # at the million-vertex scale (count ratio, no tolerance).
            if ("g:bytes_per_edge/csr_1m" in means && "g:bytes_per_edge/vecvec_1m" in means)
                row("G1 bytes_per_edge csr_1m <= 0.5x vecvec_1m (exact)", \
                    means["g:bytes_per_edge/vecvec_1m"] * 0.5, \
                    means["g:bytes_per_edge/csr_1m"], \
                    means["g:bytes_per_edge/csr_1m"] <= \
                        means["g:bytes_per_edge/vecvec_1m"] * 0.5)
            else
                row("G1 bytes_per_edge rows present", 1, 0, 0)
            # G2: the two-pass counting CSR build costs no more than the
            # legacy Vec-of-Vecs assembly (same generator stream).
            if ("g:build/csr_1m" in means && "g:build/vecvec_1m" in means)
                row("G2 build csr_1m mean <= 1.15x vecvec_1m", \
                    means["g:build/vecvec_1m"] * tol, means["g:build/csr_1m"], \
                    means["g:build/csr_1m"] <= means["g:build/vecvec_1m"] * tol)
            else
                row("G2 build rows present", 1, 0, 0)
            # G3: the adaptive intersection kernel is no slower than the
            # legacy binary-search filter at the 1M scale.
            if ("g:intersect/adaptive_1m" in mins && "g:intersect/binary_1m" in mins)
                row("G3 intersect adaptive_1m min <= 1.15x binary_1m", \
                    mins["g:intersect/binary_1m"] * tol, \
                    mins["g:intersect/adaptive_1m"], \
                    mins["g:intersect/adaptive_1m"] <= \
                        mins["g:intersect/binary_1m"] * tol)
            else
                row("G3 intersect rows present", 1, 0, 0)
            # G4: CSR neighbor walks are no slower than the Vec-of-Vecs
            # slices they replaced.
            if ("g:neighbors/csr_1m" in mins && "g:neighbors/vecvec_1m" in mins)
                row("G4 neighbors csr_1m min <= 1.15x vecvec_1m", \
                    mins["g:neighbors/vecvec_1m"] * tol, \
                    mins["g:neighbors/csr_1m"], \
                    mins["g:neighbors/csr_1m"] <= \
                        mins["g:neighbors/vecvec_1m"] * tol)
            else
                row("G4 neighbors rows present", 1, 0, 0)
            exit failed
        }
    ' "$admit_json" "$datapath_json" "$graph_json"
}

if [ "${1:-}" = "perf-gate" ]; then
    perf_gate "${2:-BENCH_admit.json}" "${3:-BENCH_datapath.json}" "${4:-BENCH_graph.json}"
    exit 0
fi

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> scenario gate: benches/examples construct policies only via the spec layer"
# Every experiment is declared in scenarios/*.scn and constructed through
# bouncer_core::spec. A bench or example that re-declares a policy factory
# or calls a policy constructor directly bypasses the registry — the one
# construction path the scenario layer guarantees. AlwaysAccept is exempt
# (pass-through brokers in capacity probes and data-path microbenches).
# Controller::new / ControlTap::new are gated for the same reason: a
# control loop whose law/cadence/clamps aren't declared in a scenario's
# `controller =` line can't be reproduced from the spec hash.
GATE_PATTERN='type MakePolicy|Bouncer::new\(|AcceptanceAllowance::new\(|HelpingTheUnderserved::new\(|MaxQueueLength::new\(|MaxQueueWaitTime::new\(|with_per_type_limits\(|AcceptFraction::new\(|GatekeeperStyle::new\(|Controller::new\(|ControlTap::new\('
if VIOLATIONS=$(grep -rnE "$GATE_PATTERN" crates/bench/benches examples); then
    echo "policy constructed outside bouncer_core::spec:" >&2
    printf '%s\n' "$VIOLATIONS" >&2
    exit 1
fi

echo "==> graph gate: adjacency storage goes through the CSR engine"
# The Vec-of-Vecs adjacency representation survives only as the
# equivalence/bench reference inside liquid::graph::reference and the
# test suites that pin the CSR engine to it. Any other Vec<Vec<VertexId>>
# reintroduces per-vertex allocation (header + malloc chunk + growth
# slack per vertex) on a path the CSR refactor exists to keep flat.
if VIOLATIONS=$(grep -rn 'Vec<Vec<VertexId>>' crates examples \
    | grep -v 'crates/liquid/src/graph\.rs' \
    | grep -v '/tests/'); then
    echo "Vec-of-Vecs adjacency outside the graph reference impl/tests:" >&2
    printf '%s\n' "$VIOLATIONS" >&2
    exit 1
fi

echo "==> scenario gate: checked-in scenarios parse and match scenarios/MANIFEST"
# scenario-hash parses every file (a malformed scenario fails here) and
# prints its canonical content hash; the diff catches edits that forgot to
# regenerate the manifest.
cargo run -q --release --offline -p bouncer-cli -- scenario-hash scenarios/*.scn \
    | diff - scenarios/MANIFEST || {
    echo "scenarios/MANIFEST is stale — run scripts/regen-manifest.sh and commit the result" >&2
    exit 1
}

echo "==> bench smoke: admit_hot_path (cached vs reference) + gate_cycle (recorder overhead)"
# Short-budget run of the admission hot-path group; the cached column is
# the shipped admit() path, the reference column the retained
# recompute-from-scratch implementation (the "before"). The gate_cycle
# rows price the event layer on a full offer->take->complete cycle:
# disabled = NullSink gate, counting = enabled near-zero sink, recorder =
# the always-on flight recorder (T4). Results land in BENCH_admit.json
# at the repo root.
BENCH_OUT=$(CRITERION_BUDGET_MS="${CRITERION_BUDGET_MS:-50}" \
    cargo bench -q --offline -p bouncer-bench --bench overhead 2>&1 \
    | grep -E '^(admit_hot_path|gate_cycle)/') || {
    echo "admit_hot_path/gate_cycle benches produced no output" >&2
    exit 1
}
printf '%s\n' "$BENCH_OUT" | awk '
    # Lines look like:
    #   admit_hot_path/cached/64_types  time: [7.3 ns 8.0 ns 9.1 ns]  (123 iters)
    #   gate_cycle/recorder  time: [80.1 ns 81.2 ns 82.9 ns]  (456 iters)
    # Emit one JSON object with ns-normalized stats, keyed variant/scale
    # for the 3-component admit rows and group/variant for the 2-component
    # gate_cycle rows.
    function ns(v, u) {
        if (u == "ns") return v
        if (u == "µs" || u == "us") return v * 1000
        if (u == "ms") return v * 1000000
        return v
    }
    {
        gsub(/[\[\]]/, "")
        split($1, path, "/")
        lo = ns($3 + 0, $4); mean = ns($5 + 0, $6); hi = ns($7 + 0, $8)
        key = (path[1] == "gate_cycle") ? path[1] "/" path[2] : path[2] "/" path[3]
        keys[++n] = key
        means[key] = mean; los[key] = lo; his[key] = hi
    }
    END {
        printf "{\n  \"bench\": \"admit_hot_path\",\n  \"unit\": \"ns\",\n"
        printf "  \"note\": \"cached = shipped admit() fast path (after); reference = recompute-from-scratch (before); gate_cycle/* = full cycle with the event layer disabled / counting / feeding the flight recorder\",\n"
        printf "  \"results\": {\n"
        for (i = 1; i <= n; i++) {
            k = keys[i]
            printf "    \"%s\": {\"min\": %.2f, \"mean\": %.2f, \"max\": %.2f}%s\n", \
                k, los[k], means[k], his[k], (i < n ? "," : "")
        }
        printf "  }\n}\n"
    }
' > BENCH_admit.json
echo "    wrote BENCH_admit.json:"
sed 's/^/    /' BENCH_admit.json

echo "==> bench smoke: liquid_datapath (batched vs unbatched reference)"
# Short-budget run of the broker→shard data-path group; `batched` is the
# shipped coalesced fan-out, `unbatched` the retained pre-batching
# reference (the "before": one message, reply channel, and payload copy
# per sub-query). `*_allocs` rows are allocation events per query, not
# nanoseconds (the parser's ns normalization leaves raw counts intact).
# Results land in BENCH_datapath.json at the repo root.
DATAPATH_OUT=$(CRITERION_BUDGET_MS="${CRITERION_BUDGET_MS:-50}" \
    cargo bench -q --offline -p bouncer-bench --bench liquid_datapath 2>&1 \
    | grep '^liquid_datapath/') || {
    echo "liquid_datapath bench produced no output" >&2
    exit 1
}
printf '%s\n' "$DATAPATH_OUT" | awk '
    # Lines look like:
    #   liquid_datapath/inproc/batched  time: [22.2 µs 290.4 µs 1.153 ms]  (174 iters)
    # Emit one JSON object keyed by transport/variant with ns-normalized
    # stats (alloc rows carry counts through unchanged).
    function ns(v, u) {
        if (u == "ns") return v
        if (u == "µs" || u == "us") return v * 1000
        if (u == "ms") return v * 1000000
        return v
    }
    {
        gsub(/[\[\]]/, "")
        split($1, path, "/")
        variant = path[2]; scale = path[3]
        lo = ns($3 + 0, $4); mean = ns($5 + 0, $6); hi = ns($7 + 0, $8)
        key = variant "/" scale
        keys[++n] = key
        means[key] = mean; los[key] = lo; his[key] = hi
    }
    END {
        printf "{\n  \"bench\": \"liquid_datapath\",\n  \"unit\": \"ns\",\n"
        printf "  \"note\": \"batched = shipped coalesced fan-out (after); unbatched = retained pre-batching reference (before); rings = thread-per-core SPSC path; *_allocs rows are allocation events per query, not ns\",\n"
        printf "  \"results\": {\n"
        for (i = 1; i <= n; i++) {
            k = keys[i]
            printf "    \"%s\": {\"min\": %.2f, \"mean\": %.2f, \"max\": %.2f}%s\n", \
                k, los[k], means[k], his[k], (i < n ? "," : "")
        }
        printf "  }\n}\n"
    }
' > BENCH_datapath.json
echo "    wrote BENCH_datapath.json:"
sed 's/^/    /' BENCH_datapath.json

echo "==> bench smoke: graph_scale (CSR engine vs Vec-of-Vecs reference)"
# The graph-engine scale rows behind the ADR-001 G targets: build time,
# bytes per stored adjacency entry, neighbor-walk and intersection
# kernels, CSR (after) vs the retained Vec<Vec<VertexId>> reference
# (before) at 100k and 1M vertices. Both generators replay the same RNG
# stream, so every row compares the identical graph. 4M-vertex rows ride
# behind GRAPH_SCALE_XL=1 to bound CI memory. Results land in
# BENCH_graph.json at the repo root.
GRAPH_OUT=$(CRITERION_BUDGET_MS="${CRITERION_BUDGET_MS:-50}" \
    cargo bench -q --offline -p bouncer-bench --bench graph_scale 2>&1 \
    | grep '^graph_scale/') || {
    echo "graph_scale bench produced no output" >&2
    exit 1
}
printf '%s\n' "$GRAPH_OUT" | awk '
    # Lines look like:
    #   graph_scale/bytes_per_edge/csr_1m  time: [4.50 ns 4.50 ns 4.50 ns]  (1 iters)
    # Emit one JSON object keyed metric/variant with ns-normalized stats
    # (build rows are wall time, bytes_per_edge rows are counts).
    function ns(v, u) {
        if (u == "ns") return v
        if (u == "µs" || u == "us") return v * 1000
        if (u == "ms") return v * 1000000
        return v
    }
    {
        gsub(/[\[\]]/, "")
        split($1, path, "/")
        lo = ns($3 + 0, $4); mean = ns($5 + 0, $6); hi = ns($7 + 0, $8)
        key = path[2] "/" path[3]
        keys[++n] = key
        means[key] = mean; los[key] = lo; his[key] = hi
    }
    END {
        printf "{\n  \"bench\": \"graph_scale\",\n  \"unit\": \"ns\",\n"
        printf "  \"note\": \"csr = flat offsets+targets engine (after); vecvec/binary = retained Vec-of-Vecs reference and per-element binary-search filter (before); bytes_per_edge rows are counts, not ns\",\n"
        printf "  \"results\": {\n"
        for (i = 1; i <= n; i++) {
            k = keys[i]
            printf "    \"%s\": {\"min\": %.2f, \"mean\": %.2f, \"max\": %.2f}%s\n", \
                k, los[k], means[k], his[k], (i < n ? "," : "")
        }
        printf "  }\n}\n"
    }
' > BENCH_graph.json
echo "    wrote BENCH_graph.json:"
sed 's/^/    /' BENCH_graph.json

perf_gate BENCH_admit.json BENCH_datapath.json BENCH_graph.json

echo "==> perf gate self-test: a sabotaged rings mean must FAIL"
# Continuously proves the gate's failure path works: inflate the rings
# mean past tolerance in a scratch copy and require a non-zero exit. If
# the sed pattern ever stops matching, the copy equals the original, the
# gate passes, and this self-test fails — so pattern drift is caught too.
SABOTAGE=$(mktemp -t bouncer-sabotage.XXXXXX.json)
sed 's/"inproc\/rings": {"min": \([0-9.]*\), "mean": [0-9.]*/"inproc\/rings": {"min": \1, "mean": 99999999.00/' \
    BENCH_datapath.json > "$SABOTAGE"
if perf_gate BENCH_admit.json "$SABOTAGE" > /dev/null 2>&1; then
    echo "perf gate did not flag a sabotaged rings mean" >&2
    rm -f "$SABOTAGE"
    exit 1
fi
rm -f "$SABOTAGE"
echo "    sabotage flagged as expected"

echo "==> perf gate self-test: a sabotaged recorder mean must FAIL"
# The same drill for T4: inflate the gate_cycle/recorder mean in a
# scratch copy of the admit file and require a non-zero exit. Pattern
# drift (the copy equaling the original) fails here too.
SABOTAGE_REC=$(mktemp -t bouncer-sabotage-rec.XXXXXX.json)
sed 's/"gate_cycle\/recorder": {"min": \([0-9.]*\), "mean": [0-9.]*/"gate_cycle\/recorder": {"min": \1, "mean": 99999999.00/' \
    BENCH_admit.json > "$SABOTAGE_REC"
if perf_gate "$SABOTAGE_REC" BENCH_datapath.json > /dev/null 2>&1; then
    echo "perf gate did not flag a sabotaged recorder mean" >&2
    rm -f "$SABOTAGE_REC"
    exit 1
fi
rm -f "$SABOTAGE_REC"
echo "    sabotage flagged as expected"

echo "==> perf gate self-test: a sabotaged CSR bytes/edge must FAIL"
# The same drill for G1: inflate the csr_1m bytes-per-edge mean in a
# scratch copy of the graph file and require a non-zero exit. Pattern
# drift (the copy equaling the original) fails here too.
SABOTAGE_G=$(mktemp -t bouncer-sabotage-graph.XXXXXX.json)
sed 's/"bytes_per_edge\/csr_1m": {"min": \([0-9.]*\), "mean": [0-9.]*/"bytes_per_edge\/csr_1m": {"min": \1, "mean": 99999999.00/' \
    BENCH_graph.json > "$SABOTAGE_G"
if perf_gate BENCH_admit.json BENCH_datapath.json "$SABOTAGE_G" > /dev/null 2>&1; then
    echo "perf gate did not flag a sabotaged CSR bytes/edge mean" >&2
    rm -f "$SABOTAGE_G"
    exit 1
fi
rm -f "$SABOTAGE_G"
echo "    sabotage flagged as expected"

echo "==> study smoke: adaptive_shift (closed-loop vs static caps)"
# The headline adaptive study (ADAPTIVE.md): the traffic mix shifts
# mid-run and the scenario's AIMD controller retunes AcceptFraction's
# max_utilization from live SLO attainment; the static_* variants run
# the same policy open-loop. The bench emits one composite score per
# variant (rejection % + 100× summed SLO overshoot, lower wins) and a
# verdict line; the gate fails unless the adaptive variant beats every
# static — i.e. lower rejection at equal-or-better attainment. Results
# land in BENCH_adaptive.json at the repo root.
ADAPTIVE_OUT=$(cargo bench -q --offline -p bouncer-bench --bench adaptive_shift 2>&1 \
    | grep '^adaptive_shift/') || {
    echo "adaptive_shift bench produced no output" >&2
    exit 1
}
printf '%s\n' "$ADAPTIVE_OUT" | awk '
    # Lines look like:
    #   adaptive_shift/static_low score=47.5806
    #   adaptive_shift/verdict adaptive=39.4045 best_static=47.5806 wins=true
    # Emit one JSON object with per-variant scores and the verdict.
    $1 == "adaptive_shift/verdict" {
        for (i = 2; i <= NF; i++) {
            split($i, kv, "=")
            verdict[kv[1]] = kv[2]
        }
        next
    }
    {
        split($1, path, "/")
        split($2, kv, "=")
        keys[++n] = path[2]
        scores[path[2]] = kv[2]
    }
    END {
        printf "{\n  \"bench\": \"adaptive_shift\",\n"
        printf "  \"unit\": \"score (rejection %% + 100 x summed SLO overshoot; lower wins)\",\n"
        printf "  \"note\": \"adaptive = closed-loop AIMD on max_utilization (after); static_* = same policy pinned open-loop (before)\",\n"
        printf "  \"results\": {\n"
        for (i = 1; i <= n; i++)
            printf "    \"%s\": %s%s\n", keys[i], scores[keys[i]], (i < n ? "," : "")
        printf "  },\n"
        printf "  \"verdict\": {\"adaptive\": %s, \"best_static\": %s, \"wins\": %s}\n}\n", \
            verdict["adaptive"], verdict["best_static"], verdict["wins"]
    }
' > BENCH_adaptive.json
echo "    wrote BENCH_adaptive.json:"
sed 's/^/    /' BENCH_adaptive.json
printf '%s\n' "$ADAPTIVE_OUT" | grep -q '^adaptive_shift/verdict .*wins=true$' || {
    echo "adaptive variant did not beat every static baseline:" >&2
    printf '%s\n' "$ADAPTIVE_OUT" >&2
    exit 1
}

echo "==> study smoke: replication_study (R=2 routing-strategy crossover)"
# The replica-group headline (DESIGN.md S38): the same cluster at R = 2
# under primary-only / load-balanced / hedged routing at a low and a high
# capacity-relative point. The bench emits per-point rejection % and
# client RT quantiles plus a verdict line; the gate fails unless the
# underload↔overload crossover reproduces — hedged p99 beats primary-only
# at low load AND primary-only sheds no more than hedged (plus a noise
# allowance) at high load. Results land in BENCH_replication.json at the
# repo root.
replication_gate() {
    grep -q '"crossover": true' "$1"
}
REPLICATION_OUT=$(cargo bench -q --offline -p bouncer-bench --bench replication_study 2>&1 \
    | grep '^replication_study/') || {
    echo "replication_study bench produced no output" >&2
    exit 1
}
printf '%s\n' "$REPLICATION_OUT" | awk '
    # Lines look like:
    #   replication_study/hedged/low rej=1.3758 p50=0.5652 p99=16.3840
    #   replication_study/verdict hedged_p99_low=16.38 ... crossover=true
    # Emit one JSON object with per-(strategy, point) stats + the verdict.
    $1 == "replication_study/verdict" {
        for (i = 2; i <= NF; i++) {
            split($i, kv, "=")
            verdict[kv[1]] = kv[2]
        }
        next
    }
    {
        split($1, path, "/")
        key = path[2] "/" path[3]
        keys[++n] = key
        for (i = 2; i <= NF; i++) {
            split($i, kv, "=")
            vals[key "/" kv[1]] = kv[2]
        }
    }
    END {
        printf "{\n  \"bench\": \"replication_study\",\n"
        printf "  \"unit\": \"rej = %%, p50/p99 = ms\",\n"
        printf "  \"note\": \"R=2 replica groups; hedged = duplicate stragglers after a learned p95 delay, losers cancelled at dequeue (after); primary-only = deterministic flat routing (before)\",\n"
        printf "  \"results\": {\n"
        for (i = 1; i <= n; i++) {
            k = keys[i]
            printf "    \"%s\": {\"rej_pct\": %s, \"p50_ms\": %s, \"p99_ms\": %s}%s\n", \
                k, vals[k "/rej"], vals[k "/p50"], vals[k "/p99"], (i < n ? "," : "")
        }
        printf "  },\n"
        printf "  \"verdict\": {\"hedged_p99_low\": %s, \"primary_p99_low\": %s, \"primary_rej_high\": %s, \"hedged_rej_high\": %s, \"crossover\": %s}\n}\n", \
            verdict["hedged_p99_low"], verdict["primary_p99_low"], \
            verdict["primary_rej_high"], verdict["hedged_rej_high"], \
            verdict["crossover"]
    }
' > BENCH_replication.json
echo "    wrote BENCH_replication.json:"
sed 's/^/    /' BENCH_replication.json
replication_gate BENCH_replication.json || {
    echo "replication crossover did not reproduce:" >&2
    printf '%s\n' "$REPLICATION_OUT" >&2
    exit 1
}

echo "==> replication gate self-test: a sabotaged crossover verdict must FAIL"
# Flip the verdict in a scratch copy and require the gate to reject it.
# If the sed pattern ever stops matching, the copy equals the original,
# the gate passes, and this self-test fails — pattern drift is caught too.
SABOTAGE_REP=$(mktemp -t bouncer-sabotage-rep.XXXXXX.json)
sed 's/"crossover": true/"crossover": false/' BENCH_replication.json > "$SABOTAGE_REP"
if replication_gate "$SABOTAGE_REP"; then
    echo "replication gate did not flag a sabotaged crossover verdict" >&2
    rm -f "$SABOTAGE_REP"
    exit 1
fi
rm -f "$SABOTAGE_REP"
echo "    sabotage flagged as expected"

echo "==> tracing smoke: traced cluster -> trace-report --strict"
# A small traced in-process cluster writes its span JSONL, and the
# trace-report subcommand re-assembles the trees; --strict makes any
# orphaned span or rootless trace a hard failure.
TRACE_SMOKE=$(mktemp -t bouncer-trace-smoke.XXXXXX.jsonl)
INCIDENT_DIR=$(mktemp -d -t bouncer-incidents.XXXXXX)
DRILL_DIR=$(mktemp -d -t bouncer-drill.XXXXXX)
trap 'rm -f "$TRACE_SMOKE"; rm -rf "$INCIDENT_DIR" "$DRILL_DIR"' EXIT
cargo run -q --release --offline --example traced_cluster -- "$TRACE_SMOKE" \
    | sed 's/^/    /'
cargo run -q --release --offline -p bouncer-cli -- \
    trace-report --traces-in "$TRACE_SMOKE" --strict \
    | sed -n '1,3p;$p' | sed 's/^/    /'

echo "==> incident smoke: chaos_lite (virtual time) -> dump -> postmortem"
# The sim-side acceptance drill: the chaos_lite surge through the CLI
# with the trigger engine armed (a forced trigger as the deterministic
# backstop — the surge itself usually fires rejection_spike and the
# AIMD backoff too). The run must leave at least one incident dump, and
# postmortem must reconstruct it.
cargo run -q --release --offline -p bouncer-cli -- \
    --scenario scenarios/chaos_lite.scn \
    --incident-dir "$INCIDENT_DIR" --trigger-force-ms 1500 \
    | sed 's/^/    /'
SIM_DUMP=$(ls "$INCIDENT_DIR"/incident-*.jsonl 2>/dev/null | head -1) || true
if [ -z "${SIM_DUMP:-}" ]; then
    echo "chaos_lite produced no incident dump" >&2
    exit 1
fi
cargo run -q --release --offline -p bouncer-cli -- \
    postmortem --dump-in "$SIM_DUMP" \
    | sed -n '1,4p;$p' | sed 's/^/    /'

echo "==> incident smoke: rings cluster (wall clock) -> dump -> postmortem"
# The cluster-side acceptance drill: examples/incident_drill.rs floods a
# rings cluster until the trigger engine dumps (rejection spike, with a
# forced wall-clock backstop), and postmortem reads the dump back.
cargo run -q --release --offline --example incident_drill -- "$DRILL_DIR" \
    | sed 's/^/    /'
DRILL_DUMP=$(ls "$DRILL_DIR"/incident-*.jsonl 2>/dev/null | head -1) || true
if [ -z "${DRILL_DUMP:-}" ]; then
    echo "incident_drill produced no incident dump" >&2
    exit 1
fi
cargo run -q --release --offline -p bouncer-cli -- \
    postmortem --dump-in "$DRILL_DUMP" \
    | sed -n '1,4p;$p' | sed 's/^/    /'

echo "==> scale smoke: liquid_mega (1M-vertex CSR graph through the rings cluster)"
# The million-vertex acceptance drill: the CSR engine must serve the
# QT1..QT11 mix end-to-end at the scale it exists for, not just
# micro-benchmark well. The example prints the graph_stats footprint
# line; the CLI's graph-stats subcommand rebuilds the same graph from
# the scenario spec and must agree on the footprint.
MEGA_OUT=$(cargo run -q --release --offline --example liquid_mega -- scenarios/liquid_mega.scn)
printf '%s\n' "$MEGA_OUT" | sed 's/^/    /'
printf '%s\n' "$MEGA_OUT" | grep -q 'graph_stats vertices=1000000 ' || {
    echo "liquid_mega did not report a 1M-vertex graph_stats line" >&2
    exit 1
}
MEGA_STATS=$(cargo run -q --release --offline -p bouncer-cli -- \
    graph-stats scenarios/liquid_mega.scn)
printf '%s\n' "$MEGA_STATS" | sed 's/^/    /'
MEGA_LINE=$(printf '%s\n' "$MEGA_OUT" | grep -o 'graph_stats .*')
case "$MEGA_STATS" in
    *"$MEGA_LINE"*) ;;
    *)
        echo "graph-stats disagrees with the cluster's graph_stats line" >&2
        exit 1
        ;;
esac

echo "==> all checks passed"
