#!/usr/bin/env bash
# The full local gate: release build, all tests, clippy as errors.
#
# The build environment is fully offline (external crates are satisfied by
# the stubs under vendor/ — see vendor/README.md), so every cargo call pins
# --offline; nothing here ever touches the network.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> all checks passed"
