#!/usr/bin/env bash
# Regenerates scenarios/MANIFEST from the checked-in scenario files.
#
# The manifest pins the canonical content hash of every scenarios/*.scn
# (comments and key order don't affect it — see `scenario-hash --help`),
# and scripts/check.sh diffs a fresh hash run against it. After editing
# or adding a scenario, run this script and commit the updated MANIFEST.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run -q --release --offline -p bouncer-cli -- scenario-hash scenarios/*.scn \
    > scenarios/MANIFEST
echo "wrote scenarios/MANIFEST ($(wc -l < scenarios/MANIFEST) scenarios)"
