//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`] (a cheaply cloneable immutable byte buffer with a
//! read cursor), [`BytesMut`] (a growable write buffer), and the [`Buf`] /
//! [`BufMut`] accessor traits. Integer accessors are **big-endian**, like
//! upstream `bytes` — the wire codec in `liquid` depends on that.

#![warn(missing_docs)]

use std::fmt;
use std::sync::Arc;

/// Read-side accessors over a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads the next byte, advancing the cursor.
    ///
    /// # Panics
    /// If no bytes remain (same contract as upstream).
    fn get_u8(&mut self) -> u8;

    /// Reads a big-endian `u32`, advancing the cursor.
    fn get_u32(&mut self) -> u32;

    /// Reads a big-endian `u64`, advancing the cursor.
    fn get_u64(&mut self) -> u64;

    /// `true` when any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

/// Write-side accessors over a growable buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);

    /// Appends a slice verbatim.
    fn put_slice(&mut self, src: &[u8]);
}

/// Reading from a `&[u8]` advances the slice itself (as upstream does),
/// so decoders can parse borrowed data with zero copies or allocations.
impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn get_u8(&mut self) -> u8 {
        let b = self[0];
        *self = &self[1..];
        b
    }

    #[inline]
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self[..4].try_into().unwrap());
        *self = &self[4..];
        v
    }

    #[inline]
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self[..8].try_into().unwrap());
        *self = &self[8..];
        v
    }
}

/// Writing into a plain `Vec<u8>` (as upstream allows) lets callers reuse
/// scratch buffers across messages instead of freezing a fresh allocation
/// per frame.
impl BufMut for Vec<u8> {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    #[inline]
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    #[inline]
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An immutable, cheaply cloneable byte buffer with a read cursor.
///
/// Clones share the underlying allocation; [`Buf`] reads advance a
/// per-handle cursor.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static slice (copied once; upstream borrows, the difference
    /// is invisible to callers).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
            pos: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` when fully consumed (or empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    #[inline]
    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "advance past end of Bytes");
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }
}

impl Buf for Bytes {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    #[inline]
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().unwrap())
    }

    #[inline]
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().unwrap())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v),
            pos: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes {
            data: Arc::from(v),
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// A growable byte buffer for building messages.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice verbatim.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    #[inline]
    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    #[inline]
    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_round_trip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0102_0304_0506_0708);
        assert_eq!(b.len(), 13);
        // Raw layout is big-endian.
        assert_eq!(&b.as_ref()[1..5], &[0xDE, 0xAD, 0xBE, 0xEF]);

        let mut r = b.freeze();
        assert_eq!(r.remaining(), 13);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_buf_and_vec_bufmut_round_trip() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u8(7);
        v.put_u32(0xDEAD_BEEF);
        v.put_u64(0x0102_0304_0506_0708);
        v.put_slice(&[1, 2]);
        let mut s: &[u8] = &v;
        assert_eq!(s.remaining(), 15);
        assert_eq!(s.get_u8(), 7);
        assert_eq!(s.get_u32(), 0xDEAD_BEEF);
        assert_eq!(s.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(s, &[1, 2]);
    }

    #[test]
    fn clones_have_independent_cursors() {
        let mut a = Bytes::from(vec![1, 2, 3, 4]);
        let mut b = a.clone();
        assert_eq!(a.get_u8(), 1);
        assert_eq!(b.get_u8(), 1);
        assert_eq!(a.get_u8(), 2);
        assert_eq!(b.remaining(), 3);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn reading_past_the_end_panics() {
        let mut b = Bytes::from_static(&[1, 2]);
        let _ = b.get_u32();
    }
}
