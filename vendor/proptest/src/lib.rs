//! Offline stand-in for the `proptest` crate.
//!
//! Random property testing with the `proptest!` surface this workspace
//! uses — [`Strategy`], `any::<T>()`, numeric-range strategies,
//! `prop::collection::vec`, `prop::option::of`, tuple strategies,
//! `prop_map`, `prop_oneof!`, and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` representation (strategies generate values directly rather
//!   than value trees), so reproduce by reading the panic message.
//! * **Deterministic seeding.** Each test's RNG is seeded from a hash of
//!   its module path and name, so failures reproduce exactly on re-run.
//! * `PROPTEST_CASES` (env var) still controls the number of cases per
//!   property (default 64).

#![warn(missing_docs)]

/// Strategies: how values are generated.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between alternative strategies (the engine behind
    /// `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    if span == 0 || span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span as u64) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
    }
}

/// `any::<T>()` support: uniform generation over a type's full domain.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value uniformly over the type's domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match upstream's default 3:1 Some:None weighting.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `Some` from `inner` about 75% of the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// The deterministic RNG and case-count plumbing behind `proptest!`.
pub mod test_runner {
    /// SplitMix64-based test RNG, seeded from the test's name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the fully qualified test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Number of cases each property runs (`PROPTEST_CASES`, default 64).
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

/// The `prop::` paths used by call sites (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in STRATEGY, ...) { body }`
/// becomes a `#[test]` running [`test_runner::cases`] random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let strategies = ($(&$strat,)+);
                for _case in 0..$crate::test_runner::cases() {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, u32)> {
        (any::<u32>(), 1u32..10)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 10u64..20, f in 0.0f64..=1.0) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(mut values in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(values.len() >= 2 && values.len() < 6);
            values.sort_unstable();
            prop_assert!(values.iter().all(|&v| v < 5));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u32..10).prop_map(|x| x * 2),
            (100u32..110).prop_map(|x| x + 1),
        ]) {
            prop_assert!(v < 20 || (101..=110).contains(&v));
        }

        #[test]
        fn tuples_and_options(pair in arb_pair(), opt in prop::option::of(any::<bool>())) {
            let (_a, b) = pair;
            prop_assert!((1..10).contains(&b));
            let _ = opt;
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x::y");
        let mut b = crate::test_runner::TestRng::deterministic("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
