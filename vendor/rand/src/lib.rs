//! Offline stand-in for the `rand` crate.
//!
//! Provides the API subset this workspace uses: the [`Rng`] core trait,
//! the [`RngExt`] extension methods (`random`, `random_range`,
//! `random_bool`), [`SeedableRng::seed_from_u64`], and
//! [`rngs::SmallRng`] — a xoshiro256++ generator seeded through SplitMix64,
//! matching upstream `SmallRng`'s construction on 64-bit targets.
//!
//! Determinism contract: for a fixed seed, the draw sequence is stable
//! across runs and platforms (all arithmetic is explicit-width integer
//! math), which the simulator and workload generators rely on for
//! reproducible experiments.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random bits.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next uniform `f64` in `[0, 1)` (53-bit mantissa).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `Rng`'s raw bits
/// (the `Standard` distribution of upstream rand).
pub trait StandardUniform: Sized {
    /// Draws one value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl StandardUniform for f32 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform sampler over half-open/closed ranges.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[low, high)`; `high > low` must hold.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_range_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                // Multiply-shift keeps the draw unbiased to ~2^-64.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(draw as $t)
            }

            #[inline]
            fn sample_range_inclusive<R: Rng + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "random_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 || span > u64::MAX as u128 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128 * span) >> 64) as u64;
                low.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "random_range: empty range");
        low + rng.next_f64() * (high - low)
    }

    #[inline]
    fn sample_range_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "random_range: empty range");
        low + rng.next_f64() * (high - low)
    }
}

/// Range argument accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_range_inclusive(rng, low, high)
    }
}

/// Convenience sampling methods over any [`Rng`] (upstream rand's
/// `Rng`/`RngExt` split).
pub trait RngExt: Rng {
    /// A uniform value of `T` over its natural domain (`[0, 1)` for
    /// floats, the full bit range for integers, fair coin for `bool`).
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform value in `range`.
    #[inline]
    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Provided generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64: the seeding/stream-splitting generator.
    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A small, fast, non-cryptographic generator (xoshiro256++), matching
    /// upstream `SmallRng`'s algorithm on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.random_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&f));
            let u: usize = rng.random_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn random_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn full_width_inclusive_range_works() {
        let mut rng = SmallRng::seed_from_u64(3);
        // Must not overflow or panic.
        let _: u64 = rng.random_range(0..=u64::MAX);
        let _: u64 = rng.random_range(0..=u64::MAX / 2);
    }
}
