//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides [`channel`]: multi-producer multi-consumer FIFO channels with
//! the `crossbeam-channel` API surface this workspace uses — `bounded`,
//! `unbounded`, blocking `send`/`recv`, `recv_timeout`, iteration, and
//! disconnect detection when all peers on the other side have dropped.
//! Built on `std::sync::{Mutex, Condvar}`; correctness over raw speed.

#![warn(missing_docs)]

pub mod channel {
    //! MPMC channels (`crossbeam-channel` subset).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    /// Error on [`Sender::send`]: every receiver was dropped; the value
    /// comes back to the caller.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error on [`Receiver::recv`]: the channel is empty and every sender
    /// was dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error on [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender was dropped.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }

    /// Error on [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender was dropped.
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// Capacity bound; `None` = unbounded. A zero-capacity rendezvous
        /// channel is approximated by capacity 1.
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates a channel that holds at most `cap` in-flight messages;
    /// `send` blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }

    /// Creates a channel with no capacity bound; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.lock();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.lock().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.chan.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued (or every receiver is
        /// gone, in which case the message is handed back).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.chan.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self
                            .chan
                            .not_full
                            .wait(st)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped with
        /// the channel drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .chan
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Like [`Receiver::recv`] with an upper bound on the wait.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .chan
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.lock();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.lock().queue.len()
        }

        /// `true` when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A blocking iterator: yields until every sender is dropped.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Owning blocking iterator over a channel's messages.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn bounded_blocks_until_space() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2).unwrap());
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(1));
            t.join().unwrap();
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn disconnect_is_observable_both_ways() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));

            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1)); // drains before erroring
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn iter_drains_until_disconnect() {
            let (tx, rx) = unbounded();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
        }

        #[test]
        fn mpmc_transfers_everything() {
            let (tx, rx) = bounded::<u64>(4);
            let producers: Vec<_> = (0..3)
                .map(|p| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for i in 0..100u64 {
                            tx.send(p * 100 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || rx.iter().count())
                })
                .collect();
            drop(rx);
            for p in producers {
                p.join().unwrap();
            }
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 300);
        }
    }
}
