//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::{Mutex, Condvar}` behind parking_lot's API shape:
//! `lock()` returns the guard directly (poisoning is swallowed — a
//! panicked holder does not poison the lock for everyone else), and
//! `Condvar::wait` takes `&mut MutexGuard` instead of consuming it.
//!
//! Only the subset this workspace uses is provided: `Mutex`, `MutexGuard`,
//! `Condvar`, and `WaitTimeoutResult`.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the inner guard out
    // and put the re-acquired one back; it is `None` only inside that call.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Result of [`Condvar::wait_for`]: whether the wait hit its timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait returned because the timeout elapsed.
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing `guard`'s lock while parked and
    /// re-acquiring it before returning (parking_lot signature: the guard
    /// is borrowed, not consumed).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        guard.inner = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Like [`Condvar::wait`] with an upper bound on the park time.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken during wait");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_one();
        assert!(h.join().unwrap());
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)).timed_out());
    }
}
