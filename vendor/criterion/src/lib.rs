//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock micro-benchmark harness with the API surface the
//! workspace's `overhead` bench uses: [`Criterion::bench_function`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. No warm-up modelling, outlier analysis, or HTML reports —
//! each benchmark is timed in batches for a fixed wall-clock budget and
//! the mean with min/max batch bounds is printed to stdout.
//!
//! `CRITERION_BUDGET_MS` (env var) overrides the per-benchmark
//! measurement budget (default 300 ms).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to benchmark functions; registers named benchmarks.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs `f` with a [`Bencher`] and prints `id` with per-iteration
    /// timing statistics.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.budget,
            batches: Vec::new(),
            total_iters: 0,
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    budget: Duration,
    /// Per-batch mean nanoseconds per iteration.
    batches: Vec<f64>,
    total_iters: u64,
}

impl Bencher {
    /// Measures `routine` repeatedly until the time budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate a batch size targeting roughly 1ms per batch so the
        // clock is read off the hot path.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;

        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.batches.push(elapsed.as_nanos() as f64 / batch as f64);
            self.total_iters += batch;
        }
    }

    fn report(&self, id: &str) {
        if self.batches.is_empty() {
            println!("{id:<44} (no measurements)");
            return;
        }
        let mean = self.batches.iter().sum::<f64>() / self.batches.len() as f64;
        let min = self.batches.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.batches.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{id:<44} time: [{} {} {}]  ({} iters)",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max),
            self.total_iters
        );
    }
}

/// Formats a nanosecond quantity with an adaptive unit, criterion-style.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: a function that runs each listed
/// benchmark function against a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("tiny/add", |b| b.iter(|| black_box(2u64) + black_box(3)));
    }

    #[test]
    fn harness_runs_and_reports() {
        std::env::set_var("CRITERION_BUDGET_MS", "10");
        let mut c = Criterion::default();
        tiny_bench(&mut c);
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(fmt_ns(12.3456), "12.35 ns");
        assert_eq!(fmt_ns(12_345.6), "12.346 µs");
        assert!(fmt_ns(12_345_678.0).ends_with("ms"));
    }
}
